"""Fast-path coverage for the incremental REFINE/HORPART subsystems.

The profile-guided overhaul (memoized merge rejections, cached per-leaf
masks, zero-recount HORPART splits, speculative parallel merge attempts)
promises **bit-for-bit identical output** to the reference formulations.
This suite is that promise's enforcement:

* a randomized equivalence sweep over three workload shapes (QUEST
  market-basket, Zipf basket, session click-stream) comparing the old
  (reference-driver, string-selector) and new pipelines end to end,
* unit tests for the memoization (including invalidation after a
  successful merge), for :meth:`BitsetChunkChecker.remove`, and for the
  short-circuiting ``is_km_anonymous``.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.anonymity import (
    BitsetChunkChecker,
    find_km_violation,
    is_km_anonymous,
)
from repro.core.clusters import SimpleCluster, TermChunk
from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator, effective_jobs
from repro.core.horizontal import horizontal_partition, horizontal_partition_indices
from repro.core.refine import (
    MergeMemo,
    RefineStats,
    _candidate_is_k_anonymous,
    _ProjectionClasses,
    refine,
    try_merge,
)
from repro.core.vertical import vertical_partition
from repro.core.vocab import EncodedDataset
from repro.datasets.quest import generate_quest
from repro.datasets.scenarios import generate_clickstream, generate_zipf_basket


# --------------------------------------------------------------------------- #
# scenario datasets (small enough for CI, shaped like the real workloads)
# --------------------------------------------------------------------------- #
def _scenario_dataset(name: str, seed: int) -> TransactionDataset:
    if name == "quest":
        return generate_quest(
            num_transactions=400, domain_size=120, avg_transaction_size=6.0, seed=seed
        )
    if name == "zipf":
        return generate_zipf_basket(
            num_transactions=400, domain_size=150, avg_basket_size=5.0, seed=seed
        )
    if name == "clickstream":
        return generate_clickstream(
            num_sessions=400,
            num_pages=150,
            num_sections=6,
            avg_session_length=5.0,
            seed=seed,
        )
    raise AssertionError(name)


SCENARIOS = ("quest", "zipf", "clickstream")


def _verpart_clusters(dataset: TransactionDataset, k: int, m: int, size: int):
    return [
        vertical_partition(part, k, m, label=f"P{index}").cluster
        for index, part in enumerate(horizontal_partition(dataset, size))
    ]


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_horizontal_old_vs_new(self, scenario, seed):
        dataset = _scenario_dataset(scenario, seed)
        reference = horizontal_partition(dataset, 25)
        encoded = EncodedDataset.from_dataset(dataset)
        index_parts = horizontal_partition_indices(encoded, 25)
        records = list(dataset)
        assert [list(part) for part in reference] == [
            [records[i] for i in part] for part in index_parts
        ]

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_refine_old_vs_new(self, scenario, seed):
        dataset = _scenario_dataset(scenario, seed)
        reference = refine(
            _verpart_clusters(dataset, 3, 2, 20),
            3,
            2,
            max_join_size=160,
            use_bitsets=False,
            memoize=False,
        )
        stats = RefineStats()
        optimized = refine(
            _verpart_clusters(dataset, 3, 2, 20),
            3,
            2,
            max_join_size=160,
            stats=stats,
        )
        assert [c.to_dict() for c in reference] == [c.to_dict() for c in optimized]
        # the memo must actually be exercised on multi-pass runs
        if stats.passes > 2:
            assert stats.skipped_by_memo > 0

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_full_pipeline_old_vs_new(self, scenario):
        dataset = _scenario_dataset(scenario, 2)
        old = Disassociator(
            AnonymizationParams(k=3, m=2, max_cluster_size=20, backend="string")
        ).anonymize(dataset)
        new = Disassociator(
            AnonymizationParams(k=3, m=2, max_cluster_size=20, backend="encoded")
        ).anonymize(dataset)
        assert old.to_dict() == new.to_dict()

    def test_random_fuzz_refine(self):
        rng = random.Random(99)
        vocabulary = [f"t{i}" for i in range(60)]
        for trial in range(3):
            records = [
                frozenset(rng.sample(vocabulary, rng.randint(1, 6)))
                for _ in range(200)
            ]
            dataset = TransactionDataset(records)
            reference = refine(
                _verpart_clusters(dataset, 2, 2, 12),
                2,
                2,
                use_bitsets=False,
                memoize=False,
            )
            optimized = refine(_verpart_clusters(dataset, 2, 2, 12), 2, 2)
            assert [c.to_dict() for c in reference] == [
                c.to_dict() for c in optimized
            ], f"trial {trial}"


class TestParallelRefine:
    def test_executor_attempts_match_serial(self):
        dataset = _scenario_dataset("quest", 3)
        serial = refine(_verpart_clusters(dataset, 3, 2, 20), 3, 2)
        try:
            with ProcessPoolExecutor(max_workers=2) as pool:
                parallel = refine(
                    _verpart_clusters(dataset, 3, 2, 20), 3, 2, executor=pool
                )
        except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
            pytest.skip("process pools unavailable")
        assert [c.to_dict() for c in serial] == [c.to_dict() for c in parallel]

    def test_jobs_request_spawns_pool_only_when_useful(self):
        # jobs=1 must never pay pool setup; the capped value is reported.
        dataset = _scenario_dataset("zipf", 4)
        engine = Disassociator(AnonymizationParams(k=3, m=2, max_cluster_size=20, jobs=64))
        engine.anonymize(dataset)
        assert engine.last_report.effective_jobs == effective_jobs(64)

    def test_engine_parallel_refine_is_equivalent(self, monkeypatch):
        # Force a multi-worker effective value regardless of the host's CPU
        # count so the speculative evaluate + replay path actually runs.
        # (`effective_jobs` lives in repro.core.refine; engine re-uses it.)
        import sys

        refine_module = sys.modules["repro.core.refine"]
        monkeypatch.setattr(refine_module.os, "cpu_count", lambda: 2)
        dataset = _scenario_dataset("quest", 5)
        serial = Disassociator(
            AnonymizationParams(k=3, m=2, max_cluster_size=20)
        ).anonymize(dataset)
        parallel = Disassociator(
            AnonymizationParams(k=3, m=2, max_cluster_size=20, jobs=2)
        ).anonymize(dataset)
        assert serial.to_dict() == parallel.to_dict()


class TestMergeMemo:
    def _pair(self):
        left = SimpleCluster(
            3,
            [],
            TermChunk({"a", "b"}),
            label="L",
            original_records=[{"a"}, {"a", "b"}, {"b"}],
        )
        right = SimpleCluster(
            3,
            [],
            TermChunk({"a", "c"}),
            label="R",
            original_records=[{"a"}, {"a", "c"}, {"c"}],
        )
        return left, right

    def test_rejections_are_symmetric(self):
        left, right = self._pair()
        memo = MergeMemo()
        memo.record_rejection(left, right)
        assert memo.is_rejected(left, right)
        assert memo.is_rejected(right, left)
        assert len(memo) == 1

    def test_memo_invalidated_after_successful_merge(self):
        left, right = self._pair()
        memo = MergeMemo()
        memo.record_rejection(left, right)
        # a successful merge lifts terms out of the members' term chunks;
        # simulate it on `left` and check the stale rejection misses
        left.term_chunk = TermChunk(left.term_chunk.terms - {"a"})
        assert not memo.is_rejected(left, right)
        # ... and is re-recordable for the new state
        memo.record_rejection(left, right)
        assert memo.is_rejected(left, right)
        assert len(memo) == 2

    def test_driver_reattempts_after_merge(self):
        # End-to-end: a successful merge lifts terms out of the members'
        # term chunks, so neither the new joint nor the (mutated) members
        # can be shadowed by rejections recorded for their old states.
        a = SimpleCluster(
            3, [], TermChunk({"x", "y"}), label="A",
            original_records=[{"x", "y"}, {"x"}, {"x", "y"}],
        )
        b = SimpleCluster(
            3, [], TermChunk({"x", "z"}), label="B",
            original_records=[{"x", "z"}, {"x", "z"}, {"x"}],
        )
        memo = MergeMemo()
        memo.record_rejection(a, b)  # as if an earlier pass rejected them
        outcome = try_merge(a, b, k=2, m=2)
        assert outcome.joint is not None
        assert "x" in outcome.refining_terms
        # the members' fingerprints moved with their term chunks: the stale
        # rejection no longer matches them, nor the new joint
        assert not memo.is_rejected(a, b)
        assert not memo.is_rejected(outcome.joint, a)


class TestCheckerRemoval:
    MASKS = {
        "a": 0b111111,
        "b": 0b001111,
        "c": 0b111100,
    }

    def test_remove_shrinks_accepted_terms(self):
        checker = BitsetChunkChecker(self.MASKS, k=2, m=2)
        assert checker.try_add("a") and checker.try_add("b") and checker.try_add("c")
        checker.remove("b")
        assert checker.accepted_terms == frozenset({"a", "c"})
        checker.remove("b")  # no-op
        assert checker.accepted_terms == frozenset({"a", "c"})

    def test_removal_preserves_anonymity_decisions(self):
        checker = BitsetChunkChecker(self.MASKS, k=2, m=2)
        checker.try_add("a")
        checker.try_add("b")
        checker.remove("b")
        # after removal the checker behaves like one that never saw "b"
        fresh = BitsetChunkChecker(self.MASKS, k=2, m=2)
        fresh.try_add("a")
        for term in ("b", "c"):
            assert checker.would_remain_anonymous(term) == fresh.would_remain_anonymous(
                term
            )

    def test_readd_after_remove(self):
        checker = BitsetChunkChecker(self.MASKS, k=2, m=2)
        checker.try_add("a")
        checker.remove("a")
        assert checker.accepted_terms == frozenset()
        assert checker.try_add("a")
        assert checker.accepted_terms == frozenset({"a"})


class TestProjectionClasses:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_check(self, seed):
        """The bitmask class split must decide exactly like the reference
        per-row projection count (kept as ``_candidate_is_k_anonymous``)."""
        rng = random.Random(seed)
        num_rows = 24
        terms = [f"t{i}" for i in range(6)]
        masks = {
            t: rng.getrandbits(num_rows) | (1 << rng.randrange(num_rows))
            for t in terms
        }
        accepted: list = []
        classes = _ProjectionClasses(num_rows)
        projections: list = [set() for _ in range(num_rows)]
        k = rng.randint(2, 4)
        for term in terms:
            expected = _candidate_is_k_anonymous(projections, masks[term], term, k)
            assert classes.k_anonymous_with(masks[term], k) == expected
            if expected:
                accepted.append(term)
                classes.split_on(masks[term])
                for row in range(num_rows):
                    if (masks[term] >> row) & 1:
                        projections[row].add(term)


class TestShortCircuitKm:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_search(self, seed):
        rng = random.Random(seed)
        terms = [f"t{i}" for i in range(12)]
        records = [
            frozenset(rng.sample(terms, rng.randint(1, 5))) for _ in range(40)
        ]
        k = rng.randint(2, 4)
        m = rng.randint(1, 3)
        assert is_km_anonymous(records, k, m) == (
            find_km_violation(records, k, m) is None
        )

    def test_short_circuit_detects_rare_pair(self):
        records = [frozenset({"a", "b"})] + [frozenset({"a"})] * 10 + [
            frozenset({"b"})
        ] * 10
        assert not is_km_anonymous(records, k=2, m=2)
        assert is_km_anonymous(records, k=2, m=1)

    def test_empty_and_trivial_inputs(self):
        assert is_km_anonymous([], k=3, m=2)
        assert is_km_anonymous([frozenset()] * 5, k=3, m=2)
        assert not is_km_anonymous([frozenset({"x"})], k=2, m=2)

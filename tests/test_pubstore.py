"""The indexed publication store (``repro.pubstore``), end to end.

The store's whole contract is *bit-for-bit equivalence*: every query a
:class:`~repro.pubstore.PublicationStore` answers from its inverted
indexes must equal -- same ints, same floats, same orderings -- what the
in-memory ``analysis``/``metrics`` code paths compute over the live
publication.  This suite pins that down on all three paper-shaped
workloads, then covers the persistence contract (faithful reload,
atomic rebuild, generation sync with the incremental shard store),
fault/deadline behavior at the ``pubstore.*`` injection points, and the
three front doors (``AnonymizationService.query``, HTTP ``/query``,
``repro query``).
"""

from __future__ import annotations

import json
import random
import sqlite3
import time
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.analysis import SupportEstimator, queries
from repro.core import deadline as deadline_mod
from repro.core.engine import AnonymizationParams, Disassociator
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjected,
    ParameterError,
    StoreError,
)
from repro.metrics.relative_error import (
    relative_error_chunks,
    relative_error_reconstructed,
)
from repro.pubstore import (
    PUBSTORE_VERSION,
    PublicationStore,
    QUERY_OPS,
    QueryEngine,
    StoreSupportEstimator,
    publication_fingerprint,
)
from repro.service import AnonymizationService, ServiceConfig
from repro.service.http import ServiceHTTPServer
from repro.stream import IncrementalPipeline, ShardStore, StreamParams, run_fingerprint
from tests.conftest import WORKLOAD_NAMES, make_workload

PARAMS = AnonymizationParams(k=3, m=2, max_cluster_size=12)

#: Workload shapes kept small enough for the full parity matrix to stay fast.
WORKLOADS = {
    "quest": dict(records=400, domain=90, avg_len=6.0, seed=17),
    "zipf": dict(records=300, domain=80, avg_len=5.0, seed=17),
    "clickstream": dict(records=300, domain=110, avg_len=5.0, seed=17, sections=6),
}


@pytest.fixture(scope="module")
def workload_stores(tmp_path_factory):
    """Per workload: ``(original, published, open store)``; closed at teardown."""
    assert tuple(WORKLOADS) == WORKLOAD_NAMES
    base = tmp_path_factory.mktemp("pubstores")
    built = {}
    for name, spec in WORKLOADS.items():
        original = make_workload(name, **spec)
        published = Disassociator(PARAMS).anonymize(original)
        store = PublicationStore.from_publication(published, base / name)
        built[name] = (original, published, store)
    yield built
    for _, _, store in built.values():
        store.close()


def _probe_itemsets(published, seed: int, count: int = 40) -> list:
    """Sampled 1-3 term probes over the published domain, plus misses."""
    terms = sorted(published.chunk_dataset().term_supports())
    rng = random.Random(seed)
    probes = [[rng.choice(terms)] for _ in range(count // 4)]
    probes += [rng.sample(terms, 2) for _ in range(count // 2)]
    probes += [rng.sample(terms, 3) for _ in range(count // 4)]
    probes.append([terms[0], "never-published-term"])
    probes.append(["never-published-term"])
    return probes


# --------------------------------------------------------------------------- #
# faithful persistence
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_reload_is_bit_for_bit_identical(self, workload_stores, name):
        _, published, store = workload_stores[name]
        assert store.load_publication().to_dict() == published.to_dict()

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_fingerprint_verifies_the_source_publication(self, workload_stores, name):
        _, published, store = workload_stores[name]
        assert store.verify_against(published)
        other = workload_stores["quest" if name != "quest" else "zipf"][1]
        assert not store.verify_against(other)

    def test_describe_reports_identity_and_totals(self, workload_stores):
        _, published, store = workload_stores["quest"]
        info = store.describe()
        assert info["version"] == PUBSTORE_VERSION
        assert info["k"] == PARAMS.k and info["m"] == PARAMS.m
        assert info["total_records"] == published.total_records()
        assert info["chunk_rows"] == len(published.chunk_dataset())
        assert info["fingerprint"] == publication_fingerprint(published.to_dict())

    def test_reopen_readonly_sees_the_same_snapshot(self, workload_stores, tmp_path):
        _, published, store = workload_stores["quest"]
        with PublicationStore(store.directory) as reopened:
            assert reopened.describe() == store.describe()
            assert reopened.top_terms(5) == store.top_terms(5)

    def test_rebuild_replaces_the_snapshot_atomically(self, tmp_path):
        first = Disassociator(PARAMS).anonymize(
            make_workload("quest", records=150, domain=40, avg_len=4.0, seed=1)
        )
        second = Disassociator(PARAMS).anonymize(
            make_workload("quest", records=150, domain=40, avg_len=4.0, seed=2)
        )
        with PublicationStore.from_publication(first, tmp_path / "s") as store:
            store.build(second, generation=1)
            assert store.load_publication().to_dict() == second.to_dict()
            assert store.generation == 1


# --------------------------------------------------------------------------- #
# query parity: indexed answers == in-memory oracle answers
# --------------------------------------------------------------------------- #
class TestQueryParity:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_top_terms(self, workload_stores, name):
        _, published, store = workload_stores[name]
        dataset = published.chunk_dataset()
        for count in (1, 5, 25, 10_000):
            assert store.top_terms(count) == queries.top_terms(dataset, count)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_itemset_supports_and_bounds(self, workload_stores, name):
        _, published, store = workload_stores[name]
        dataset = published.chunk_dataset()
        estimator = SupportEstimator(published)
        for probe in _probe_itemsets(published, seed=5):
            assert store.support(probe) == dataset.support(probe), probe
            assert store.lower_bound_support(probe) == estimator.lower_bound(
                probe
            ), probe

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_expected_support_is_float_exact(self, workload_stores, name):
        _, published, store = workload_stores[name]
        oracle = SupportEstimator(published)
        indexed = StoreSupportEstimator(store)
        for probe in _probe_itemsets(published, seed=6):
            assert indexed.expected_support(probe) == oracle.expected_support(
                probe
            ), probe

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_frequent_pairs(self, workload_stores, name):
        _, published, store = workload_stores[name]
        engine = QueryEngine(store)
        dataset = published.chunk_dataset()
        for min_support in (1, 3, 10, 10_000):
            assert engine.frequent_pairs(min_support) == queries.frequent_pairs(
                dataset, min_support
            )

    def test_rule_confidence_including_undefined(self, workload_stores):
        _, published, store = workload_stores["quest"]
        engine = QueryEngine(store)
        dataset = published.chunk_dataset()
        for probe in _probe_itemsets(published, seed=7, count=12):
            antecedent, consequent = probe[:1], probe[1:] or [probe[0]]
            assert engine.rule_confidence(
                antecedent, consequent
            ) == queries.rule_confidence(dataset, antecedent, consequent)
        assert engine.rule_confidence(["never-published-term"], ["x"]) is None

    def test_empty_itemset_edges(self, workload_stores):
        _, published, store = workload_stores["quest"]
        # The two empty-itemset conventions differ and both must survive:
        # chunk-dataset support counts term-chunk singleton rows too, the
        # estimator's lower bound counts published sub-records only.
        assert store.support([]) == len(published.chunk_dataset())
        assert store.lower_bound_support([]) == SupportEstimator(
            published
        ).lower_bound([])
        assert StoreSupportEstimator(store).expected_support([]) == float(
            published.total_records()
        )

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_engine_backends_are_interchangeable(self, workload_stores, name):
        _, published, store = workload_stores[name]
        indexed, memory = QueryEngine(store), QueryEngine(published)
        assert indexed.backend == "store" and memory.backend == "memory"
        probes = _probe_itemsets(published, seed=8, count=16)
        assert indexed.top_terms(10) == memory.top_terms(10)
        for probe in probes:
            assert indexed.cooccurrence_count(probe) == memory.cooccurrence_count(
                probe
            )
            assert indexed.containment_ratio(probe) == memory.containment_ratio(probe)
            assert indexed.lower_bound(probe) == memory.lower_bound(probe)
            assert indexed.expected_support(probe) == memory.expected_support(probe)

    def test_analysis_helpers_accept_an_engine(self, workload_stores):
        _, published, store = workload_stores["zipf"]
        engine = QueryEngine(store)
        dataset = published.chunk_dataset()
        assert queries.top_terms(engine, 8) == queries.top_terms(dataset, 8)
        probe = queries.top_terms(dataset, 2)
        terms = [term for term, _ in probe]
        assert queries.cooccurrence_count(engine, terms) == queries.cooccurrence_count(
            dataset, terms
        )
        assert queries.containment_ratio(engine, terms) == queries.containment_ratio(
            dataset, terms
        )
        assert queries.frequent_pairs(engine, 2) == queries.frequent_pairs(dataset, 2)

    def test_relative_error_metrics_accept_engine_and_store(self, workload_stores):
        original, published, store = workload_stores["zipf"]
        engine = QueryEngine(store)
        expected = relative_error_chunks(original, published)
        assert relative_error_chunks(original, engine) == expected
        assert relative_error_chunks(original, store) == expected
        expected = relative_error_reconstructed(
            original, published, reconstructions=2, seed=9
        )
        assert (
            relative_error_reconstructed(original, engine, reconstructions=2, seed=9)
            == expected
        )
        assert (
            relative_error_reconstructed(original, store, reconstructions=2, seed=9)
            == expected
        )


# --------------------------------------------------------------------------- #
# reconstruction-based estimates: seeding and backend parity
# --------------------------------------------------------------------------- #
class TestReconstructedSupport:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_same_seed_same_estimate(self, workload_stores, name):
        _, published, store = workload_stores[name]
        probe = [queries.top_terms(published.chunk_dataset(), 1)[0][0]]
        first = QueryEngine(store, seed=11).reconstructed_support(
            probe, reconstructions=3
        )
        second = QueryEngine(store, seed=11).reconstructed_support(
            probe, reconstructions=3
        )
        assert first == second

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_store_matches_in_memory_per_seed(self, workload_stores, name):
        _, published, store = workload_stores[name]
        probe = [queries.top_terms(published.chunk_dataset(), 1)[0][0]]
        for seed in (0, 11):
            indexed = QueryEngine(store, seed=seed).reconstructed_support(
                probe, reconstructions=2
            )
            memory = QueryEngine(published, seed=seed).reconstructed_support(
                probe, reconstructions=2
            )
            oracle = SupportEstimator(published, seed=seed).reconstructed_support(
                probe, reconstructions=2
            )
            assert indexed == memory == oracle

    def test_call_seed_overrides_engine_seed(self, workload_stores):
        _, published, store = workload_stores["quest"]
        probe = [queries.top_terms(published.chunk_dataset(), 1)[0][0]]
        overridden = QueryEngine(store, seed=1).reconstructed_support(
            probe, reconstructions=2, seed=11
        )
        direct = QueryEngine(store, seed=11).reconstructed_support(
            probe, reconstructions=2
        )
        assert overridden == direct


# --------------------------------------------------------------------------- #
# execute(): the validated dispatch shared by HTTP and the CLI
# --------------------------------------------------------------------------- #
class TestExecuteDispatch:
    def test_every_op_answers_identically_on_both_backends(self, workload_stores):
        _, published, store = workload_stores["quest"]
        indexed, memory = QueryEngine(store, seed=3), QueryEngine(published, seed=3)
        terms = [queries.top_terms(published.chunk_dataset(), 2)[0][0]]
        params_by_op = {
            "describe": {},
            "top_terms": {"count": 5},
            "cooccurrence_count": {"terms": terms},
            "containment_ratio": {"terms": terms},
            "rule_confidence": {"antecedent": terms, "consequent": terms},
            "frequent_pairs": {"min_support": 3},
            "lower_bound": {"terms": terms},
            "expected_support": {"terms": terms},
            "reconstructed_support": {"terms": terms, "reconstructions": 2},
        }
        assert set(params_by_op) == set(QUERY_OPS)
        for op, params in params_by_op.items():
            a, b = indexed.execute(op, params), memory.execute(op, params)
            assert a["op"] == b["op"] == op
            assert (a["backend"], b["backend"]) == ("store", "memory")
            if op != "describe":  # describe legitimately reports the backend
                assert a["result"] == b["result"], op
            json.dumps(a)  # every envelope must be JSON-safe

    def test_unknown_op_and_params_are_parameter_errors(self, workload_stores):
        _, _, store = workload_stores["quest"]
        engine = QueryEngine(store)
        with pytest.raises(ParameterError):
            engine.execute("nope")
        with pytest.raises(ParameterError):
            engine.execute("top_terms", {"bogus": 1})
        with pytest.raises(ParameterError):
            engine.execute("cooccurrence_count")  # missing required terms
        with pytest.raises(ParameterError):
            engine.execute("cooccurrence_count", {"terms": "not-a-list"})
        with pytest.raises(ParameterError):
            engine.execute("top_terms", {"count": "abc"})
        with pytest.raises(ParameterError):
            QueryEngine("not a publication")


# --------------------------------------------------------------------------- #
# lifecycle refusals
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_unbuilt_store_refuses_queries(self, tmp_path):
        with PublicationStore(tmp_path / "empty") as store:
            assert not store.initialized
            with pytest.raises(StoreError):
                store.validate()
            with pytest.raises(StoreError):
                store.top_terms(3)
            with pytest.raises(StoreError):
                QueryEngine(store)

    def test_version_mismatch_is_refused(self, tmp_path):
        published = Disassociator(PARAMS).anonymize(
            make_workload("quest", records=120, domain=30, avg_len=4.0, seed=4)
        )
        PublicationStore.from_publication(published, tmp_path / "s").close()
        db = sqlite3.connect(tmp_path / "s" / "publication.sqlite")
        db.execute("UPDATE meta SET value = '999' WHERE key = 'version'")
        db.commit()
        db.close()
        with PublicationStore(tmp_path / "s") as store:
            with pytest.raises(StoreError, match="version"):
                store.validate()

    def test_exclusive_opens_serialize(self, tmp_path):
        holder = PublicationStore(tmp_path / "s", exclusive=True)
        try:
            with pytest.raises(StoreError, match="lock"):
                PublicationStore(tmp_path / "s", exclusive=True, lock_timeout=0.2)
        finally:
            holder.close()
        # released: the next exclusive open succeeds immediately
        PublicationStore(tmp_path / "s", exclusive=True, lock_timeout=0.2).close()


# --------------------------------------------------------------------------- #
# faults and deadlines (the resilience contract)
# --------------------------------------------------------------------------- #
class TestFaultsAndDeadlines:
    def _publication(self):
        return Disassociator(PARAMS).anonymize(
            make_workload("quest", records=150, domain=40, avg_len=4.0, seed=5)
        )

    def test_open_honors_the_fault_point(self, tmp_path):
        with faults.active(faults.FaultPlan.from_text("pubstore.open:1")):
            with pytest.raises(FaultInjected):
                PublicationStore(tmp_path / "s")

    def test_crash_before_build_leaves_store_unbuilt_then_rebuild(self, tmp_path):
        published = self._publication()
        with faults.active(faults.FaultPlan.from_text("pubstore.build:1")):
            with pytest.raises(FaultInjected):
                PublicationStore.from_publication(published, tmp_path / "s")
        with PublicationStore(tmp_path / "s") as store:
            assert not store.initialized
        # recovery is simply running the build again, same inputs
        with PublicationStore.from_publication(published, tmp_path / "s") as store:
            assert store.load_publication().to_dict() == published.to_dict()

    def test_crash_mid_build_rolls_back_to_previous_snapshot(self, tmp_path):
        first = self._publication()
        second = Disassociator(PARAMS).anonymize(
            make_workload("quest", records=150, domain=40, avg_len=4.0, seed=6)
        )
        with PublicationStore.from_publication(first, tmp_path / "s") as store:
            before = store.describe()
            # hit 2 fires *inside* the rebuild transaction, just before
            # its COMMIT: everything already deleted and re-inserted.
            with faults.active(faults.FaultPlan.from_text("pubstore.build:2")):
                with pytest.raises(FaultInjected):
                    store.build(second, generation=9)
            assert store.describe() == before
            assert store.load_publication().to_dict() == first.to_dict()
            # and the interrupted rebuild completes cleanly when re-run
            store.build(second, generation=9)
            assert store.load_publication().to_dict() == second.to_dict()

    def test_query_honors_the_fault_point(self, tmp_path):
        with PublicationStore.from_publication(
            self._publication(), tmp_path / "s"
        ) as store:
            engine = QueryEngine(store)
            with faults.active(faults.FaultPlan.from_text("pubstore.query:1")):
                with pytest.raises(FaultInjected):
                    engine.top_terms(3)

    @pytest.mark.parametrize("point", ["pubstore.open", "pubstore.build", "pubstore.query"])
    def test_points_are_registered(self, point):
        assert point in faults.INJECTION_POINTS

    def test_expired_deadline_aborts_open_build_and_query(self, tmp_path):
        published = self._publication()
        expired = deadline_mod.Deadline(1e-9, anchor=time.monotonic() - 1.0)
        with deadline_mod.scope(expired):
            with pytest.raises(DeadlineExceededError):
                PublicationStore(tmp_path / "s")
        with PublicationStore(tmp_path / "s") as store:
            with deadline_mod.scope(expired):
                with pytest.raises(DeadlineExceededError):
                    store.build(published)
            store.build(published)
            engine = QueryEngine(store)
            with deadline_mod.scope(expired):
                with pytest.raises(DeadlineExceededError):
                    engine.top_terms(3)


# --------------------------------------------------------------------------- #
# incremental refresh: the pubstore tracks the shard store generation
# --------------------------------------------------------------------------- #
class TestDeltaRefresh:
    RECORDS = [
        frozenset({f"a{i % 7}", f"b{i % 5}", f"c{i % 11}"}) for i in range(140)
    ]

    def _pipeline(self, tmp_path, **overrides):
        values = dict(
            shards=3,
            max_records_in_memory=100,
            store_dir=tmp_path / "shards",
            pubstore_dir=tmp_path / "pub",
        )
        values.update(overrides)
        return IncrementalPipeline(PARAMS, StreamParams(**values))

    def _generations(self, tmp_path):
        with ShardStore(tmp_path / "shards") as shards:
            shard_generation = shards.generation
        with PublicationStore(tmp_path / "pub") as pub:
            return shard_generation, pub.generation, pub.initialized

    def test_delta_publish_refreshes_the_store_in_lockstep(self, tmp_path):
        pipeline = self._pipeline(tmp_path)
        published = pipeline.run(append=self.RECORDS[:100])
        assert pipeline.last_report.pubstore_refreshed
        assert pipeline.last_report.pubstore_seconds > 0.0
        shard_gen, pub_gen, built = self._generations(tmp_path)
        assert built and pub_gen == shard_gen
        with PublicationStore(tmp_path / "pub") as pub:
            assert pub.load_publication().to_dict() == published.to_dict()

        mutated = pipeline.run(append=self.RECORDS[100:], delete=self.RECORDS[:5])
        assert pipeline.last_report.pubstore_refreshed
        shard_gen, pub_gen, _ = self._generations(tmp_path)
        assert pub_gen == shard_gen
        with PublicationStore(tmp_path / "pub") as pub:
            assert pub.load_publication().to_dict() == mutated.to_dict()
            engine = QueryEngine(pub)
            oracle = mutated.chunk_dataset()
            assert engine.top_terms(10) == queries.top_terms(oracle, 10)

    def test_noop_delta_skips_an_up_to_date_store(self, tmp_path):
        pipeline = self._pipeline(tmp_path)
        pipeline.run(append=self.RECORDS[:80])
        pipeline.run()  # no-op fast path, store already in sync
        assert not pipeline.last_report.pubstore_refreshed

    def test_noop_delta_heals_a_lagging_store(self, tmp_path):
        pipeline = self._pipeline(tmp_path)
        published = pipeline.run(append=self.RECORDS[:80])
        # simulate a crash between publication commit and pubstore
        # refresh: the pubstore vanishes (worst-case lag)
        (tmp_path / "pub" / "publication.sqlite").unlink()
        pipeline.run()
        assert pipeline.last_report.pubstore_refreshed
        shard_gen, pub_gen, built = self._generations(tmp_path)
        assert built and pub_gen == shard_gen
        with PublicationStore(tmp_path / "pub") as pub:
            assert pub.load_publication().to_dict() == published.to_dict()

    def test_crash_during_refresh_recovers_on_the_next_run(self, tmp_path):
        pipeline = self._pipeline(tmp_path)
        # the delta itself commits, then the pubstore build dies
        with faults.active(faults.FaultPlan.from_text("pubstore.build:1")):
            with pytest.raises(FaultInjected):
                pipeline.run(append=self.RECORDS[:80])
        with ShardStore(tmp_path / "shards") as shards:
            committed = shards.generation
        assert committed >= 1  # the publication is durable...
        with PublicationStore(tmp_path / "pub") as pub:
            assert not pub.initialized  # ...but the pubstore lags
        published = pipeline.run()  # reconcile-only run heals it
        assert pipeline.last_report.pubstore_refreshed
        shard_gen, pub_gen, built = self._generations(tmp_path)
        assert built and pub_gen == shard_gen
        with PublicationStore(tmp_path / "pub") as pub:
            assert pub.load_publication().to_dict() == published.to_dict()

    def test_pubstore_dir_is_not_part_of_the_run_identity(self, tmp_path):
        with_pubstore = StreamParams(
            shards=3,
            max_records_in_memory=100,
            store_dir=tmp_path / "shards",
            pubstore_dir=tmp_path / "pub",
        )
        without = StreamParams(
            shards=3, max_records_in_memory=100, store_dir=tmp_path / "shards"
        )
        assert run_fingerprint(PARAMS, with_pubstore) == run_fingerprint(
            PARAMS, without
        )


# --------------------------------------------------------------------------- #
# the service facade and the HTTP front door
# --------------------------------------------------------------------------- #
class TestServiceQuery:
    @pytest.fixture()
    def service_store(self, tmp_path):
        original = make_workload("quest", records=200, domain=50, avg_len=4.0, seed=8)
        config = ServiceConfig(
            k=3, m=2, max_cluster_size=12, pubstore_dir=str(tmp_path / "pub")
        )
        with AnonymizationService(config) as service:
            result = service.run(original, mode="batch")
            result.save_store(tmp_path / "pub").close()
            yield service, result.publication

    def test_query_answers_match_the_in_memory_oracle(self, service_store):
        service, published = service_store
        answer = service.query("top_terms", {"count": 5})
        assert answer["backend"] == "store"
        assert answer["result"] == [
            [term, support]
            for term, support in queries.top_terms(published.chunk_dataset(), 5)
        ]

    def test_query_without_pubstore_dir_is_a_parameter_error(self):
        with AnonymizationService(ServiceConfig(k=3, m=2)) as service:
            with pytest.raises(ParameterError, match="pubstore_dir"):
                service.query("top_terms")

    def test_query_against_unbuilt_store_is_a_store_error(self, tmp_path):
        config = ServiceConfig(k=3, m=2, pubstore_dir=str(tmp_path / "missing"))
        with AnonymizationService(config) as service:
            with pytest.raises(StoreError):
                service.query("top_terms")

    def test_queries_show_up_in_stats(self, service_store):
        service, _ = service_store
        before = service.stats()["queries"]["served"]
        service.query("describe")
        after = service.stats()
        assert after["queries"]["served"] == before + 1
        assert after["latency"]["query_seconds"]["count"] >= before + 1


class TestHttpQuery:
    @pytest.fixture()
    def server(self, tmp_path):
        original = make_workload("quest", records=200, domain=50, avg_len=4.0, seed=8)
        config = ServiceConfig(
            k=3, m=2, max_cluster_size=12, pubstore_dir=str(tmp_path / "pub")
        )
        service = AnonymizationService(config)
        service.run(original, mode="batch").save_store(tmp_path / "pub").close()
        server = ServiceHTTPServer(service, port=0).start()
        yield server
        server.close()

    @staticmethod
    def _get(url):
        try:
            with urllib.request.urlopen(url) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    @staticmethod
    def _post(url, body):
        request = urllib.request.Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_get_and_post_answer_identically(self, server):
        status, via_get = self._get(server.url + "/query?op=top_terms&count=5")
        assert status == 200
        status, via_post = self._post(
            server.url + "/query", {"op": "top_terms", "count": 5}
        )
        assert status == 200
        assert via_get == via_post
        assert via_get["backend"] == "store"

    def test_get_repeats_term_parameters(self, server):
        status, body = self._get(
            server.url + "/query?op=cooccurrence_count&term=t1&term=t2"
        )
        assert status == 200 and isinstance(body["result"], int)
        status, body = self._get(
            server.url
            + "/query?op=rule_confidence&antecedent=t1&consequent=t2"
        )
        assert status == 200

    def test_error_kinds(self, server):
        for url, kind in [
            ("/query?op=nope", "bad_request"),
            ("/query?op=top_terms&count=abc", "bad_request"),
            ("/query?op=top_terms&bogus=1", "bad_request"),
            ("/query", "bad_request"),  # no op at all
        ]:
            status, body = self._get(server.url + url)
            assert status == 400 and body["kind"] == kind, (url, status, body)
        status, body = self._post(server.url + "/query", {"count": 5})
        assert status == 400 and body["kind"] == "bad_request"

    def test_unbuilt_store_maps_to_conflict(self, tmp_path):
        config = ServiceConfig(k=3, m=2, pubstore_dir=str(tmp_path / "missing"))
        server = ServiceHTTPServer(AnonymizationService(config), port=0).start()
        try:
            status, body = self._get(server.url + "/query?op=top_terms")
            assert status == 409 and body["kind"] == "checkpoint_conflict"
        finally:
            server.close()

    def test_unconfigured_service_maps_to_bad_request(self):
        server = ServiceHTTPServer(
            AnonymizationService(ServiceConfig(k=3, m=2)), port=0
        ).start()
        try:
            status, body = self._get(server.url + "/query?op=top_terms")
            assert status == 400 and body["kind"] == "bad_request"
        finally:
            server.close()


# --------------------------------------------------------------------------- #
# the CLI front door
# --------------------------------------------------------------------------- #
class TestCliQuery:
    @pytest.fixture()
    def anonymized(self, tmp_path):
        from repro.cli import main
        from repro.datasets.io import write_transactions

        original = make_workload("quest", records=200, domain=50, avg_len=4.0, seed=8)
        data = tmp_path / "data.txt"
        write_transactions(original, data)
        rc = main(
            [
                "anonymize",
                str(data),
                "--k",
                "3",
                "--m",
                "2",
                "--max-cluster-size",
                "12",
                "--output",
                str(tmp_path / "pub.json"),
                "--pubstore-dir",
                str(tmp_path / "store"),
            ]
        )
        assert rc == 0
        return tmp_path

    def _run(self, capsys, argv) -> tuple:
        from repro.cli import main

        capsys.readouterr()
        rc = main(argv)
        return rc, capsys.readouterr().out

    def test_store_and_publication_sources_answer_identically(
        self, anonymized, capsys
    ):
        rc, via_store = self._run(
            capsys,
            ["query", "top_terms", "--store", str(anonymized / "store"), "--count", "5"],
        )
        assert rc == 0
        rc, via_json = self._run(
            capsys,
            [
                "query",
                "top_terms",
                "--publication",
                str(anonymized / "pub.json"),
                "--count",
                "5",
            ],
        )
        assert rc == 0
        store_payload, json_payload = json.loads(via_store), json.loads(via_json)
        assert store_payload["result"] == json_payload["result"]
        assert store_payload["backend"] == "store"
        assert json_payload["backend"] == "memory"

    def test_seeded_reconstruction_is_deterministic(self, anonymized, capsys):
        argv = [
            "query",
            "reconstructed_support",
            "--store",
            str(anonymized / "store"),
            "--terms",
            "t1",
            "--reconstructions",
            "2",
            "--seed",
            "11",
        ]
        rc1, first = self._run(capsys, argv)
        rc2, second = self._run(capsys, argv)
        assert rc1 == rc2 == 0 and first == second

    def test_exactly_one_source_is_required(self, anonymized, capsys):
        rc, _ = self._run(capsys, ["query", "top_terms"])
        assert rc == 2
        rc, _ = self._run(
            capsys,
            [
                "query",
                "top_terms",
                "--store",
                str(anonymized / "store"),
                "--publication",
                str(anonymized / "pub.json"),
            ],
        )
        assert rc == 2

    def test_store_error_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["query", "top_terms", "--store", str(tmp_path / "nothing")])
        assert rc == 2

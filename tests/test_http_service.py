"""Tests for the multi-worker service and its HTTP front door.

Covers the PR-7 concurrency surface:

* ``ServiceConfig.workers`` validation and env parsing;
* N-worker vs sequential bit-for-bit equivalence (the worker pool must
  never change a publication);
* the shared (locked) vocabulary staying consistent under concurrent
  interning;
* ``stats()`` schema consistency between the ``run()`` and ``submit()``
  paths -- queue depth, worker counts, latency histograms -- and
  single-counting of auto-routed stream requests;
* the HTTP endpoints: ``POST /anonymize`` (sync + async) bit-for-bit
  against ``service.run()``, ``GET /jobs/<id>``, ``GET /stats``,
  ``GET /healthz``, error mapping (400/404/405), saturation (429) and
  closed-service (503) backpressure;
* drain-vs-cancel shutdown with in-flight HTTP-submitted jobs.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import (
    AnonymizationService,
    ParameterError,
    ServiceConfig,
    TransactionDataset,
    Vocabulary,
)
from repro.service import LatencyHistogram, ServiceHTTPServer
from repro.datasets.quest import generate_quest


def quest(records=120, domain=40, seed=0) -> TransactionDataset:
    """A small deterministic QUEST dataset for HTTP/worker tests."""
    return generate_quest(
        num_transactions=records,
        domain_size=domain,
        avg_transaction_size=5.0,
        seed=seed,
    )


BASE_CONFIG = ServiceConfig(k=3, max_cluster_size=10, verify=False)


def http(base: str, method: str, path: str, payload=None, timeout=60):
    """One HTTP round-trip; returns ``(status, decoded-json)``."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


@pytest.fixture()
def served():
    """A 2-worker service behind a live HTTP server on a free port."""
    service = AnonymizationService(
        BASE_CONFIG.with_overrides(workers=2, max_pending=8)
    )
    server = ServiceHTTPServer(service, port=0)
    server.start()
    try:
        yield server
    finally:
        server.close(drain=False)


# --------------------------------------------------------------------------- #
# ServiceConfig.workers
# --------------------------------------------------------------------------- #
class TestWorkersConfig:
    @pytest.mark.parametrize("workers", [0, -1, "two"])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ParameterError, match="workers"):
            ServiceConfig(workers=workers)

    def test_workers_from_env(self):
        config = ServiceConfig.from_env({"REPRO_SERVICE_WORKERS": "3"})
        assert config.workers == 3

    def test_workers_round_trips_through_dict(self):
        config = ServiceConfig(workers=4)
        assert ServiceConfig.from_dict(config.to_dict()) == config


# --------------------------------------------------------------------------- #
# worker-pool equivalence and the shared vocabulary
# --------------------------------------------------------------------------- #
class TestWorkerPool:
    def test_multi_worker_submits_match_sequential_runs(self):
        datasets = [quest(100, seed=seed) for seed in range(6)]
        with AnonymizationService(BASE_CONFIG) as service:
            sequential = [service.run(d, mode="batch").to_dict() for d in datasets]
        with AnonymizationService(BASE_CONFIG.with_overrides(workers=3)) as service:
            jobs = [service.submit(d, mode="batch") for d in datasets]
            concurrent = [job.result(timeout=120).to_dict() for job in jobs]
        assert concurrent == sequential

    def test_multi_worker_mixed_run_and_submit_match(self):
        dataset = quest(100)
        with AnonymizationService(BASE_CONFIG) as service:
            expected = service.run(dataset, mode="batch").to_dict()
        with AnonymizationService(BASE_CONFIG.with_overrides(workers=2)) as service:
            job = service.submit(dataset, mode="batch")
            sync = service.run(dataset, mode="batch")
            assert job.result(timeout=120).to_dict() == expected
            assert sync.to_dict() == expected

    def test_multi_worker_service_spawns_all_workers(self):
        with AnonymizationService(BASE_CONFIG.with_overrides(workers=3)) as service:
            job = service.submit(quest(40), mode="batch")
            job.result(timeout=60)
            stats = service.stats()
        assert stats["workers"]["configured"] == 3
        assert stats["workers"]["started"] == 3
        assert len(service._engines) == 3

    def test_close_drains_across_workers(self):
        service = AnonymizationService(BASE_CONFIG.with_overrides(workers=2))
        jobs = [service.submit(quest(80, seed=seed), mode="batch") for seed in range(4)]
        service.close(drain=True)
        for job in jobs:
            assert job.result(timeout=1).mode == "batch"

    def test_shared_vocabulary_consistent_under_concurrent_interning(self):
        vocab = Vocabulary().make_shared()
        universe = [f"t{i}" for i in range(300)]
        errors = []

        def intern_range(offset):
            try:
                for term in universe[offset:] + universe[:offset]:
                    vocab.intern(term)
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [
            threading.Thread(target=intern_range, args=(offset,))
            for offset in (0, 100, 200, 250)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(vocab) == len(universe)
        ids = [vocab.id_of(term) for term in universe]
        assert sorted(ids) == list(range(len(universe)))  # dense, no duplicates
        for term in universe:
            assert vocab.decode(vocab.id_of(term)) == term

    def test_shared_vocabulary_arena_is_per_thread(self):
        vocab = Vocabulary().make_shared()
        arenas = {}

        def grab(name):
            arenas[name] = vocab.subrecord_arena()

        threads = [threading.Thread(target=grab, args=(n,)) for n in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert arenas["a"] is not arenas["b"]
        # Unshared vocabularies keep the single cached arena.
        plain = Vocabulary()
        assert plain.subrecord_arena() is plain.subrecord_arena()


# --------------------------------------------------------------------------- #
# stats(): one schema for both entry paths, no double counting
# --------------------------------------------------------------------------- #
class TestStats:
    def test_same_schema_for_run_and_submit_paths(self):
        with AnonymizationService(BASE_CONFIG) as service:
            service.run(quest(40), mode="batch")
            run_stats = service.stats()
            service.submit(quest(40), mode="batch").result(timeout=60)
            submit_stats = service.stats()
        assert set(run_stats) == set(submit_stats)
        for stats in (run_stats, submit_stats):
            assert stats["queue"]["depth"] == stats["pending_jobs"]
            assert stats["queue"]["capacity"] == BASE_CONFIG.max_pending
            assert stats["workers"]["configured"] == BASE_CONFIG.workers
            assert stats["latency"]["request_seconds"]["count"] >= 1
        # The run() path reports zero started queue workers; submit spawns
        # them -- both report the same configured count.
        assert run_stats["workers"]["started"] == 0
        assert submit_stats["workers"]["started"] == BASE_CONFIG.workers

    def test_requests_counted_once_per_request(self):
        with AnonymizationService(
            BASE_CONFIG.with_overrides(shards=2, max_records_in_memory=50)
        ) as service:
            service.run(quest(40), mode="batch")
            assert service.stats()["requests_served"] == 1
            # Auto-routed to the streaming pipeline (threshold below input
            # size): still exactly one served request, one stream-mode tick.
            service.run(quest(80), overrides={"auto_stream_threshold": 60})
            stats = service.stats()
        assert stats["requests_served"] == 2
        assert stats["requests"]["completed"] == 2
        assert stats["requests"]["by_mode"] == {"batch": 1, "stream": 1}

    def test_queue_wait_recorded_for_submitted_jobs_only(self):
        with AnonymizationService(BASE_CONFIG) as service:
            service.run(quest(40), mode="batch")
            assert service.stats()["latency"]["queue_wait_seconds"]["count"] == 0
            service.submit(quest(40), mode="batch").result(timeout=60)
            stats = service.stats()
        assert stats["latency"]["queue_wait_seconds"]["count"] == 1
        assert stats["latency"]["request_seconds"]["count"] == 2

    def test_phase_seconds_accumulate(self):
        with AnonymizationService(BASE_CONFIG) as service:
            service.run(quest(60), mode="batch")
            phases = service.stats()["phases"]["seconds"]
        assert {"horizontal_seconds", "vertical_seconds", "refine_seconds"} <= set(
            phases
        )

    def test_failed_requests_counted_as_failed(self):
        with AnonymizationService(BASE_CONFIG) as service:
            with pytest.raises(Exception):
                service.run("/does/not/exist.jsonl", mode="batch")
            stats = service.stats()
        assert stats["requests"]["failed"] == 1
        assert stats["requests"]["completed"] == 0


class TestLatencyHistogram:
    def test_percentiles_and_buckets(self):
        histogram = LatencyHistogram()
        for value in [0.01, 0.02, 0.03, 0.04, 0.4]:
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["min_seconds"] == 0.01
        assert snapshot["max_seconds"] == 0.4
        assert snapshot["p50_seconds"] == 0.03
        assert snapshot["p99_seconds"] == 0.4
        assert snapshot["buckets"]["le_inf"] == 5
        assert snapshot["buckets"]["le_0.05"] == 4

    def test_empty_histogram_snapshot(self):
        snapshot = LatencyHistogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50_seconds"] is None
        assert snapshot["mean_seconds"] is None


# --------------------------------------------------------------------------- #
# HTTP endpoints
# --------------------------------------------------------------------------- #
class TestHttpEndpoints:
    def test_healthz_ok(self, served):
        status, payload = http(served.url, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "workers": 2}

    def test_stats_smoke(self, served):
        status, payload = http(served.url, "GET", "/stats")
        assert status == 200
        assert payload["queue"]["capacity"] == 8
        assert payload["workers"]["configured"] == 2
        assert "request_seconds" in payload["latency"]

    def test_sync_anonymize_matches_service_run(self, served):
        dataset = quest(100)
        expected = served.service.run(dataset, mode="batch")
        status, payload = http(
            served.url,
            "POST",
            "/anonymize",
            {"records": [sorted(r) for r in dataset], "mode": "batch", "tag": "t"},
        )
        assert status == 200
        assert payload["mode"] == "batch"
        assert payload["tag"] == "t"
        assert payload["publication"] == expected.to_dict()

    def test_async_anonymize_job_lifecycle(self, served):
        dataset = quest(100)
        expected = served.service.run(dataset, mode="batch")
        status, submitted = http(
            served.url,
            "POST",
            "/anonymize",
            {"records": [sorted(r) for r in dataset], "mode": "batch", "async": True},
        )
        assert status == 202
        assert submitted["state"] in ("pending", "running", "done")
        for _ in range(600):
            status, job = http(served.url, "GET", submitted["href"])
            assert status == 200
            if job["state"] in ("done", "failed", "cancelled"):
                break
            import time

            time.sleep(0.05)
        assert job["state"] == "done"
        assert job["publication"] == expected.to_dict()

    def test_unknown_job_404(self, served):
        status, payload = http(served.url, "GET", "/jobs/job-999999")
        assert status == 404
        assert "unknown job" in payload["error"]

    def test_bad_body_400(self, served):
        status, payload = http(served.url, "POST", "/anonymize", {"nope": 1})
        assert status == 400
        assert "records" in payload["error"]

    def test_bad_mode_400(self, served):
        status, payload = http(
            served.url, "POST", "/anonymize", {"records": [["a", "b"]], "mode": "warp"}
        )
        assert status == 400

    def test_bad_override_key_400(self, served):
        status, payload = http(
            served.url,
            "POST",
            "/anonymize",
            {"records": [["a", "b"]], "overrides": {"max_clustersize": 4}},
        )
        assert status == 400
        assert "unknown ServiceConfig" in payload["error"]

    def test_unknown_path_404_and_wrong_method_405(self, served):
        assert http(served.url, "GET", "/nope")[0] == 404
        assert http(served.url, "POST", "/stats", {})[0] == 404
        status, payload = http(served.url, "GET", "/anonymize")
        assert status == 405

    def test_per_request_overrides_apply(self, served):
        dataset = quest(80)
        expected = served.service.run(dataset, mode="batch", overrides={"k": 2})
        status, payload = http(
            served.url,
            "POST",
            "/anonymize",
            {"records": [sorted(r) for r in dataset], "mode": "batch",
             "overrides": {"k": 2}},
        )
        assert status == 200
        assert payload["publication"] == expected.to_dict()


# --------------------------------------------------------------------------- #
# backpressure and shutdown under in-flight HTTP jobs
# --------------------------------------------------------------------------- #
def gated_source(gate, records):
    """An iterable that parks its consumer (a worker) until ``gate`` opens."""

    def generator():
        gate.wait(timeout=120)
        yield from records

    return generator()


class TestHttpBackpressure:
    def test_saturated_queue_answers_429(self):
        service = AnonymizationService(
            BASE_CONFIG.with_overrides(workers=1, max_pending=1)
        )
        server = ServiceHTTPServer(service, port=0)
        server.start()
        gate = threading.Event()
        records = [sorted(r) for r in quest(40)]
        try:
            # Occupy the single worker with a gated job, then fill the
            # one-slot queue; the next HTTP submit must bounce with 429.
            blocked = service.submit(gated_source(gate, quest(40)), mode="batch")
            queued_status, queued = http(
                server.url, "POST", "/anonymize",
                {"records": records, "mode": "batch", "async": True},
            )
            assert queued_status == 202
            status, payload = http(
                server.url, "POST", "/anonymize",
                {"records": records, "mode": "batch", "async": True},
            )
            assert status == 429
            assert "full" in payload["error"]
            assert service.stats()["jobs"]["rejected_saturated"] >= 1
            gate.set()
            assert blocked.result(timeout=120).mode == "batch"
            status, job = http(server.url, "GET", queued["href"])
            while job["state"] in ("pending", "running"):
                status, job = http(server.url, "GET", queued["href"])
            assert job["state"] == "done"
        finally:
            gate.set()
            server.close(drain=False)

    def test_drain_shutdown_finishes_inflight_http_jobs(self):
        service = AnonymizationService(
            BASE_CONFIG.with_overrides(workers=1, max_pending=4)
        )
        server = ServiceHTTPServer(service, port=0, own_service=False)
        server.start()
        gate = threading.Event()
        records = [sorted(r) for r in quest(60)]
        try:
            blocked = service.submit(gated_source(gate, quest(60)), mode="batch")
            _, queued = http(
                server.url, "POST", "/anonymize",
                {"records": records, "mode": "batch", "async": True},
            )
            closer = threading.Thread(target=service.close, kwargs={"drain": True})
            closer.start()
            gate.set()
            closer.join(timeout=120)
            assert not closer.is_alive()
            assert blocked.result(timeout=1).mode == "batch"
            # The server still answers: the drained job completed, and the
            # closed service reports unhealthy.
            status, job = http(server.url, "GET", queued["href"])
            assert (status, job["state"]) == (200, "done")
            assert http(server.url, "GET", "/healthz")[0] == 503
            status, _ = http(
                server.url, "POST", "/anonymize",
                {"records": records, "mode": "batch"},
            )
            assert status == 503
        finally:
            gate.set()
            server.close(drain=False)

    def test_cancel_shutdown_cancels_queued_http_jobs(self):
        service = AnonymizationService(
            BASE_CONFIG.with_overrides(workers=1, max_pending=4)
        )
        server = ServiceHTTPServer(service, port=0, own_service=False)
        server.start()
        gate = threading.Event()
        records = [sorted(r) for r in quest(60)]
        try:
            blocked = service.submit(gated_source(gate, quest(60)), mode="batch")
            _, queued = http(
                server.url, "POST", "/anonymize",
                {"records": records, "mode": "batch", "async": True},
            )
            closer = threading.Thread(target=service.close, kwargs={"drain": False})
            closer.start()
            gate.set()
            closer.join(timeout=120)
            assert not closer.is_alive()
            # The in-flight job finished; the queued one was cancelled.
            assert blocked.result(timeout=1).mode == "batch"
            status, job = http(server.url, "GET", queued["href"])
            assert (status, job["state"]) == (200, "cancelled")
            assert "cancelled" in job["error"]
        finally:
            gate.set()
            server.close(drain=False)


# --------------------------------------------------------------------------- #
# the serve CLI plumbing
# --------------------------------------------------------------------------- #
class TestServeCli:
    def test_parser_accepts_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--max-pending", "16"]
        )
        assert (args.command, args.workers, args.max_pending) == ("serve", 2, 16)

    def test_serve_config_env_then_flags(self, monkeypatch):
        from repro.cli import _serve_config, build_parser

        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "4")
        monkeypatch.setenv("REPRO_SERVICE_K", "7")
        args = build_parser().parse_args(["serve", "--workers", "2"])
        config = _serve_config(args)
        assert config.workers == 2  # flag beats env
        assert config.k == 7  # env beats default

"""Cross-cluster wave batching: parity, crossover resolution, and counters.

The wave kernels (:class:`repro.core.kernels.WaveBatch`,
:func:`repro.core.vertical.vertical_partition_wave`, the REFINE pair-wave
pre-pass and :func:`repro.core.anonymity.km_anonymous_batch`) promise
**bit-for-bit identical decisions** to the per-cluster bigint path and the
string reference.  This suite is that promise's enforcement:

* randomized brute-force parity of ``WaveBatch`` pairwise verdicts and
  whole-group k^m verdicts,
* ``packed_min_rows`` resolution semantics (explicit choice > forced >
  environment > module default) and validation,
* VERPART wave parity against :func:`vertical_partition_fast`, including
  ragged waves mixing singleton and thousand-row clusters,
* end-to-end refine parity (waved vs per-cluster vs string backend) on the
  three dataset scenarios, with the wave/fallback counter invariant,
* graceful numpy-absent fallback, and
* ``SubrecordArena`` interning semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.core import kernels
from repro.core.anonymity import is_km_anonymous, km_anonymous_batch
from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.horizontal import horizontal_partition
from repro.core.vertical import vertical_partition_fast, vertical_partition_wave
from repro.core.vocab import SubrecordArena
from repro.exceptions import ParameterError
from tests.conftest import make_workload

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy >= 2.0 not importable"
)

SCENARIOS = ("quest", "zipf", "clickstream")


def _scenario_dataset(name: str, seed: int) -> TransactionDataset:
    if name == "quest":
        return make_workload("quest", records=300, domain=90, avg_len=5.0, seed=seed)
    if name == "zipf":
        return make_workload("zipf", records=300, domain=120, avg_len=4.0, seed=seed)
    if name == "clickstream":
        return make_workload(
            "clickstream", records=300, domain=120, avg_len=4.0, seed=seed, sections=5
        )
    raise AssertionError(name)


def _random_group(rng: random.Random, rows: int, terms: int) -> list[int]:
    masks = []
    for _ in range(terms):
        mask = 0
        for row in range(rows):
            if rng.random() < rng.choice((0.1, 0.4, 0.8)):
                mask |= 1 << row
        if mask:
            masks.append(mask)
    return masks


def _brute_bad_pairs(masks: list[int], k: int) -> list[int]:
    bad = [0] * len(masks)
    for i, left in enumerate(masks):
        for j in range(i + 1, len(masks)):
            support = (left & masks[j]).bit_count()
            if 0 < support < k:
                bad[i] |= 1 << j
                bad[j] |= 1 << i
    return bad


# --------------------------------------------------------------------------- #
# WaveBatch kernel parity
# --------------------------------------------------------------------------- #
@requires_numpy
class TestWaveBatch:
    def test_bad_pair_masks_match_brute_force(self):
        rng = random.Random(0x57A7E)
        for trial in range(60):
            k = rng.randint(2, 6)
            wave = kernels.WaveBatch(k)
            groups = []
            for _ in range(rng.randint(1, 8)):
                rows = rng.choice((1, 2, 5, 30, 70, 150))
                masks = _random_group(rng, rows, rng.randint(0, 7))
                wave.add_group(masks, rows)
                groups.append(masks)
            by_group = wave.bad_pair_masks()
            for index, masks in enumerate(groups):
                expected = _brute_bad_pairs(masks, k)
                got = by_group.get(index)
                if got is None:
                    # Absent group == no conflicting pair anywhere in it.
                    assert not any(expected), f"trial {trial} group {index}"
                else:
                    assert list(got) == expected, f"trial {trial} group {index}"

    def test_group_km_verdicts_match_is_km_anonymous(self):
        rng = random.Random(0xBEEF)
        for _ in range(40):
            k = rng.randint(2, 5)
            chunks = []
            for _ in range(rng.randint(1, 6)):
                rows = rng.randint(1, 40)
                records = []
                for _ in range(rows):
                    size = rng.randint(1, 5)
                    records.append(frozenset(f"t{rng.randint(0, 12)}" for _ in range(size)))
                chunks.append(records)
            with kernels.use("numpy", 1):
                batched = km_anonymous_batch(chunks, k, 2)
            with kernels.use("python"):
                expected = [is_km_anonymous(records, k, 2) for records in chunks]
            assert batched == expected

    def test_empty_wave(self):
        wave = kernels.WaveBatch(3)
        assert len(wave) == 0
        assert wave.bad_pair_masks() == {}
        assert wave.group_km_verdicts() == []


# --------------------------------------------------------------------------- #
# packed_min_rows resolution and validation
# --------------------------------------------------------------------------- #
class TestPackedMinRows:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(kernels.PACKED_MIN_ROWS_ENV, raising=False)
        assert kernels.packed_min_rows() == kernels.PACKED_MIN_ROWS

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(kernels.PACKED_MIN_ROWS_ENV, "7")
        assert kernels.packed_min_rows() == 7

    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(kernels.PACKED_MIN_ROWS_ENV, "7")
        assert kernels.packed_min_rows(3) == 3

    def test_use_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.PACKED_MIN_ROWS_ENV, "7")
        with kernels.use(None, 5):
            assert kernels.packed_min_rows() == 5
        assert kernels.packed_min_rows() == 7

    def test_set_default_installs_override(self, monkeypatch):
        monkeypatch.delenv(kernels.PACKED_MIN_ROWS_ENV, raising=False)
        kernels.set_default(None, 9)
        try:
            assert kernels.packed_min_rows() == 9
        finally:
            kernels.set_default(None, None)
        assert kernels.packed_min_rows() == kernels.PACKED_MIN_ROWS

    @pytest.mark.parametrize("bad", [0, -5, 2.5, "many", None])
    def test_validation_rejects(self, bad):
        with pytest.raises(ParameterError):
            kernels.validate_min_rows(bad)

    @pytest.mark.parametrize("bad", [0, -1, "soon"])
    def test_params_field_validated(self, bad):
        with pytest.raises(ParameterError):
            AnonymizationParams(packed_min_rows=bad)

    def test_params_field_lands_in_counters(self):
        dataset = make_workload("quest", records=60, domain=30, avg_len=3.0, seed=3)
        engine = Disassociator(AnonymizationParams(k=3, packed_min_rows=123))
        engine.anonymize(dataset)
        assert engine.last_report.counters()["packed_min_rows"] == 123

    def test_env_bad_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.PACKED_MIN_ROWS_ENV, "zero")
        with pytest.raises(ParameterError):
            kernels.packed_min_rows()


# --------------------------------------------------------------------------- #
# VERPART wave parity
# --------------------------------------------------------------------------- #
@requires_numpy
class TestVerticalWaveParity:
    def _partitions(self, seed: int):
        dataset = _scenario_dataset(SCENARIOS[seed % 3], seed)
        return horizontal_partition(dataset, max_cluster_size=30)

    @pytest.mark.parametrize("seed", range(4))
    def test_wave_matches_per_cluster(self, seed):
        partitions = self._partitions(seed)
        k = (2, 3, 5, 7)[seed % 4]
        with kernels.use("numpy", 1):
            stats = kernels.WaveStats()
            waved = vertical_partition_wave(partitions, k, 2, stats=stats)
        serial = [
            vertical_partition_fast(part, k, 2, label=f"P{index}")
            for index, part in enumerate(partitions)
        ]
        assert stats.batches == 1 and stats.fallbacks == 0
        assert stats.groups == len(partitions)
        for got, expected in zip(waved, serial):
            assert got.cluster.to_dict() == expected.cluster.to_dict()

    def test_ragged_wave(self):
        # Mixed singleton / tiny / large clusters in one wave: the padding
        # and offset bookkeeping must not leak verdicts across groups.
        rng = random.Random(11)
        partitions = []
        for rows in (1, 1, 2, 2000, 3, 37, 1, 450):
            partitions.append(
                [
                    frozenset(f"w{rng.randint(0, 25)}" for _ in range(rng.randint(1, 6)))
                    for _ in range(rows)
                ]
            )
        with kernels.use("numpy", 1):
            waved = vertical_partition_wave(partitions, 5, 2)
        serial = [
            vertical_partition_fast(part, 5, 2, label=f"P{index}")
            for index, part in enumerate(partitions)
        ]
        for got, expected in zip(waved, serial):
            assert got.cluster.to_dict() == expected.cluster.to_dict()

    def test_below_crossover_falls_back(self):
        partitions = self._partitions(0)
        total = sum(len(part) for part in partitions)
        with kernels.use("numpy", total + 1):
            stats = kernels.WaveStats()
            waved = vertical_partition_wave(partitions, 5, 2, stats=stats)
        assert stats.batches == 0
        assert stats.fallbacks == len(partitions)
        serial = [
            vertical_partition_fast(part, 5, 2, label=f"P{index}")
            for index, part in enumerate(partitions)
        ]
        for got, expected in zip(waved, serial):
            assert got.cluster.to_dict() == expected.cluster.to_dict()

    def test_m3_falls_back(self):
        partitions = self._partitions(1)
        with kernels.use("numpy", 1):
            stats = kernels.WaveStats()
            waved = vertical_partition_wave(partitions, 3, 3, stats=stats)
        assert stats.batches == 0 and stats.fallbacks == len(partitions)
        serial = [
            vertical_partition_fast(part, 3, 3, label=f"P{index}")
            for index, part in enumerate(partitions)
        ]
        for got, expected in zip(waved, serial):
            assert got.cluster.to_dict() == expected.cluster.to_dict()


# --------------------------------------------------------------------------- #
# end-to-end refine parity + counters
# --------------------------------------------------------------------------- #
class TestPipelineWaveParity:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_waved_vs_per_cluster_vs_string(self, scenario):
        dataset = _scenario_dataset(scenario, seed=23)
        reference = Disassociator(
            AnonymizationParams(kernels="python")
        ).anonymize(dataset)
        per_cluster = Disassociator(
            AnonymizationParams(packed_min_rows=1 << 30)
        ).anonymize(dataset)
        assert per_cluster.to_dict() == reference.to_dict()
        string = Disassociator(
            AnonymizationParams(backend="string")
        ).anonymize(dataset)
        assert string.to_dict() == reference.to_dict()
        if kernels.numpy_available():
            waved = Disassociator(
                AnonymizationParams(kernels="numpy", packed_min_rows=1)
            ).anonymize(dataset)
            assert waved.to_dict() == reference.to_dict()

    @requires_numpy
    def test_wave_counters_cover_all_attempts(self):
        dataset = _scenario_dataset("quest", seed=5)
        engine = Disassociator(
            AnonymizationParams(kernels="numpy", packed_min_rows=1)
        )
        engine.anonymize(dataset)
        counters = engine.last_report.counters()
        assert counters["verpart_wave_clusters"] > 0
        assert counters["verpart_wave_fallbacks"] == 0
        assert counters["refine_pairs_waved"] > 0
        # Every serial merge attempt is either waved or an accounted fallback.
        assert (
            counters["refine_pairs_waved"] + counters["refine_wave_fallbacks"]
            == counters["refine_merges_attempted"]
        )

    def test_numpy_absent_fallback(self, monkeypatch):
        monkeypatch.setattr(kernels, "np", None)
        dataset = _scenario_dataset("zipf", seed=9)
        engine = Disassociator(AnonymizationParams(packed_min_rows=1))
        published = engine.anonymize(dataset)
        counters = engine.last_report.counters()
        assert counters["verpart_wave_clusters"] == 0
        assert counters["refine_pairs_waved"] == 0
        reference = Disassociator(
            AnonymizationParams(kernels="python")
        ).anonymize(dataset)
        assert published.to_dict() == reference.to_dict()

    @requires_numpy
    def test_km_anonymous_batch_parity_random(self):
        rng = random.Random(31)
        chunks = []
        for _ in range(25):
            rows = rng.randint(1, 60)
            chunks.append(
                [
                    frozenset(f"b{rng.randint(0, 20)}" for _ in range(rng.randint(1, 4)))
                    for _ in range(rows)
                ]
            )
        for k in (2, 4, 6):
            with kernels.use("numpy", 1):
                batched = km_anonymous_batch(chunks, k, 2)
            serial = [is_km_anonymous(records, k, 2) for records in chunks]
            assert batched == serial


# --------------------------------------------------------------------------- #
# SubrecordArena
# --------------------------------------------------------------------------- #
class TestSubrecordArena:
    def test_interning_is_canonical(self):
        arena = SubrecordArena()
        first = arena.intern(("a", "b"))
        again = arena.intern(frozenset(("b", "a")))
        assert first == again
        assert len(arena) == 1
        assert arena.subrecord(first) == frozenset(("a", "b"))
        assert arena.id_of(("a", "b")) == first
        assert arena.id_of(("z",)) is None

    def test_subrecords_for_matches_projection(self):
        rng = random.Random(17)
        arena = SubrecordArena()
        for _ in range(50):
            rows = rng.randint(1, 40)
            terms = [f"t{i}" for i in range(rng.randint(1, 6))]
            term_masks = []
            row_sets: list[set] = [set() for _ in range(rows)]
            for term in terms:
                mask = 0
                for row in range(rows):
                    if rng.random() < 0.5:
                        mask |= 1 << row
                        row_sets[row].add(term)
                if mask:
                    term_masks.append((term, mask))
            or_mask = 0
            for _term, mask in term_masks:
                or_mask |= mask
            covered = [row for row in range(rows) if row_sets[row]]
            expected = [frozenset(row_sets[row]) for row in covered]
            got = arena.subrecords_for(term_masks, or_mask, len(covered))
            assert got == expected

    def test_subrecords_for_shares_instances(self):
        arena = SubrecordArena()
        # Three rows, all with the identical pattern {x, y}.
        term_masks = [("x", 0b111), ("y", 0b111)]
        subs = arena.subrecords_for(term_masks, 0b111, 3)
        assert len(subs) == 3
        assert subs[0] is subs[1] is subs[2]
        # The same pattern from a later call resolves to the same instance.
        again = arena.subrecords_for(term_masks, 0b111, 3)
        assert again[0] is subs[0]

    def test_vocabulary_arena_is_lazy_and_stable(self):
        from repro.core.vocab import Vocabulary

        vocab = Vocabulary()
        arena = vocab.subrecord_arena()
        assert isinstance(arena, SubrecordArena)
        assert vocab.subrecord_arena() is arena

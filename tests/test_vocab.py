"""Unit tests for the interned-term execution core (repro.core.vocab)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.anonymity import (
    BitsetChunkChecker,
    IncrementalChunkChecker,
    combination_supports,
)
from repro.core.dataset import TransactionDataset
from repro.core.vocab import (
    EncodedCluster,
    EncodedDataset,
    Vocabulary,
    iter_mask_bits,
)
from tests.conftest import PAPER_RECORDS, make_uniform_dataset


class TestVocabulary:
    def test_intern_assigns_dense_first_seen_ids(self):
        vocab = Vocabulary()
        assert vocab.intern("b") == 0
        assert vocab.intern("a") == 1
        assert vocab.intern("b") == 0  # idempotent
        assert len(vocab) == 2

    def test_decode_roundtrip(self):
        vocab = Vocabulary(["x", "y", "z"])
        for term in ("x", "y", "z"):
            assert vocab.decode(vocab.intern(term)) == term

    def test_non_string_terms_are_normalized(self):
        vocab = Vocabulary()
        assert vocab.intern(7) == vocab.intern("7")
        assert "7" in vocab

    def test_id_of_missing_term_is_none(self):
        vocab = Vocabulary(["x"])
        assert vocab.id_of("missing") is None

    def test_encode_decode_terms(self):
        vocab = Vocabulary()
        ids = vocab.encode_terms({"a", "b", "c"})
        assert vocab.decode_terms(ids) == frozenset({"a", "b", "c"})


class TestEncodedDataset:
    def test_positional_alignment_with_source(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        encoded = EncodedDataset.from_dataset(dataset)
        assert len(encoded) == len(dataset)
        for record, ids in zip(dataset, encoded.records):
            assert encoded.vocab.decode_terms(ids) == record

    def test_postings_invert_the_records(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        encoded = EncodedDataset.from_dataset(dataset)
        for tid, indices in encoded.postings.items():
            term = encoded.vocab.decode(tid)
            assert indices == {i for i, r in enumerate(dataset) if term in r}

    def test_supports_match_dataset(self):
        dataset = make_uniform_dataset(50, domain=20, record_length=4, seed=3)
        encoded = EncodedDataset.from_dataset(dataset)
        counts = encoded.supports_in(range(len(encoded)))
        expected = dataset.term_supports()
        assert {encoded.vocab.decode(t): c for t, c in counts.items()} == dict(expected)

    def test_most_frequent_matches_dataset_tiebreak(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        encoded = EncodedDataset.from_dataset(dataset)
        tid = encoded.most_frequent_in(range(len(encoded)))
        assert encoded.vocab.decode(tid) == dataset.most_frequent_term()

    def test_split_indices_preserves_order(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        encoded = EncodedDataset.from_dataset(dataset)
        tid = encoded.vocab.id_of("madonna")
        with_term, without_term = encoded.split_indices(range(len(encoded)), tid)
        assert with_term == [i for i, r in enumerate(dataset) if "madonna" in r]
        assert without_term == [i for i, r in enumerate(dataset) if "madonna" not in r]


class TestEncodedCluster:
    def test_masks_encode_membership(self):
        cluster = EncodedCluster([{"a", "b"}, {"b"}, {"a"}])
        assert cluster.masks["a"] == 0b101
        assert cluster.masks["b"] == 0b011

    def test_supports_match_combination_supports(self):
        records = [frozenset(r) for r in PAPER_RECORDS]
        cluster = EncodedCluster(records)
        counts = combination_supports(records, 2)
        for combo, support in counts.items():
            assert cluster.combination_support(combo) == support

    def test_covered_rows_is_or_of_masks(self):
        cluster = EncodedCluster([{"a"}, {"b"}, {"c"}, {"a", "c"}])
        assert cluster.covered_rows({"a", "b"}) == 3
        assert cluster.covered_rows({"z"}) == 0

    def test_picklable_for_process_fanout(self):
        cluster = EncodedCluster([{"a", "b"}, {"b"}])
        clone = pickle.loads(pickle.dumps(cluster))
        assert clone.masks == cluster.masks


class TestIterMaskBits:
    @pytest.mark.parametrize("mask", [0, 1, 0b1010, 0b1111, 1 << 40 | 1])
    def test_matches_bit_positions(self, mask):
        assert list(iter_mask_bits(mask)) == [
            i for i in range(mask.bit_length()) if (mask >> i) & 1
        ]


class TestBitsetChunkChecker:
    @pytest.mark.parametrize("k,m", [(2, 1), (2, 2), (3, 2), (2, 3)])
    def test_decisions_match_string_checker(self, k, m):
        dataset = make_uniform_dataset(24, domain=12, record_length=5, seed=k * 10 + m)
        records = list(dataset)
        cluster = EncodedCluster(records)
        reference = IncrementalChunkChecker(records, k, m)
        bitset = BitsetChunkChecker(cluster.masks, k, m)
        for term in sorted(dataset.domain):
            assert bitset.try_add(term) == reference.try_add(term), term
        assert bitset.accepted_terms == reference.accepted_terms

    def test_reset_clears_state(self):
        cluster = EncodedCluster([{"a", "b"}] * 3)
        checker = BitsetChunkChecker(cluster.masks, 2, 2)
        assert checker.try_add("a")
        checker.reset()
        assert checker.accepted_terms == frozenset()

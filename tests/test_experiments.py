"""Integration tests for the experiment harness (small configurations).

These do not assert the paper's numbers (that is the benchmark suite's job);
they check that every driver runs end to end, returns well-formed rows and
produces metric values in their legal ranges.
"""

from __future__ import annotations

import pytest

from repro.experiments import figure07, figure08, figure09, figure10, figure11, ablations
from repro.experiments.harness import ExperimentConfig, evaluate, format_table, run_dataset

#: Tiny configuration so the whole module runs in seconds.
SMALL = ExperimentConfig(
    scale=0.002,
    domain_scale=0.05,
    top_k=30,
    max_cluster_size=15,
    re_range=(10, 20),
    datasets=("WV1",),
    seed=3,
)


def assert_metric_row(row: dict) -> None:
    for key in ("tkd_a", "tkd", "re_a", "re", "tlost"):
        assert key in row
        upper = 1.0 if key.startswith("tkd") or key == "tlost" else 2.0
        assert 0.0 <= row[key] <= upper, f"{key}={row[key]} out of range"


class TestHarness:
    def test_run_dataset_produces_metrics(self):
        run = run_dataset("WV1", SMALL)
        assert run.dataset_name == "WV1"
        assert run.seconds >= 0
        assert_metric_row(run.metrics)

    def test_evaluate_is_deterministic(self):
        run = run_dataset("WV1", SMALL)
        again = evaluate(run.original, run.published, SMALL)
        assert again == run.metrics

    def test_with_overrides_returns_modified_copy(self):
        other = SMALL.with_overrides(k=7)
        assert other.k == 7 and SMALL.k == 5

    def test_format_table_renders_all_rows(self):
        rows = [{"x": 1, "y": 0.5}, {"x": 2, "y": None}]
        text = format_table(rows)
        assert "x" in text and "1" in text and "-" in text
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestFigure7Drivers:
    def test_fig7a(self):
        rows = figure07.run_fig7a(SMALL)
        assert len(rows) == 1
        assert_metric_row(rows[0])

    def test_fig7b(self):
        rows = figure07.run_fig7b(SMALL, ks=(2, 4), dataset="WV1")
        assert [row["k"] for row in rows] == [2, 4]
        for row in rows:
            assert 0.0 <= row["tkd_a"] <= 1.0 and 0.0 <= row["tkd"] <= 1.0

    def test_fig7c(self):
        rows = figure07.run_fig7c(SMALL, ks=(2, 4), dataset="WV1")
        for row in rows:
            assert 0.0 <= row["re"] <= 2.0 and 0.0 <= row["tlost"] <= 1.0

    def test_fig7d(self):
        rows = figure07.run_fig7d(
            SMALL, ranges=((0, 10),), reconstruction_counts=(1, 2), dataset="WV1"
        )
        assert rows
        assert "re_r1" in rows[0] and "re_r2" in rows[0]

    def test_paper_reference_notes_exist(self):
        for figure in ("7a", "7b", "7c", "7d"):
            assert figure07.paper_reference(figure)
        assert figure07.paper_reference("99") is None


class TestFigure8Drivers:
    def test_fig8a_8b(self):
        rows = figure08.run_fig8a_8b(SMALL, sizes=(200, 400), domain_size=80)
        assert [row["records"] for row in rows] == [200, 400]
        for row in rows:
            assert_metric_row(row)

    def test_fig8c(self):
        rows = figure08.run_fig8c(SMALL, domains=(60, 120), num_records=300)
        assert [row["domain"] for row in rows] == [60, 120]

    def test_fig8d(self):
        rows = figure08.run_fig8d(SMALL, record_lengths=(4, 8), num_records=300, domain_size=80)
        assert [row["record_length"] for row in rows] == [4, 8]


class TestPerformanceDrivers:
    def test_fig9a(self):
        rows = figure09.run_fig9a(SMALL)
        assert rows[0]["seconds"] >= 0 and rows[0]["records"] > 0

    def test_fig9b(self):
        rows = figure09.run_fig9b(SMALL, ks=(2, 4), dataset="WV1")
        assert len(rows) == 2

    def test_fig10a_and_linearity(self):
        rows = figure10.run_fig10a(SMALL, sizes=(150, 300), domain_size=60)
        assert len(rows) == 2
        assert figure10.linearity_ratio(rows, "records") > 0

    def test_fig10b(self):
        rows = figure10.run_fig10b(SMALL, domains=(50, 100), num_records=200)
        assert len(rows) == 2

    def test_linearity_ratio_degenerate_input(self):
        assert figure10.linearity_ratio([], "records") == 1.0
        assert figure10.linearity_ratio([{"records": 10, "seconds": 0.0}], "records") == 1.0


class TestFigure11Drivers:
    def test_fig11a(self):
        rows = figure11.run_fig11a(SMALL, epsilons=(1.0,))
        row = rows[0]
        assert 0.0 <= row["disassociation"] <= 1.0
        assert 0.0 <= row["diffpart"] <= 1.0

    def test_fig11b(self):
        rows = figure11.run_fig11b(SMALL)
        row = rows[0]
        assert 0.0 <= row["disassociation"] <= 1.0
        assert 0.0 <= row["apriori"] <= 1.0

    def test_fig11c(self):
        rows = figure11.run_fig11c(SMALL, epsilons=(1.0,))
        row = rows[0]
        for method in ("disassociation", "diffpart", "apriori"):
            assert 0.0 <= row[method] <= 2.0


class TestAblations:
    def test_cluster_size_ablation(self):
        rows = ablations.run_cluster_size_ablation(SMALL, cluster_sizes=(10, 20), dataset="WV1")
        assert [row["max_cluster_size"] for row in rows] == [10, 20]
        for row in rows:
            assert_metric_row(row)

    def test_refine_ablation(self):
        rows = ablations.run_refine_ablation(SMALL, dataset="WV1")
        assert [row["refine"] for row in rows] == [True, False]

    def test_suppression_comparison(self):
        rows = ablations.run_suppression_comparison(SMALL, dataset="WV1", sample_size=80)
        methods = {row["method"] for row in rows}
        assert methods == {"disassociation", "suppression"}
        for row in rows:
            assert 0.0 <= row["terms_with_associations"] <= 1.0

"""Kernel-backend coverage: numpy kernels vs the pure-Python fallback.

The kernel layer (:mod:`repro.core.kernels`) promises **bit-for-bit
identical output** on both backends.  This suite is that promise's
enforcement:

* randomized parity of the three primitives against their Python
  references (contiguous-buffer counting, packed combination checking,
  packed sub-record assembly) on three workload shapes,
* HORPART and end-to-end pipeline equivalence under a forced
  ``REPRO_KERNELS`` matrix,
* streaming determinism with and without shard-lifetime vocabulary reuse,
* backend-resolution semantics (explicit choice > forced > environment >
  auto) and parameter validation.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core import kernels
from repro.core.anonymity import BitsetChunkChecker, is_km_anonymous
from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.horizontal import horizontal_partition_indices
from repro.core.vocab import EncodedDataset, Vocabulary
from repro.exceptions import ParameterError
from repro.stream import ShardedPipeline, StreamParams
from tests.conftest import make_workload

requires_numpy = pytest.mark.skipif(
    not kernels.numpy_available(), reason="numpy >= 2.0 not importable"
)

SCENARIOS = ("quest", "zipf", "clickstream")


def _scenario_dataset(name: str, seed: int) -> TransactionDataset:
    if name == "quest":
        return make_workload("quest", records=400, domain=120, avg_len=6.0, seed=seed)
    if name == "zipf":
        return make_workload("zipf", records=400, domain=150, avg_len=5.0, seed=seed)
    if name == "clickstream":
        return make_workload(
            "clickstream", records=400, domain=150, avg_len=5.0, seed=seed, sections=6
        )
    raise AssertionError(name)


def _random_masks(rng: random.Random, rows: int, terms: int, density: float) -> dict:
    masks = {}
    for index in range(terms):
        mask = 0
        for row in range(rows):
            if rng.random() < density:
                mask |= 1 << row
        if mask:
            masks[f"t{index:03d}"] = mask
    return masks


# --------------------------------------------------------------------------- #
# backend resolution
# --------------------------------------------------------------------------- #
class TestResolution:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "numpy" if kernels.numpy_available() else "python")
        assert kernels.resolve("python") == "python"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "python")
        assert kernels.resolve() == "python"

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
        expected = "numpy" if kernels.numpy_available() else "python"
        assert kernels.resolve() == expected
        assert kernels.resolve("auto") == expected

    def test_use_overrides_env(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "auto")
        with kernels.use("python"):
            assert kernels.resolve() == "python"
        # restored afterwards
        assert kernels.resolve() == ("numpy" if kernels.numpy_available() else "python")

    def test_use_is_context_local(self, monkeypatch):
        import threading

        monkeypatch.delenv(kernels.KERNELS_ENV, raising=False)
        results = {}

        def probe():
            results["other_thread"] = kernels.resolve()

        with kernels.use("python"):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
            results["main"] = kernels.resolve()
        assert results["main"] == "python"
        # A concurrent thread is not contaminated by this run's override.
        expected = "numpy" if kernels.numpy_available() else "python"
        assert results["other_thread"] == expected

    def test_set_default_installs_override(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "auto")
        kernels.set_default("python")
        try:
            assert kernels.resolve() == "python"
        finally:
            kernels.set_default(None)

    def test_pool_initializer_propagates_backend(self):
        from concurrent.futures import ProcessPoolExecutor

        try:
            pool = ProcessPoolExecutor(
                max_workers=1,
                initializer=kernels.set_default,
                initargs=("python",),
            )
        except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
            pytest.skip("platform cannot spawn worker processes")
        with pool:
            assert pool.submit(kernels.resolve).result() == "python"

    def test_invalid_choice_rejected(self):
        with pytest.raises(ParameterError):
            kernels.resolve("fortran")
        with pytest.raises(ParameterError):
            with kernels.use("fortran"):
                pass  # pragma: no cover

    def test_numpy_without_numpy_rejected(self, monkeypatch):
        monkeypatch.setattr(kernels, "np", None)
        with pytest.raises(ParameterError):
            kernels.resolve("numpy")

    def test_params_validate_kernels(self):
        with pytest.raises(ParameterError):
            AnonymizationParams(kernels="fortran")
        assert AnonymizationParams(kernels="python").kernels == "python"


# --------------------------------------------------------------------------- #
# kernel 1: contiguous-buffer counting
# --------------------------------------------------------------------------- #
@requires_numpy
class TestRecordIdBuffer:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_counts_match_counter(self, scenario):
        rng = random.Random(11)
        encoded = EncodedDataset.from_dataset(_scenario_dataset(scenario, seed=5))
        buffer = kernels.RecordIdBuffer(encoded.records)
        for trial in range(20):
            size = rng.randrange(0, len(encoded.records) + 1)
            rows = sorted(rng.sample(range(len(encoded.records)), size))
            expected = Counter()
            for row in rows:
                expected.update(encoded.records[row])
            counts = buffer.counts(kernels.np.array(rows, dtype="int64"))
            assert {t: c for t, c in enumerate(counts.tolist()) if c} == dict(expected)
        full = buffer.counts()
        assert int(full.sum()) == sum(len(r) for r in encoded.records)

    def test_python_reference_matches(self):
        encoded = EncodedDataset.from_dataset(_scenario_dataset("quest", seed=6))
        rows = list(range(0, len(encoded.records), 3))
        buffer = kernels.RecordIdBuffer(encoded.records)
        reference = kernels.supports_python(encoded.records, rows)
        counts = buffer.counts(kernels.np.array(rows, dtype="int64"))
        assert {t: c for t, c in enumerate(counts.tolist()) if c} == reference

    def test_compact_remaps_sparse_large_ids(self):
        # Ids shaped like a late stream window under vocabulary reuse:
        # few distinct terms, arbitrarily large original ids.
        records = [frozenset({7, 100000}), frozenset({7, 512}), frozenset({100000})]
        buffer = kernels.RecordIdBuffer(records, compact=True)
        assert buffer.num_terms == 3  # distinct terms, not max id + 1
        assert buffer.term_ids.tolist() == [7, 512, 100000]
        counts = buffer.counts()
        assert {
            int(buffer.term_ids[cid]): count
            for cid, count in enumerate(counts.tolist())
        } == {7: 2, 512: 1, 100000: 2}
        assert buffer.posting(buffer.term_ids.tolist().index(7)).tolist() == [0, 1]

    def test_postings_are_sorted_memberships(self):
        encoded = EncodedDataset.from_dataset(_scenario_dataset("zipf", seed=7))
        buffer = kernels.RecordIdBuffer(encoded.records)
        for tid in range(0, buffer.num_terms, 17):
            expected = [
                row for row, record in enumerate(encoded.records) if tid in record
            ]
            assert buffer.posting(tid).tolist() == expected

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("max_cluster_size", (10, 30))
    def test_horpart_identical(self, scenario, max_cluster_size):
        encoded = EncodedDataset.from_dataset(_scenario_dataset(scenario, seed=9))
        python = horizontal_partition_indices(
            encoded, max_cluster_size, kernels_backend="python"
        )
        numpy = horizontal_partition_indices(
            encoded, max_cluster_size, kernels_backend="numpy"
        )
        assert python == numpy


# --------------------------------------------------------------------------- #
# kernel 2: packed combination checking
# --------------------------------------------------------------------------- #
@requires_numpy
class TestPackedSelection:
    @pytest.mark.parametrize("rows", (20, 70, 200))
    @pytest.mark.parametrize("m", (2, 3))
    def test_checker_decisions_identical(self, monkeypatch, rows, m):
        # Force packing at every size so the numpy path is exercised even
        # below the production threshold.
        monkeypatch.setattr(kernels, "PACKED_MIN_ROWS", 1)
        rng = random.Random(rows * 10 + m)
        for trial in range(10):
            masks = _random_masks(rng, rows, 40, rng.uniform(0.05, 0.4))
            k = rng.randrange(2, 7)
            reference = BitsetChunkChecker(masks, k, m, kernels_backend="python")
            packed = BitsetChunkChecker(masks, k, m, kernels_backend="numpy")
            assert packed._packed is not None
            terms = sorted(masks)
            rng.shuffle(terms)
            for term in terms:
                assert reference.try_add(term) == packed.try_add(term)
            assert reference.accepted_terms == packed.accepted_terms
            # exercise removal parity (the hold-back fast path)
            accepted = sorted(reference.accepted_terms)
            for term in accepted[: len(accepted) // 2]:
                reference.remove(term)
                packed.remove(term)
            for term in terms:
                assert reference.would_remain_anonymous(
                    term
                ) == packed.would_remain_anonymous(term)

    @pytest.mark.parametrize("m", (1, 2, 3))
    def test_is_km_anonymous_identical(self, monkeypatch, m):
        monkeypatch.setattr(kernels, "PACKED_MIN_ROWS", 1)
        rng = random.Random(m)
        for trial in range(25):
            rows = rng.randrange(2, 60)
            records = [
                frozenset(
                    f"t{rng.randrange(12)}" for _ in range(rng.randrange(1, 6))
                )
                for _ in range(rows)
            ]
            k = rng.randrange(1, 6)
            assert is_km_anonymous(
                records, k, m, kernels_backend="python"
            ) == is_km_anonymous(records, k, m, kernels_backend="numpy")

    def test_packed_km_matches_reference_on_large_chunk(self):
        rng = random.Random(3)
        masks = _random_masks(rng, 1500, 60, 0.02)
        ordered = list(masks.values())
        from repro.core.anonymity import _masks_are_km_anonymous

        for k in (2, 5, 40):
            assert kernels.packed_km_anonymous(
                ordered, 1500, k, 2
            ) == _masks_are_km_anonymous(ordered, -1, 0, 2, k)

    def test_reset_clears_packed_state(self, monkeypatch):
        monkeypatch.setattr(kernels, "PACKED_MIN_ROWS", 1)
        masks = {"a": 0b0111, "b": 0b1110, "c": 0b1011}
        checker = BitsetChunkChecker(masks, 2, 2, kernels_backend="numpy")
        for term in masks:
            checker.add(term)
        checker.reset()
        assert checker.accepted_terms == frozenset()
        assert checker._packed._count == 0

    def test_unknown_term_add_is_safe(self, monkeypatch):
        monkeypatch.setattr(kernels, "PACKED_MIN_ROWS", 1)
        checker = BitsetChunkChecker({"a": 0b111}, 2, 2, kernels_backend="numpy")
        assert not checker.would_remain_anonymous("ghost")
        for index in range(8):  # overflow the preallocated accepted matrix
            checker.add(f"ghost{index}")
        assert checker.would_remain_anonymous("a")


# --------------------------------------------------------------------------- #
# kernel 3: packed sub-record assembly
# --------------------------------------------------------------------------- #
@requires_numpy
class TestAssembly:
    @pytest.mark.parametrize("rows", (8, 64, 300))
    def test_assembly_matches_python(self, rows):
        rng = random.Random(rows)
        for trial in range(10):
            masks = _random_masks(rng, rows, rng.randrange(2, 12), 0.3)
            term_masks = sorted(masks.items())
            assert kernels.assemble_subrecords(
                term_masks, rows
            ) == kernels.assemble_subrecords_python(term_masks, rows)

    def test_empty_domain(self):
        assert kernels.assemble_subrecords([], 16) == []


# --------------------------------------------------------------------------- #
# forced-backend matrix: end-to-end equivalence
# --------------------------------------------------------------------------- #
@requires_numpy
class TestEndToEndMatrix:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_pipeline_identical_under_forced_env(self, monkeypatch, scenario):
        dataset = _scenario_dataset(scenario, seed=21)
        outputs = []
        for backend in ("python", "numpy"):
            monkeypatch.setenv(kernels.KERNELS_ENV, backend)
            engine = Disassociator(AnonymizationParams(k=4, m=2, max_cluster_size=12))
            outputs.append(engine.anonymize(dataset).to_dict())
            assert engine.last_report.kernels == backend
        assert outputs[0] == outputs[1]

    def test_params_beat_environment(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "numpy")
        engine = Disassociator(AnonymizationParams(k=3, m=2, kernels="python"))
        engine.anonymize(_scenario_dataset("quest", seed=2))
        assert engine.last_report.kernels == "python"

    def test_packed_thresholds_lowered(self, monkeypatch):
        # With the packing threshold at 1 the whole pipeline runs through
        # the packed checker/assembly paths; output must not move.
        dataset = _scenario_dataset("zipf", seed=4)
        expected = Disassociator(
            AnonymizationParams(k=4, m=2, max_cluster_size=12, kernels="python")
        ).anonymize(dataset).to_dict()
        monkeypatch.setattr(kernels, "PACKED_MIN_ROWS", 1)
        forced = Disassociator(
            AnonymizationParams(k=4, m=2, max_cluster_size=12, kernels="numpy")
        ).anonymize(dataset).to_dict()
        assert forced == expected


# --------------------------------------------------------------------------- #
# shard-lifetime vocabulary reuse
# --------------------------------------------------------------------------- #
class TestVocabularyReuse:
    def test_from_dataset_accepts_prewarmed_vocab(self):
        dataset = TransactionDataset([{"b", "a"}, {"c", "a"}])
        vocab = Vocabulary(["z", "a"])
        encoded = EncodedDataset.from_dataset(dataset, vocab=vocab)
        assert encoded.vocab is vocab
        assert vocab.id_of("z") == 0 and vocab.id_of("a") == 1
        assert {vocab.decode(tid) for tid in encoded.records[0]} == {"a", "b"}

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_stream_identical_with_and_without_reuse(self, scenario):
        dataset = _scenario_dataset(scenario, seed=31)
        params = AnonymizationParams(k=4, m=2, max_cluster_size=12)
        outputs = []
        for reuse in (True, False):
            pipeline = ShardedPipeline(
                params,
                StreamParams(
                    shards=3, max_records_in_memory=120, reuse_vocabulary=reuse
                ),
            )
            outputs.append(pipeline.anonymize(dataset).to_dict())
        assert outputs[0] == outputs[1]

    def test_stream_verify_honors_params_kernels(self, monkeypatch):
        # The global boundary audit runs outside any engine call; it must
        # still see the configured backend, not the environment's.
        import repro.stream.executor as executor

        seen = {}
        original = executor.verify_and_repair

        def spy(merged):
            seen["backend"] = kernels.resolve()
            return original(merged)

        monkeypatch.setattr(executor, "verify_and_repair", spy)
        monkeypatch.setenv(kernels.KERNELS_ENV, "auto")
        pipeline = ShardedPipeline(
            AnonymizationParams(k=4, m=2, max_cluster_size=12, kernels="python"),
            StreamParams(shards=2, max_records_in_memory=100),
        )
        pipeline.anonymize(_scenario_dataset("quest", seed=3))
        assert seen["backend"] == "python"

    def test_engine_reuses_vocabulary_across_calls(self):
        dataset = _scenario_dataset("quest", seed=8)
        vocab = Vocabulary()
        engine = Disassociator(
            AnonymizationParams(k=4, m=2, max_cluster_size=12), vocabulary=vocab
        )
        baseline = Disassociator(
            AnonymizationParams(k=4, m=2, max_cluster_size=12)
        )
        first = engine.anonymize(dataset).to_dict()
        grown = len(vocab)
        assert grown > 0
        second = engine.anonymize(dataset).to_dict()
        assert len(vocab) == grown  # append-only: nothing re-interned
        assert first == second == baseline.anonymize(dataset).to_dict()

"""Unit tests for the refining step (repro.core.refine)."""

from __future__ import annotations

import pytest

from repro.core.anonymity import is_km_anonymous
from repro.core.clusters import JointCluster, SimpleCluster, TermChunk
from repro.core.dataset import TransactionDataset
from repro.core.refine import (
    build_shared_chunks,
    merge_criterion,
    refine,
    try_merge,
    virtual_term_chunk,
)
from repro.core.vertical import vertical_partition
from repro.exceptions import RefinementError


@pytest.fixture
def paper_clusters(paper_dataset):
    """The two VERPART clusters of Figure 2b (P1 = r1-r5, P2 = r6-r10)."""
    records = list(paper_dataset)
    p1 = vertical_partition(TransactionDataset(records[:5]), k=3, m=2, label="P1").cluster
    p2 = vertical_partition(TransactionDataset(records[5:]), k=3, m=2, label="P2").cluster
    return p1, p2


class TestVirtualTermChunk:
    def test_simple_cluster_returns_own_term_chunk(self, paper_clusters):
        p1, _p2 = paper_clusters
        assert virtual_term_chunk(p1) == frozenset(p1.term_chunk.terms)

    def test_joint_cluster_unions_leaf_term_chunks(self, paper_clusters):
        p1, p2 = paper_clusters
        joint = JointCluster([p1, p2])
        assert virtual_term_chunk(joint) == frozenset(p1.term_chunk.terms) | frozenset(
            p2.term_chunk.terms
        )


class TestBuildSharedChunks:
    def test_paper_refining_terms_form_a_shared_chunk(self, paper_clusters):
        p1, p2 = paper_clusters
        refining = frozenset({"ikea", "ruby"})
        restricted = p1.record_chunk_terms() | p2.record_chunk_terms()
        chunks, placed = build_shared_chunks([p1, p2], refining, restricted, k=3, m=2)
        assert placed == refining
        assert len(chunks) >= 1
        all_terms = set()
        for chunk in chunks:
            all_terms.update(chunk.domain)
            assert is_km_anonymous(chunk.subrecords, k=3, m=2)
        assert all_terms == {"ikea", "ruby"}

    def test_shared_chunk_supports_match_figure3(self, paper_clusters):
        p1, p2 = paper_clusters
        refining = frozenset({"ikea", "ruby"})
        restricted = p1.record_chunk_terms() | p2.record_chunk_terms()
        chunks, _placed = build_shared_chunks([p1, p2], refining, restricted, k=3, m=2)
        supports = {}
        for chunk in chunks:
            supports.update(chunk.term_supports())
        assert supports["ikea"] == 4
        assert supports["ruby"] == 4

    def test_contributions_sum_to_subrecord_count(self, paper_clusters):
        p1, p2 = paper_clusters
        refining = frozenset({"ikea", "ruby"})
        chunks, _placed = build_shared_chunks([p1, p2], refining, frozenset(), k=3, m=2)
        for chunk in chunks:
            assert sum(chunk.contributions.values()) == len(chunk.subrecords)

    def test_unliftable_terms_are_left_out(self, paper_clusters):
        p1, p2 = paper_clusters
        # viagra appears in only 2 records overall: cannot form a 3-anonymous chunk
        refining = frozenset({"viagra"})
        chunks, placed = build_shared_chunks([p1, p2], refining, frozenset(), k=3, m=2)
        assert placed == frozenset()
        assert chunks == []

    def test_restricted_terms_force_plain_k_anonymity(self):
        # term "x" is restricted (appears in a descendant record chunk); the
        # shared chunk may only be published if its sub-records are k-anonymous
        left = SimpleCluster(
            size=3,
            record_chunks=[],
            term_chunk=TermChunk({"x", "o"}),
            label="L",
            original_records=[{"x", "o"}, {"x"}, {"o"}],
        )
        right = SimpleCluster(
            size=3,
            record_chunks=[],
            term_chunk=TermChunk({"x", "o"}),
            label="R",
            original_records=[{"x", "o"}, {"x", "o"}, {"o"}],
        )
        chunks, placed = build_shared_chunks(
            [left, right], frozenset({"x", "o"}), frozenset({"x"}), k=3, m=2
        )
        for chunk in chunks:
            if chunk.domain & {"x"}:
                from repro.core.anonymity import is_k_anonymous

                assert is_k_anonymous(chunk.subrecords, k=3)
        # at minimum the unrestricted term "o" (support 6 >= 3) is liftable
        assert "o" in placed


class TestMergeCriterion:
    def test_paper_example_satisfies_equation_1(self, paper_clusters):
        p1, p2 = paper_clusters
        refining = frozenset({"ikea", "ruby"})
        restricted = p1.record_chunk_terms() | p2.record_chunk_terms()
        chunks, placed = build_shared_chunks([p1, p2], refining, restricted, k=3, m=2)
        # paper: (4 + 4) / 10 >= (2 + 2) / 10
        assert merge_criterion(chunks, placed, [p1, p2], joint_size=10)

    def test_empty_refining_terms_reject_merge(self, paper_clusters):
        p1, p2 = paper_clusters
        assert not merge_criterion([], frozenset(), [p1, p2], joint_size=10)

    def test_zero_joint_size_rejects_merge(self, paper_clusters):
        p1, p2 = paper_clusters
        assert not merge_criterion([], frozenset({"ikea"}), [p1, p2], joint_size=0)


class TestTryMerge:
    def test_merges_paper_clusters(self, paper_clusters):
        p1, p2 = paper_clusters
        outcome = try_merge(p1, p2, k=3, m=2)
        assert outcome.joint is not None
        assert {"ikea", "ruby"} <= set(outcome.refining_terms)

    def test_lifted_terms_leave_member_term_chunks(self, paper_clusters):
        p1, p2 = paper_clusters
        outcome = try_merge(p1, p2, k=3, m=2)
        for term in outcome.refining_terms:
            assert term not in p1.term_chunk
            assert term not in p2.term_chunk

    def test_rejects_clusters_with_no_common_term_chunk_terms(self):
        a = SimpleCluster(2, [], TermChunk({"p"}), label="A", original_records=[{"p"}, {"p"}])
        b = SimpleCluster(2, [], TermChunk({"q"}), label="B", original_records=[{"q"}, {"q"}])
        outcome = try_merge(a, b, k=2, m=2)
        assert outcome.joint is None
        assert "common" in outcome.reason

    def test_rejects_when_join_would_exceed_size_cap(self, paper_clusters):
        p1, p2 = paper_clusters
        outcome = try_merge(p1, p2, k=3, m=2, max_join_size=6)
        assert outcome.joint is None
        assert "max_join_size" in outcome.reason

    def test_requires_original_records(self):
        a = SimpleCluster(2, [], TermChunk({"p"}), label="A")
        b = SimpleCluster(2, [], TermChunk({"p"}), label="B")
        with pytest.raises(RefinementError):
            try_merge(a, b, k=2, m=2)


class TestRefine:
    def test_paper_clusters_are_joined(self, paper_clusters):
        p1, p2 = paper_clusters
        refined = refine([p1, p2], k=3, m=2)
        assert len(refined) == 1
        assert isinstance(refined[0], JointCluster)

    def test_single_cluster_is_returned_unchanged(self, paper_clusters):
        p1, _p2 = paper_clusters
        assert refine([p1], k=3, m=2) == [p1]

    def test_total_size_is_preserved(self, paper_clusters):
        p1, p2 = paper_clusters
        refined = refine([p1, p2], k=3, m=2)
        assert sum(cluster.size for cluster in refined) == 10

    def test_refine_without_common_terms_keeps_clusters_separate(self):
        a = SimpleCluster(2, [], TermChunk({"p"}), label="A", original_records=[{"p"}, {"p"}])
        b = SimpleCluster(2, [], TermChunk({"q"}), label="B", original_records=[{"q"}, {"q"}])
        refined = refine([a, b], k=2, m=2)
        assert len(refined) == 2

    def test_refine_terminates_on_many_identical_clusters(self):
        clusters = []
        for index in range(8):
            clusters.append(
                SimpleCluster(
                    3,
                    [],
                    TermChunk({"common"}),
                    label=f"C{index}",
                    original_records=[{"common"}, {"common"}, {"common"}],
                )
            )
        refined = refine(clusters, k=2, m=2, max_passes=10)
        assert sum(cluster.size for cluster in refined) == 24

"""Round-trip tests for the streaming I/O layer (``repro.datasets.io``).

Every on-disk format must satisfy: write -> chunked (streaming) read ->
identical records, in order, regardless of batch size.  These are the
guarantees the shard spiller and the windowed executor rely on.
"""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.datasets.io import (
    append_jsonl,
    iter_batches,
    iter_jsonl,
    iter_records,
    iter_transactions,
    read_jsonl,
    read_records,
    sniff_format,
    write_dataset_json,
    write_jsonl,
    write_transactions,
)
from repro.exceptions import DatasetError, DatasetFormatError


@pytest.fixture
def records():
    return [
        frozenset({"a", "b"}),
        frozenset({"c"}),
        frozenset({"a", "b"}),  # duplicate: bag semantics must survive
        frozenset({"x y", "z"}),  # term with a space (JSONL only)
    ]


class TestJsonlRoundTrip:
    def test_write_then_streaming_read_is_identity(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        assert write_jsonl(records, path) == len(records)
        assert list(iter_jsonl(path)) == records

    def test_read_jsonl_returns_dataset(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        write_jsonl(records, path)
        dataset = read_jsonl(path)
        assert isinstance(dataset, TransactionDataset)
        assert list(dataset) == records

    def test_append_grows_in_order(self, records, tmp_path):
        path = tmp_path / "data.jsonl"
        append_jsonl(records[:2], path)
        append_jsonl(records[2:], path)
        assert list(iter_jsonl(path)) == records

    def test_invalid_json_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('["a"]\nnot json\n')
        with pytest.raises(DatasetFormatError, match=":2"):
            list(iter_jsonl(path))

    def test_non_list_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\n')
        with pytest.raises(DatasetFormatError, match="expected a non-empty JSON list"):
            list(iter_jsonl(path))

    def test_empty_record_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[]\n")
        with pytest.raises(DatasetFormatError):
            list(iter_jsonl(path))


class TestTransactionsStreaming:
    def test_write_then_streaming_read_is_identity(self, tmp_path):
        records = [frozenset({"a", "b"}), frozenset({"c"}), frozenset({"a", "b"})]
        path = tmp_path / "data.txt"
        write_transactions(TransactionDataset(records), path)
        assert list(iter_transactions(path)) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("a b\n\n\nc\n")
        assert list(iter_transactions(path)) == [frozenset({"a", "b"}), frozenset({"c"})]


class TestFormatDispatch:
    @pytest.mark.parametrize(
        "name, expected",
        [("d.jsonl", "jsonl"), ("d.ndjson", "jsonl"), ("d.json", "json"), ("d.txt", "transactions"), ("d.dat", "transactions")],
    )
    def test_sniff_format(self, name, expected):
        assert sniff_format(name) == expected

    def test_iter_records_auto_on_each_format(self, records, tmp_path):
        jsonl = tmp_path / "d.jsonl"
        write_jsonl(records, jsonl)
        assert list(iter_records(jsonl)) == records

        plain = [r for r in records if all(" " not in t for t in r)]
        txt = tmp_path / "d.txt"
        write_transactions(TransactionDataset(plain), txt)
        assert list(iter_records(txt)) == plain

        jsonp = tmp_path / "d.json"
        write_dataset_json(TransactionDataset(records), jsonp)
        assert list(iter_records(jsonp)) == records

    def test_read_records_matches_iter_records(self, records, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(records, path)
        assert list(read_records(path)) == list(iter_records(path))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(DatasetFormatError, match="unknown record format"):
            list(iter_records(tmp_path / "d.txt", format="parquet"))


class TestIterBatches:
    @pytest.mark.parametrize("batch_size", [1, 2, 3, 100])
    def test_batches_partition_the_stream_in_order(self, records, batch_size):
        batches = list(iter_batches(iter(records), batch_size))
        assert all(len(batch) <= batch_size for batch in batches)
        assert [r for batch in batches for r in batch] == records

    def test_round_trip_through_file_and_batches(self, records, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(records, path)
        rebuilt = [r for batch in iter_batches(iter_jsonl(path), 2) for r in batch]
        assert rebuilt == records

    def test_zero_batch_size_rejected(self):
        with pytest.raises(DatasetFormatError):
            list(iter_batches([{"a"}], 0))

    def test_empty_record_rejected_by_normalization(self):
        with pytest.raises(DatasetError):
            list(iter_batches([set()], 2))

"""Unit tests for the k^m-anonymity machinery (repro.core.anonymity)."""

from __future__ import annotations

import pytest

from repro.core.anonymity import (
    IncrementalChunkChecker,
    combination_supports,
    find_all_km_violations,
    find_km_violation,
    is_k_anonymous,
    is_km_anonymous,
    validate_km_parameters,
)
from repro.exceptions import ParameterError


def records(*groups):
    return [frozenset(group) for group in groups]


class TestValidateParameters:
    @pytest.mark.parametrize("k,m", [(1, 1), (5, 2), (100, 4)])
    def test_valid_parameters(self, k, m):
        validate_km_parameters(k, m)  # should not raise

    @pytest.mark.parametrize("k,m", [(0, 2), (-1, 2), (2, 0), (2, -3)])
    def test_invalid_parameters(self, k, m):
        with pytest.raises(ParameterError):
            validate_km_parameters(k, m)

    def test_non_integer_parameters(self):
        with pytest.raises(ParameterError):
            validate_km_parameters(2.5, 2)


class TestCombinationSupports:
    def test_counts_singletons(self):
        counts = combination_supports(records({"a"}, {"a"}, {"b"}), m=1)
        assert counts[("a",)] == 2
        assert counts[("b",)] == 1

    def test_counts_pairs(self):
        counts = combination_supports(records({"a", "b"}, {"a", "b"}, {"a"}), m=2)
        assert counts[("a", "b")] == 2
        assert counts[("a",)] == 3

    def test_ignores_combinations_larger_than_m(self):
        counts = combination_supports(records({"a", "b", "c"}), m=2)
        assert ("a", "b", "c") not in counts
        assert counts[("a", "b")] == 1

    def test_empty_records_are_skipped(self):
        counts = combination_supports([frozenset(), frozenset({"a"})], m=2)
        assert counts[("a",)] == 1
        assert len(counts) == 1

    def test_absent_combination_not_reported(self):
        counts = combination_supports(records({"a"}, {"b"}), m=2)
        assert ("a", "b") not in counts


class TestIsKmAnonymous:
    def test_paper_chunk_c1_is_3_2_anonymous(self):
        # chunk C1 of cluster P1 in Figure 2b
        chunk = records(
            {"itunes", "flu", "madonna"},
            {"madonna", "flu"},
            {"itunes", "madonna"},
            {"itunes", "flu"},
            {"itunes", "flu", "madonna"},
        )
        assert is_km_anonymous(chunk, k=3, m=2)

    def test_paper_chunk_c2_is_3_2_anonymous(self):
        chunk = records({"audi a4", "sony tv"}, {"audi a4", "sony tv"}, {"audi a4", "sony tv"})
        assert is_km_anonymous(chunk, k=3, m=2)

    def test_rare_pair_violates(self):
        chunk = records({"a", "b"}, {"a"}, {"a"}, {"b"}, {"b"})
        assert not is_km_anonymous(chunk, k=2, m=2)

    def test_rare_singleton_violates(self):
        chunk = records({"a"}, {"a"}, {"b"})
        assert not is_km_anonymous(chunk, k=2, m=1)

    def test_empty_chunk_is_anonymous(self):
        assert is_km_anonymous([], k=5, m=2)

    def test_all_empty_subrecords_is_anonymous(self):
        assert is_km_anonymous([frozenset(), frozenset()], k=5, m=2)

    def test_k_equal_one_always_holds(self):
        chunk = records({"a", "b"}, {"c"})
        assert is_km_anonymous(chunk, k=1, m=3)

    def test_m_larger_than_records_only_checks_existing_sizes(self):
        chunk = records({"a"}, {"a"}, {"a"})
        assert is_km_anonymous(chunk, k=3, m=5)

    def test_duplicate_subrecords_count_separately(self):
        chunk = records({"a", "b"}) * 1 + records({"a", "b"}, {"a", "b"})
        assert is_km_anonymous(chunk, k=3, m=2)


class TestFindViolations:
    def test_returns_none_when_anonymous(self):
        assert find_km_violation(records({"a"}, {"a"}), k=2, m=2) is None

    def test_returns_worst_violation(self):
        chunk = records({"a", "b"}, {"a"}, {"a"}, {"b"})
        itemset, support = find_km_violation(chunk, k=3, m=2)
        assert itemset == ("a", "b")
        assert support == 1

    def test_find_all_violations_lists_every_offender(self):
        chunk = records({"a", "b"}, {"c"})
        violations = find_all_km_violations(chunk, k=2, m=2)
        assert ("a",) in violations
        assert ("a", "b") in violations
        assert ("c",) in violations

    def test_find_all_violations_empty_when_anonymous(self):
        chunk = records({"a"}, {"a"}, {"a"})
        assert find_all_km_violations(chunk, k=3, m=2) == {}


class TestIsKAnonymous:
    def test_identical_subrecords(self):
        assert is_k_anonymous(records({"a", "b"}, {"a", "b"}, {"a", "b"}), k=3)

    def test_distinct_subrecord_below_k(self):
        assert not is_k_anonymous(records({"a", "b"}, {"a", "b"}, {"a"}), k=2)

    def test_empty_subrecords_ignored(self):
        assert is_k_anonymous([frozenset(), frozenset({"a"}), frozenset({"a"})], k=2)

    def test_k_anonymous_implies_km_anonymous_for_these_records(self):
        chunk = records({"a", "b"}, {"a", "b"}, {"a", "b"})
        assert is_k_anonymous(chunk, k=3)
        assert is_km_anonymous(chunk, k=3, m=2)


class TestIncrementalChunkChecker:
    def test_accepts_frequent_term(self):
        checker = IncrementalChunkChecker(records({"a"}, {"a"}, {"a"}), k=3, m=2)
        assert checker.try_add("a")
        assert checker.accepted_terms == frozenset({"a"})

    def test_rejects_rare_term(self):
        checker = IncrementalChunkChecker(records({"a"}, {"a"}, {"b"}), k=2, m=2)
        assert not checker.try_add("b")
        assert checker.accepted_terms == frozenset()

    def test_rejects_term_creating_rare_pair(self):
        cluster = records({"a", "b"}, {"a"}, {"a"}, {"b"}, {"b"})
        checker = IncrementalChunkChecker(cluster, k=2, m=2)
        assert checker.try_add("a")
        # "b" alone is frequent, but the pair (a, b) appears only once
        assert not checker.try_add("b")

    def test_incremental_matches_full_check(self):
        cluster = records(
            {"a", "b", "c"}, {"a", "b"}, {"a", "c"}, {"a", "b", "c"}, {"b", "c"}
        )
        checker = IncrementalChunkChecker(cluster, k=2, m=2)
        accepted = [t for t in ["a", "b", "c"] if checker.try_add(t)]
        projections = [r & frozenset(accepted) for r in cluster]
        assert is_km_anonymous([p for p in projections if p], k=2, m=2)

    def test_projections_track_accepted_terms(self):
        cluster = records({"a", "b"}, {"a"}, {"a", "b"})
        checker = IncrementalChunkChecker(cluster, k=2, m=2)
        checker.try_add("a")
        checker.try_add("b")
        assert checker.projections() == [
            frozenset({"a", "b"}),
            frozenset({"a"}),
            frozenset({"a", "b"}),
        ]

    def test_adding_same_term_twice_is_idempotent(self):
        checker = IncrementalChunkChecker(records({"a"}, {"a"}), k=2, m=2)
        assert checker.try_add("a")
        assert checker.try_add("a")
        assert checker.accepted_terms == frozenset({"a"})

    def test_would_remain_anonymous_does_not_mutate(self):
        checker = IncrementalChunkChecker(records({"a"}, {"a"}), k=2, m=2)
        assert checker.would_remain_anonymous("a")
        assert checker.accepted_terms == frozenset()

    def test_reset_clears_state(self):
        checker = IncrementalChunkChecker(records({"a"}, {"a"}), k=2, m=2)
        checker.try_add("a")
        checker.reset()
        assert checker.accepted_terms == frozenset()
        assert all(p == frozenset() for p in checker.projections())

    def test_invalid_parameters_raise(self):
        with pytest.raises(ParameterError):
            IncrementalChunkChecker(records({"a"}), k=0, m=2)

"""Unit tests for the published-data model (repro.core.clusters)."""

from __future__ import annotations

import pytest

from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
    cluster_from_dict,
)
from repro.exceptions import DatasetFormatError


@pytest.fixture
def p1_cluster() -> SimpleCluster:
    """Cluster P1 of Figure 2b."""
    c1 = RecordChunk(
        {"itunes", "flu", "madonna"},
        [
            {"itunes", "flu", "madonna"},
            {"madonna", "flu"},
            {"itunes", "madonna"},
            {"itunes", "flu"},
            {"itunes", "flu", "madonna"},
        ],
    )
    c2 = RecordChunk(
        {"audi a4", "sony tv"},
        [{"audi a4", "sony tv"}, {"audi a4", "sony tv"}, {"audi a4", "sony tv"}],
    )
    term_chunk = TermChunk({"ikea", "viagra", "ruby"})
    return SimpleCluster(size=5, record_chunks=[c1, c2], term_chunk=term_chunk, label="P1")


@pytest.fixture
def p2_cluster() -> SimpleCluster:
    """Cluster P2 of Figure 2b."""
    c1 = RecordChunk(
        {"iphone sdk", "digital camera", "madonna"},
        [
            {"madonna", "digital camera"},
            {"iphone sdk", "madonna"},
            {"iphone sdk", "digital camera", "madonna"},
            {"iphone sdk", "digital camera"},
            {"iphone sdk", "digital camera", "madonna"},
        ],
    )
    term_chunk = TermChunk({"panic disorder", "playboy", "ikea", "ruby"})
    return SimpleCluster(size=5, record_chunks=[c1], term_chunk=term_chunk, label="P2")


@pytest.fixture
def joint_cluster(p1_cluster, p2_cluster) -> JointCluster:
    """The joint cluster of Figure 3 (shared chunk over {ikea, ruby})."""
    shared = SharedChunk(
        {"ikea", "ruby"},
        [{"ikea", "ruby"}, {"ruby"}, {"ikea"}, {"ikea", "ruby"}, {"ikea", "ruby"}],
        contributions={"P1": 3, "P2": 2},
    )
    # the lifted terms leave the member term chunks
    p1_cluster.term_chunk = TermChunk({"viagra"})
    p2_cluster.term_chunk = TermChunk({"panic disorder", "playboy"})
    return JointCluster([p1_cluster, p2_cluster], shared_chunks=[shared], label="J1")


class TestRecordChunk:
    def test_drops_empty_subrecords(self):
        chunk = RecordChunk({"a"}, [{"a"}, set(), {"a"}])
        assert len(chunk) == 2

    def test_term_supports(self, p1_cluster):
        supports = p1_cluster.record_chunks[0].term_supports()
        assert supports["itunes"] == 4
        assert supports["madonna"] == 4
        assert supports["flu"] == 4

    def test_support_of_contained_pair(self, p1_cluster):
        assert p1_cluster.record_chunks[0].support({"itunes", "flu"}) == 3

    def test_support_of_pair_outside_domain_is_zero(self, p1_cluster):
        assert p1_cluster.record_chunks[0].support({"itunes", "audi a4"}) == 0

    def test_equality_ignores_subrecord_order(self):
        a = RecordChunk({"x", "y"}, [{"x"}, {"x", "y"}])
        b = RecordChunk({"x", "y"}, [{"x", "y"}, {"x"}])
        assert a == b

    def test_serialization_round_trip(self, p1_cluster):
        chunk = p1_cluster.record_chunks[0]
        assert RecordChunk.from_dict(chunk.to_dict()) == chunk

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(DatasetFormatError):
            RecordChunk.from_dict({"domain": ["a"]})


class TestSharedChunk:
    def test_contributions_survive_round_trip(self, joint_cluster):
        shared = joint_cluster.shared_chunks[0]
        rebuilt = SharedChunk.from_dict(shared.to_dict())
        assert rebuilt.contributions == {"P1": 3, "P2": 2}
        assert rebuilt == shared

    def test_is_a_record_chunk(self, joint_cluster):
        assert isinstance(joint_cluster.shared_chunks[0], RecordChunk)


class TestTermChunk:
    def test_contains_and_len(self):
        chunk = TermChunk({"a", "b"})
        assert "a" in chunk
        assert "z" not in chunk
        assert len(chunk) == 2

    def test_empty_term_chunk(self):
        assert len(TermChunk()) == 0

    def test_round_trip(self):
        chunk = TermChunk({"x", "y"})
        assert TermChunk.from_dict(chunk.to_dict()) == chunk

    def test_terms_normalized_to_strings(self):
        assert "1" in TermChunk({1})


class TestSimpleCluster:
    def test_record_chunk_terms(self, p1_cluster):
        assert p1_cluster.record_chunk_terms() == frozenset(
            {"itunes", "flu", "madonna", "audi a4", "sony tv"}
        )

    def test_domain_includes_term_chunk(self, p1_cluster):
        assert "viagra" in p1_cluster.domain()

    def test_total_subrecords(self, p1_cluster):
        assert p1_cluster.total_subrecords() == 8

    def test_leaves_is_self(self, p1_cluster):
        assert p1_cluster.leaves() == [p1_cluster]

    def test_no_shared_chunks(self, p1_cluster):
        assert list(p1_cluster.iter_shared_chunks()) == []

    def test_original_records_not_serialized(self, p1_cluster):
        payload = p1_cluster.to_dict()
        assert "original_records" not in payload
        rebuilt = SimpleCluster.from_dict(payload)
        assert rebuilt.original_records is None

    def test_round_trip_preserves_structure(self, p1_cluster):
        rebuilt = SimpleCluster.from_dict(p1_cluster.to_dict())
        assert rebuilt.size == 5
        assert rebuilt.label == "P1"
        assert len(rebuilt.record_chunks) == 2
        assert rebuilt.term_chunk == p1_cluster.term_chunk

    def test_default_label_is_generated(self):
        cluster = SimpleCluster(1, [], TermChunk({"a"}))
        assert cluster.label


class TestJointCluster:
    def test_size_sums_leaves(self, joint_cluster):
        assert joint_cluster.size == 10

    def test_leaves_returns_simple_clusters(self, joint_cluster):
        assert {leaf.label for leaf in joint_cluster.leaves()} == {"P1", "P2"}

    def test_record_chunk_terms_include_shared_chunks(self, joint_cluster):
        terms = joint_cluster.record_chunk_terms()
        assert "ikea" in terms and "ruby" in terms
        assert "madonna" in terms

    def test_term_chunk_terms_exclude_lifted_terms(self, joint_cluster):
        assert joint_cluster.term_chunk_terms() == frozenset(
            {"viagra", "panic disorder", "playboy"}
        )

    def test_iter_shared_chunks(self, joint_cluster):
        assert len(list(joint_cluster.iter_shared_chunks())) == 1

    def test_round_trip(self, joint_cluster):
        rebuilt = JointCluster.from_dict(joint_cluster.to_dict())
        assert rebuilt.size == 10
        assert len(rebuilt.shared_chunks) == 1
        assert {leaf.label for leaf in rebuilt.leaves()} == {"P1", "P2"}

    def test_nested_joint_clusters(self, joint_cluster, p1_cluster):
        extra_leaf = SimpleCluster(2, [], TermChunk({"zzz"}), label="P3")
        parent = JointCluster([joint_cluster, extra_leaf], shared_chunks=[], label="J2")
        assert parent.size == 12
        assert len(parent.leaves()) == 3
        assert len(list(parent.iter_shared_chunks())) == 1


class TestClusterFromDict:
    def test_dispatches_on_type(self, p1_cluster, joint_cluster):
        assert isinstance(cluster_from_dict(p1_cluster.to_dict()), SimpleCluster)
        assert isinstance(cluster_from_dict(joint_cluster.to_dict()), JointCluster)

    def test_unknown_type_rejected(self):
        with pytest.raises(DatasetFormatError):
            cluster_from_dict({"type": "mystery"})


class TestDisassociatedDataset:
    @pytest.fixture
    def published(self, joint_cluster) -> DisassociatedDataset:
        return DisassociatedDataset([joint_cluster], k=3, m=2)

    def test_total_records(self, published):
        assert published.total_records() == 10

    def test_simple_clusters(self, published):
        assert len(published.simple_clusters()) == 2

    def test_domain(self, published):
        domain = published.domain()
        assert "ikea" in domain and "viagra" in domain and "iphone sdk" in domain

    def test_record_chunk_terms(self, published):
        assert "audi a4" in published.record_chunk_terms()
        assert "viagra" not in published.record_chunk_terms()

    def test_term_chunk_only_terms(self, published):
        only = published.term_chunk_only_terms()
        assert "viagra" in only
        assert "madonna" not in only

    def test_lower_bound_support_single_term_in_chunks(self, published):
        assert published.lower_bound_support({"madonna"}) == 4 + 4

    def test_lower_bound_support_term_chunk_term(self, published):
        assert published.lower_bound_support({"viagra"}) == 1

    def test_lower_bound_support_pair_within_chunk(self, published):
        assert published.lower_bound_support({"audi a4", "sony tv"}) == 3

    def test_lower_bound_support_cross_chunk_pair_is_zero(self, published):
        assert published.lower_bound_support({"madonna", "audi a4"}) == 0

    def test_chunk_dataset_contains_all_subrecords(self, published):
        chunk_dataset = published.chunk_dataset()
        # 8 (P1 record chunks) + 5 (P2 record chunk) + 5 (shared chunk)
        # + 3 (term-chunk singleton markers)
        assert len(chunk_dataset) == 8 + 5 + 5 + 3

    def test_round_trip(self, published):
        rebuilt = DisassociatedDataset.from_dict(published.to_dict())
        assert rebuilt.k == 3 and rebuilt.m == 2
        assert rebuilt.total_records() == 10
        assert rebuilt.domain() == published.domain()

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(DatasetFormatError):
            DisassociatedDataset.from_dict({"k": 3})

    def test_iteration_and_len(self, published):
        assert len(published) == 1
        assert list(iter(published)) == published.clusters


class TestPausedGC:
    """The process-global GC pause must be reentrant and thread-safe."""

    def test_nested_pauses_restore_only_at_outermost_exit(self):
        import gc

        from repro.core.clusters import paused_gc

        assert gc.isenabled()
        with paused_gc():
            assert not gc.isenabled()
            with paused_gc():
                assert not gc.isenabled()
            # The inner exit must not re-enable under the outer pause.
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_respects_application_level_disable(self):
        import gc

        from repro.core.clusters import paused_gc

        gc.disable()
        try:
            with paused_gc():
                assert not gc.isenabled()
            assert not gc.isenabled()  # never undoes the caller's disable
        finally:
            gc.enable()

    def test_overlapping_threads_keep_gc_paused(self):
        import gc
        import threading

        from repro.core.clusters import paused_gc

        entered = threading.Event()
        release = threading.Event()

        def hold():
            with paused_gc():
                entered.set()
                release.wait(timeout=10)

        worker = threading.Thread(target=hold)
        worker.start()
        try:
            assert entered.wait(timeout=10)
            # Entering and leaving a pause on this thread while the worker
            # still holds its own must not re-enable the collector.
            with paused_gc():
                assert not gc.isenabled()
            assert not gc.isenabled()
        finally:
            release.set()
            worker.join(timeout=10)
        assert gc.isenabled()

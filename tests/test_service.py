"""Tests for the service layer: config, routing, warm state, lifecycle.

Covers the :mod:`repro.service` facade end to end:

* ``ServiceConfig`` validation, ``from_dict``/``to_dict`` round-trips and
  ``from_env`` parsing;
* request auto-routing (dataset vs iterator vs JSONL path, memory
  threshold) and forced modes;
* bit-for-bit equivalence of the service paths against the engines they
  wrap, including warm back-to-back runs sharing one vocabulary;
* concurrent ``submit()`` determinism against sequential ``run()``;
* engine and service lifecycle (double close, reuse after close, drain);
* the deprecation shims (``anonymize`` / ``anonymize_stream``) emitting
  warnings while producing identical publications.
"""

from __future__ import annotations

import threading

import pytest

from repro import (
    AnonymizationParams,
    AnonymizationRequest,
    AnonymizationService,
    Disassociator,
    EngineClosedError,
    ParameterError,
    ServiceClosedError,
    ServiceConfig,
    ServiceSaturatedError,
    ShardedPipeline,
    StreamParams,
    TransactionDataset,
    anonymize,
    anonymize_stream,
)
from repro.core.engine import AnonymizationReport
from repro.datasets.io import write_jsonl
from repro.datasets.quest import generate_quest
from repro.stream.executor import ShardedReport

from tests.conftest import PAPER_RECORDS


def quest(records=300, domain=80, seed=0) -> TransactionDataset:
    """A small deterministic QUEST dataset for service-level tests."""
    return generate_quest(
        num_transactions=records,
        domain_size=domain,
        avg_transaction_size=5.0,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# ServiceConfig
# --------------------------------------------------------------------------- #
class TestServiceConfig:
    def test_defaults_match_legacy_defaults(self):
        config = ServiceConfig()
        assert config.engine_params() == AnonymizationParams()
        assert config.stream_params() == StreamParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"m": 0},
            {"max_cluster_size": 4, "k": 5},
            {"backend": "fortran"},
            {"jobs": 0},
            {"shards": 0},
            {"max_records_in_memory": 1},
            {"shard_strategy": "roulette"},
            {"auto_stream_threshold": 0},
            {"max_pending": 0},
            # Cross-subsystem invariant (lives in ShardedPipeline, repeated
            # by ServiceConfig for fail-fast construction).
            {"max_cluster_size": 60, "max_records_in_memory": 50},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            ServiceConfig(**kwargs)

    def test_engine_and_stream_projections(self):
        config = ServiceConfig(
            k=3, m=1, max_cluster_size=10, jobs=2, shards=2, shard_strategy="horpart"
        )
        params = config.engine_params()
        assert (params.k, params.m, params.jobs) == (3, 1, 2)
        stream = config.stream_params()
        assert (stream.shards, stream.strategy) == (2, "horpart")

    def test_from_dict_round_trip(self):
        config = ServiceConfig(
            k=4,
            m=2,
            max_cluster_size=9,
            sensitive_terms={"flu", "viagra"},
            max_join_size=40,
            shards=3,
            shard_strategy="horpart",
            auto_stream_threshold=123,
            spill_dir="/tmp/spills",
        )
        payload = config.to_dict()
        assert payload["sensitive_terms"] == ["flu", "viagra"]
        assert ServiceConfig.from_dict(payload) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ParameterError, match="unknown ServiceConfig keys: kk"):
            ServiceConfig.from_dict({"kk": 5})

    def test_from_env_round_trip(self):
        config = ServiceConfig(
            k=7,
            max_cluster_size=20,
            refine=False,
            sensitive_terms={"a", "b"},
            jobs=2,
            shards=2,
            max_records_in_memory=50,
            reuse_vocabulary=False,
            max_join_size=60,
        )
        environ = {
            f"REPRO_SERVICE_{key.upper()}": ",".join(sorted(value))
            if isinstance(value, frozenset)
            else str(value)
            for key, value in config.to_dict().items()
            if value is not None and not isinstance(value, list)
        }
        environ["REPRO_SERVICE_SENSITIVE_TERMS"] = "a,b"
        assert ServiceConfig.from_env(environ) == config

    def test_from_env_parses_types(self):
        environ = {
            "REPRO_SERVICE_K": "9",
            "REPRO_SERVICE_MAX_CLUSTER_SIZE": "40",
            "REPRO_SERVICE_REFINE": "off",
            "REPRO_SERVICE_VERIFY": "Yes",
            "REPRO_SERVICE_MAX_JOIN_SIZE": "none",
            "REPRO_SERVICE_KERNELS": "python",
            "REPRO_SERVICE_SENSITIVE_TERMS": " flu , viagra ",
            "UNRELATED": "ignored",
        }
        config = ServiceConfig.from_env(environ)
        assert config.k == 9
        assert config.refine is False
        assert config.verify is True
        assert config.max_join_size is None
        assert config.kernels == "python"
        assert config.sensitive_terms == frozenset({"flu", "viagra"})

    @pytest.mark.parametrize(
        "environ",
        [
            {"REPRO_SERVICE_K": "five"},
            {"REPRO_SERVICE_REFINE": "maybe"},
        ],
    )
    def test_from_env_rejects_malformed_values(self, environ):
        with pytest.raises(ParameterError, match="REPRO_SERVICE_"):
            ServiceConfig.from_env(environ)

    def test_from_env_rejects_misspelled_prefixed_variables(self):
        with pytest.raises(ParameterError, match="max_clustersize"):
            ServiceConfig.from_env({"REPRO_SERVICE_MAX_CLUSTERSIZE": "50"})

    def test_stream_threshold_defaults_to_memory_bound(self):
        assert ServiceConfig(max_records_in_memory=77).stream_threshold == 77
        assert (
            ServiceConfig(max_records_in_memory=77, auto_stream_threshold=9).stream_threshold
            == 9
        )


# --------------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------------- #
ROUTING_CONFIG = ServiceConfig(
    k=3, max_cluster_size=10, verify=False, shards=2, max_records_in_memory=50
)


class TestRouting:
    def test_small_dataset_routes_to_batch(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(30))
        assert result.mode == "batch"
        assert isinstance(result.report, AnonymizationReport)
        assert result.original is not None

    def test_large_dataset_routes_to_stream(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(120), overrides={"auto_stream_threshold": 100})
        assert result.mode == "stream"
        assert isinstance(result.report, ShardedReport)
        assert result.original is None

    def test_small_iterator_routes_to_batch(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(iter(list(quest(30))))
        assert result.mode == "batch"

    def test_large_iterator_streams_without_materializing(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(
                iter(list(quest(120))), overrides={"auto_stream_threshold": 100}
            )
        assert result.mode == "stream"
        assert result.report.num_records == 120

    def test_jsonl_path_routes_by_threshold(self, tmp_path):
        path = tmp_path / "records.jsonl"
        write_jsonl(quest(30), path)
        with AnonymizationService(ROUTING_CONFIG) as service:
            # 30 records fit under the 50-record threshold: in-memory run.
            assert service.run(str(path)).mode == "batch"
            # Tighten the threshold below the file size: streamed run.
            assert (
                service.run(str(path), overrides={"auto_stream_threshold": 20}).mode
                == "stream"
            )

    def test_forced_modes_override_auto(self, tmp_path):
        path = tmp_path / "records.jsonl"
        write_jsonl(quest(30), path)
        with AnonymizationService(ROUTING_CONFIG) as service:
            assert service.run(quest(30), mode="stream").mode == "stream"
            assert service.run(str(path), mode="batch").mode == "batch"

    def test_request_kwargs_rejected_with_request_object(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            with pytest.raises(ParameterError, match="keyword arguments"):
                service.run(AnonymizationRequest(quest(10)), mode="batch")

    def test_misspelled_override_key_fails_fast(self):
        with pytest.raises(ParameterError, match="unknown ServiceConfig override"):
            AnonymizationRequest(quest(10), overrides={"max_clustersize": 40})
        with AnonymizationService(ROUTING_CONFIG) as service:
            # Also via the submit keyword path: rejected at submission, not
            # at job.result().
            with pytest.raises(ParameterError, match="unknown ServiceConfig override"):
                service.submit(quest(10), max_clustersize=40)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ParameterError, match="mode"):
            AnonymizationRequest(quest(10), mode="turbo")


# --------------------------------------------------------------------------- #
# equivalence with the wrapped engines, warm-state reuse
# --------------------------------------------------------------------------- #
class TestEquivalence:
    def test_batch_matches_direct_engine(self):
        dataset = quest(200)
        config = ServiceConfig(k=3, max_cluster_size=12)
        expected = Disassociator(config.engine_params()).anonymize(dataset)
        with AnonymizationService(config) as service:
            result = service.run(dataset, mode="batch")
        assert result.to_dict() == expected.to_dict()

    def test_stream_matches_direct_pipeline(self):
        dataset = quest(200)
        config = ServiceConfig(
            k=3, max_cluster_size=12, shards=2, max_records_in_memory=60
        )
        expected = ShardedPipeline(config.engine_params(), config.stream_params()).anonymize(
            dataset
        )
        with AnonymizationService(config) as service:
            result = service.run(dataset, mode="stream")
        assert result.to_dict() == expected.to_dict()

    def test_warm_back_to_back_runs_match_cold_runs(self):
        datasets = [quest(150, seed=seed) for seed in range(3)]
        config = ServiceConfig(k=3, max_cluster_size=12, verify=False)
        cold = [
            Disassociator(config.engine_params()).anonymize(dataset).to_dict()
            for dataset in datasets
        ]
        with AnonymizationService(config) as service:
            warm = [service.run(dataset, mode="batch").to_dict() for dataset in datasets]
        assert warm == cold

    def test_warm_vocabulary_skips_reinterning(self):
        dataset = quest(150)
        with AnonymizationService(ServiceConfig(k=3, max_cluster_size=12)) as service:
            first = service.run(dataset, mode="batch")
            terms_after_first = service.stats()["vocabulary_terms"]
            second = service.run(dataset, mode="batch")
            terms_after_second = service.stats()["vocabulary_terms"]
        assert terms_after_first > 0
        # Same input again: every term is already interned.
        assert terms_after_second == terms_after_first
        assert first.to_dict() == second.to_dict()

    def test_mixed_modes_share_one_service(self):
        dataset = quest(150)
        config = ServiceConfig(
            k=3, max_cluster_size=12, shards=2, max_records_in_memory=60
        )
        with AnonymizationService(config) as service:
            batch = service.run(dataset, mode="batch")
            stream = service.run(dataset, mode="stream")
            batch_again = service.run(dataset, mode="batch")
        assert batch.to_dict() == batch_again.to_dict()
        expected_stream = ShardedPipeline(
            config.engine_params(), config.stream_params()
        ).anonymize(dataset)
        assert stream.to_dict() == expected_stream.to_dict()

    def test_per_request_override_of_engine_identity(self):
        dataset = quest(120)
        config = ServiceConfig(k=3, max_cluster_size=12, verify=False)
        expected = Disassociator(
            config.engine_params(backend="string")
        ).anonymize(dataset)
        with AnonymizationService(config) as service:
            result = service.run(dataset, mode="batch", backend="string")
            warm_after = service.run(dataset, mode="batch")
        assert result.to_dict() == expected.to_dict()
        assert warm_after.to_dict() == expected.to_dict()  # backends are equivalent

    def test_auto_kernels_config_keeps_warm_engine(self):
        # "auto" must normalize to the same resolved literal as the warm
        # engine's, not silently force a transient engine per request.
        with AnonymizationService(
            ROUTING_CONFIG.with_overrides(kernels="auto")
        ) as service:
            params = service._engine_params(service.config)
            assert service._warm_engine_for(params) is service._engine
            service.run(quest(30), mode="batch")
            assert service._warm_engine_for(params) is service._engine

    def test_per_request_k_override(self):
        dataset = quest(120)
        config = ServiceConfig(k=3, max_cluster_size=12, verify=False)
        expected = Disassociator(config.engine_params(k=2)).anonymize(dataset)
        with AnonymizationService(config) as service:
            assert service.run(dataset, mode="batch", k=2).to_dict() == expected.to_dict()


# --------------------------------------------------------------------------- #
# submit(): queued execution
# --------------------------------------------------------------------------- #
class TestSubmit:
    def test_submit_returns_job_with_result(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            job = service.submit(quest(50), tag="first")
            result = job.result(timeout=60)
        assert job.done()
        assert result.tag == "first"
        assert result.mode == "batch"

    def test_concurrent_submits_match_sequential_runs(self):
        datasets = [quest(100, seed=seed) for seed in range(4)]
        config = ServiceConfig(k=3, max_cluster_size=12, verify=False)
        with AnonymizationService(config) as service:
            sequential = [service.run(d, mode="batch").to_dict() for d in datasets]
        with AnonymizationService(config) as service:
            jobs = [None] * len(datasets)

            def submit(index):
                jobs[index] = service.submit(datasets[index], mode="batch")

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(len(datasets))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            concurrent = [job.result(timeout=120).to_dict() for job in jobs]
        assert concurrent == sequential

    def test_submit_and_run_interleave_safely(self):
        dataset = quest(100)
        config = ServiceConfig(k=3, max_cluster_size=12, verify=False)
        with AnonymizationService(config) as service:
            job = service.submit(dataset, mode="batch")
            sync = service.run(dataset, mode="batch")
            assert job.result(timeout=60).to_dict() == sync.to_dict()

    def test_nonblocking_submit_raises_when_saturated(self):
        config = ROUTING_CONFIG.with_overrides(max_pending=1)
        service = AnonymizationService(config)
        gate = threading.Event()
        records = list(quest(30))

        def gated_records():
            # Holds the worker inside the first job until the gate opens,
            # so the queue state below is deterministic.
            gate.wait(timeout=60)
            yield from records

        try:
            first = service.submit(gated_records(), mode="batch")
            # A blocking submit waits for the worker to pick `first` up,
            # then occupies the single queue slot.
            second = service.submit(quest(30), mode="batch")
            with pytest.raises(ServiceSaturatedError):
                service.submit(quest(30), mode="batch", block=False)
            gate.set()
            assert first.result(timeout=120).mode == "batch"
            assert second.result(timeout=120).mode == "batch"
        finally:
            gate.set()
            if not service.closed:
                service.close()

    def test_caller_cancel_raises_cancellederror_not_shutdown(self):
        from concurrent.futures import CancelledError

        config = ROUTING_CONFIG.with_overrides(max_pending=4)
        service = AnonymizationService(config)
        gate = threading.Event()
        records = list(quest(30))

        def gated_records():
            gate.wait(timeout=60)
            yield from records

        try:
            first = service.submit(gated_records(), mode="batch")
            second = service.submit(quest(30), mode="batch")
            assert second.cancel()  # the caller's own cancellation
            gate.set()
            assert first.result(timeout=120).mode == "batch"
            with pytest.raises(CancelledError):
                second.result(timeout=10)
            with pytest.raises(CancelledError):
                second.exception(timeout=10)
        finally:
            gate.set()
            if not service.closed:
                service.close()

    def test_blocking_submit_with_timeout_raises_when_saturated(self):
        config = ROUTING_CONFIG.with_overrides(max_pending=1)
        service = AnonymizationService(config)
        gate = threading.Event()
        records = list(quest(30))

        def gated_records():
            gate.wait(timeout=60)
            yield from records

        try:
            first = service.submit(gated_records(), mode="batch")
            second = service.submit(quest(30), mode="batch")  # fills the slot
            with pytest.raises(ServiceSaturatedError):
                service.submit(quest(30), mode="batch", timeout=0.3)
            gate.set()
            first.result(timeout=120)
            second.result(timeout=120)
        finally:
            gate.set()
            if not service.closed:
                service.close()


# --------------------------------------------------------------------------- #
# lifecycle: engine and service close semantics
# --------------------------------------------------------------------------- #
class TestEngineLifecycle:
    def test_double_close_raises(self):
        engine = Disassociator()
        engine.close()
        with pytest.raises(EngineClosedError, match="twice"):
            engine.close()

    def test_anonymize_after_close_raises(self, paper_dataset):
        engine = Disassociator(AnonymizationParams(k=3, m=2, max_cluster_size=6))
        engine.close()
        with pytest.raises(EngineClosedError, match="closed engine"):
            engine.anonymize(paper_dataset)

    def test_engine_reusable_across_calls_without_close(self, paper_dataset):
        engine = Disassociator(AnonymizationParams(k=3, m=2, max_cluster_size=6))
        first = engine.anonymize(paper_dataset)
        second = engine.anonymize(paper_dataset)
        assert first.to_dict() == second.to_dict()
        assert not engine.closed

    def test_context_manager_tolerates_inner_close(self):
        with Disassociator() as engine:
            engine.close()
        assert engine.closed

    def test_context_manager_closes(self):
        with Disassociator() as engine:
            assert not engine.closed
        assert engine.closed
        with pytest.raises(EngineClosedError):
            engine.close()

    def test_broken_pool_is_released_for_the_next_call(self, paper_dataset):
        from concurrent.futures.process import BrokenProcessPool

        engine = Disassociator(
            AnonymizationParams(k=3, m=2, max_cluster_size=6), keep_pool=True
        )

        class _DeadPool:
            shut_down = False

            def shutdown(self, *args, **kwargs):
                self.shut_down = True

        dead_pool = _DeadPool()
        engine._pool = dead_pool

        def broken_pipeline():
            raise BrokenProcessPool("worker died")

        engine.build_pipeline = broken_pipeline  # type: ignore[method-assign]
        with pytest.raises(BrokenProcessPool):
            engine.anonymize(paper_dataset)
        # The poisoned executor is gone; a later call respawns from scratch.
        assert dead_pool.shut_down
        assert engine._pool is None
        del engine.build_pipeline
        assert engine.anonymize(paper_dataset) is not None
        engine.close()


class TestServiceLifecycle:
    def test_double_close_raises(self):
        service = AnonymizationService(ROUTING_CONFIG)
        service.close()
        with pytest.raises(ServiceClosedError, match="twice"):
            service.close()

    def test_run_and_submit_after_close_raise(self):
        service = AnonymizationService(ROUTING_CONFIG)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.run(quest(10))
        with pytest.raises(ServiceClosedError):
            service.submit(quest(10))

    def test_context_manager_tolerates_inner_close(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            service.close()
        assert service.closed

    def test_close_drains_in_flight_jobs(self):
        service = AnonymizationService(ROUTING_CONFIG)
        jobs = [service.submit(quest(80, seed=seed), mode="batch") for seed in range(3)]
        service.close(drain=True)
        for job in jobs:
            assert job.result(timeout=1).mode == "batch"

    def test_close_without_drain_cancels_pending_jobs(self):
        service = AnonymizationService(ROUTING_CONFIG)
        jobs = [service.submit(quest(200, seed=seed), mode="batch") for seed in range(4)]
        service.close(drain=False)
        outcomes = []
        for job in jobs:
            try:
                job.result(timeout=60)
                outcomes.append("done")
            except ServiceClosedError:
                outcomes.append("cancelled")
        # The worker may have started (and must then finish) a prefix of
        # the queue; everything behind it is cancelled, nothing hangs.
        assert "cancelled" in outcomes
        assert outcomes == sorted(outcomes, key=lambda o: o == "cancelled")

    def test_service_closes_its_engine(self):
        service = AnonymizationService(ROUTING_CONFIG)
        engine = service._engine
        service.close()
        assert engine.closed


# --------------------------------------------------------------------------- #
# deprecation shims
# --------------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_anonymize_warns_and_matches_engine(self, paper_dataset):
        params = AnonymizationParams(k=3, m=2, max_cluster_size=6)
        expected = Disassociator(params).anonymize(paper_dataset)
        with pytest.warns(DeprecationWarning, match="compatibility shim"):
            published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert published.to_dict() == expected.to_dict()

    def test_anonymize_stream_warns_and_matches_pipeline(self):
        dataset = quest(150)
        params = AnonymizationParams(k=3, max_cluster_size=12)
        stream = StreamParams(shards=2, max_records_in_memory=60)
        expected = ShardedPipeline(params, stream).anonymize(dataset)
        with pytest.warns(DeprecationWarning, match="compatibility shim"):
            published = anonymize_stream(
                dataset,
                k=3,
                max_cluster_size=12,
                shards=2,
                max_records_in_memory=60,
            )
        assert published.to_dict() == expected.to_dict()

    def test_shim_parameter_validation_unchanged(self, paper_dataset):
        with pytest.raises(ParameterError):
            with pytest.warns(DeprecationWarning):
                anonymize(paper_dataset, k=0)

    def test_cli_anonymize_matches_direct_engine(self, tmp_path):
        from repro.cli import main
        from repro.datasets.io import read_disassociated_json, write_transactions

        dataset = quest(120)
        data_path = tmp_path / "data.txt"
        out_path = tmp_path / "published.json"
        write_transactions(dataset, data_path)
        params = AnonymizationParams(k=3, m=2, max_cluster_size=12)
        expected = Disassociator(params).anonymize(dataset)
        code = main(
            [
                "anonymize",
                str(data_path),
                "--k", "3",
                "--m", "2",
                "--max-cluster-size", "12",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        assert read_disassociated_json(out_path).to_dict() == expected.to_dict()


# --------------------------------------------------------------------------- #
# PublicationResult
# --------------------------------------------------------------------------- #
class TestPublicationResult:
    def test_to_dict_is_cached(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(50))
        assert result.to_dict() is result.to_dict()

    def test_save_writes_loadable_json(self, tmp_path):
        from repro.datasets.io import read_disassociated_json

        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(50))
        path = result.save(tmp_path / "published.json")
        assert read_disassociated_json(path).to_dict() == result.to_dict()

    def test_metrics_use_materialized_original(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        with AnonymizationService(
            ServiceConfig(k=3, max_cluster_size=6)
        ) as service:
            result = service.run(dataset, mode="batch")
        metrics = result.metrics(top_k=20)
        assert set(metrics) == {"tkd_a", "tkd", "re_a", "re", "tlost"}
        assert result.metrics(top_k=20) is metrics  # cached

    def test_metrics_cache_is_keyed_by_original_identity(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(60), mode="stream")
        first_original = quest(60)
        other_original = quest(60, seed=9)
        first = result.metrics(original=first_original, top_k=20)
        other = result.metrics(original=other_original, top_k=20)
        assert other is not first  # different original: recomputed, not stale
        assert result.metrics(original=other_original, top_k=20) is other

    def test_metrics_without_original_raise_for_streams(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            result = service.run(quest(60), mode="stream")
        with pytest.raises(ParameterError, match="original dataset"):
            result.metrics()

    def test_summary_matches_mode(self):
        with AnonymizationService(ROUTING_CONFIG) as service:
            batch = service.run(quest(50), mode="batch")
            stream = service.run(quest(50), mode="stream")
        assert "anonymized 50 records" in batch.summary()
        assert "sharded run" in stream.summary()

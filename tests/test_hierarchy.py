"""Unit tests for generalization hierarchies (repro.mining.hierarchy)."""

from __future__ import annotations

import pytest

from repro.exceptions import HierarchyError
from repro.mining.hierarchy import ROOT, GeneralizationHierarchy, expand_with_ancestors


@pytest.fixture
def manual_hierarchy() -> GeneralizationHierarchy:
    """A small hand-built hierarchy:

            *
           / \\
        food  tech
        /  \\    \\
     apple pear  phone
    """
    return GeneralizationHierarchy(
        {
            "apple": "food",
            "pear": "food",
            "phone": "tech",
            "food": ROOT,
            "tech": ROOT,
        }
    )


class TestConstruction:
    def test_root_detected(self, manual_hierarchy):
        assert manual_hierarchy.root == ROOT

    def test_leaves_detected(self, manual_hierarchy):
        assert manual_hierarchy.leaves == frozenset({"apple", "pear", "phone"})

    def test_multiple_roots_rejected(self):
        with pytest.raises(HierarchyError):
            GeneralizationHierarchy({"a": "r1", "b": "r2"})

    def test_cycle_rejected(self):
        with pytest.raises(HierarchyError):
            GeneralizationHierarchy({"a": "b", "b": "a", "c": "a"})

    def test_empty_domain_rejected_by_balanced(self):
        with pytest.raises(HierarchyError):
            GeneralizationHierarchy.balanced([])

    def test_invalid_fanout_rejected(self):
        with pytest.raises(HierarchyError):
            GeneralizationHierarchy.balanced(["a", "b"], fanout=1)


class TestNavigation:
    def test_parent(self, manual_hierarchy):
        assert manual_hierarchy.parent("apple") == "food"
        assert manual_hierarchy.parent("food") == ROOT
        assert manual_hierarchy.parent(ROOT) is None

    def test_unknown_node_raises(self, manual_hierarchy):
        with pytest.raises(HierarchyError):
            manual_hierarchy.parent("banana")

    def test_children(self, manual_hierarchy):
        assert manual_hierarchy.children("food") == ["apple", "pear"]
        assert manual_hierarchy.children("apple") == []

    def test_ancestors(self, manual_hierarchy):
        assert manual_hierarchy.ancestors("apple") == ["food", ROOT]
        assert manual_hierarchy.ancestors("apple", include_self=True) == ["apple", "food", ROOT]
        assert manual_hierarchy.ancestors(ROOT) == []

    def test_level(self, manual_hierarchy):
        assert manual_hierarchy.level(ROOT) == 0
        assert manual_hierarchy.level("food") == 1
        assert manual_hierarchy.level("apple") == 2

    def test_leaves_under(self, manual_hierarchy):
        assert manual_hierarchy.leaves_under("food") == frozenset({"apple", "pear"})
        assert manual_hierarchy.leaves_under(ROOT) == manual_hierarchy.leaves
        assert manual_hierarchy.leaves_under("apple") == frozenset({"apple"})

    def test_leaf_count(self, manual_hierarchy):
        assert manual_hierarchy.leaf_count("food") == 2
        assert manual_hierarchy.leaf_count(ROOT) == 3

    def test_generalize_climbs_levels(self, manual_hierarchy):
        assert manual_hierarchy.generalize("apple") == "food"
        assert manual_hierarchy.generalize("apple", levels=2) == ROOT
        assert manual_hierarchy.generalize("apple", levels=10) == ROOT

    def test_is_ancestor(self, manual_hierarchy):
        assert manual_hierarchy.is_ancestor("food", "apple")
        assert manual_hierarchy.is_ancestor(ROOT, "apple")
        assert manual_hierarchy.is_ancestor("apple", "apple")
        assert not manual_hierarchy.is_ancestor("tech", "apple")

    def test_all_nodes(self, manual_hierarchy):
        assert set(manual_hierarchy.all_nodes()) == {
            "apple",
            "pear",
            "phone",
            "food",
            "tech",
            ROOT,
        }


class TestBalancedHierarchy:
    def test_all_terms_become_leaves(self):
        terms = [f"t{i}" for i in range(37)]
        hierarchy = GeneralizationHierarchy.balanced(terms, fanout=4)
        assert hierarchy.leaves == frozenset(terms)

    def test_every_leaf_reaches_the_root(self):
        hierarchy = GeneralizationHierarchy.balanced([f"t{i}" for i in range(20)], fanout=3)
        for leaf in hierarchy.leaves:
            assert hierarchy.ancestors(leaf)[-1] == hierarchy.root

    def test_fanout_is_respected(self):
        hierarchy = GeneralizationHierarchy.balanced([f"t{i}" for i in range(64)], fanout=4)
        for node in hierarchy.all_nodes():
            assert len(hierarchy.children(node)) <= 4

    def test_single_term_domain(self):
        hierarchy = GeneralizationHierarchy.balanced(["only"])
        assert hierarchy.leaves == frozenset({"only"})
        assert hierarchy.parent("only") == hierarchy.root

    def test_small_domain_goes_directly_under_root(self):
        hierarchy = GeneralizationHierarchy.balanced(["a", "b", "c"], fanout=4)
        assert hierarchy.parent("a") == hierarchy.root


class TestNCP:
    def test_leaf_ncp_is_zero(self, manual_hierarchy):
        assert manual_hierarchy.ncp("apple") == 0.0

    def test_root_ncp_is_one(self, manual_hierarchy):
        assert manual_hierarchy.ncp(ROOT) == 1.0

    def test_interior_ncp_is_fraction_of_domain(self, manual_hierarchy):
        assert manual_hierarchy.ncp("food") == pytest.approx(2 / 3)


class TestGeneralizeRecord:
    def test_applies_cut(self, manual_hierarchy):
        cut = {"apple": "food", "pear": "food", "phone": "phone"}
        assert manual_hierarchy.generalize_record({"apple", "phone"}, cut) == frozenset(
            {"food", "phone"}
        )

    def test_terms_missing_from_cut_are_kept(self, manual_hierarchy):
        assert manual_hierarchy.generalize_record({"apple"}, {}) == frozenset({"apple"})


class TestExpandWithAncestors:
    def test_adds_interior_nodes(self, manual_hierarchy):
        expanded = expand_with_ancestors({"apple"}, manual_hierarchy)
        assert expanded == frozenset({"apple", "food"})

    def test_root_excluded_by_default(self, manual_hierarchy):
        assert ROOT not in expand_with_ancestors({"apple"}, manual_hierarchy)

    def test_root_included_on_request(self, manual_hierarchy):
        assert ROOT in expand_with_ancestors({"apple"}, manual_hierarchy, include_root=True)

    def test_unknown_terms_are_kept_as_is(self, manual_hierarchy):
        expanded = expand_with_ancestors({"mystery"}, manual_hierarchy)
        assert "mystery" in expanded

    def test_interior_node_input_expands_upwards(self, manual_hierarchy):
        expanded = expand_with_ancestors({"food"}, manual_hierarchy)
        assert expanded == frozenset({"food"})

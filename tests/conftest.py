"""Shared fixtures for the test suite.

The fixtures mirror the paper's running examples (Figures 2-5) plus a few
synthetic datasets of controlled shape, so individual tests stay short and
readable.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator

# --------------------------------------------------------------------------- #
# the paper's Figure 2a dataset (10 web-search histories)
# --------------------------------------------------------------------------- #
PAPER_RECORDS = [
    {"itunes", "flu", "madonna", "ikea", "ruby"},
    {"madonna", "flu", "viagra", "ruby", "audi a4", "sony tv"},
    {"itunes", "madonna", "audi a4", "ikea", "sony tv"},
    {"itunes", "flu", "viagra"},
    {"itunes", "flu", "madonna", "audi a4", "sony tv"},
    {"madonna", "digital camera", "panic disorder", "playboy"},
    {"iphone sdk", "madonna", "ikea", "ruby"},
    {"iphone sdk", "digital camera", "madonna", "playboy"},
    {"iphone sdk", "digital camera", "panic disorder"},
    {"iphone sdk", "digital camera", "madonna", "ikea", "ruby"},
]

# the paper's Figure 4a cluster (Example 1: Lemma 2 violation without the bound)
EXAMPLE1_RECORDS = [
    {"a"},
    {"a"},
    {"b", "c"},
    {"b", "c"},
    {"a", "b", "c"},
]


@pytest.fixture
def paper_dataset() -> TransactionDataset:
    """The 10-record query log of Figure 2a."""
    return TransactionDataset(PAPER_RECORDS)


@pytest.fixture
def example1_cluster() -> TransactionDataset:
    """The 5-record cluster of Figure 4a (Example 1)."""
    return TransactionDataset(EXAMPLE1_RECORDS)


@pytest.fixture
def paper_published(paper_dataset):
    """The paper dataset disassociated with k=3, m=2 (two HORPART clusters)."""
    params = AnonymizationParams(k=3, m=2, max_cluster_size=6)
    return Disassociator(params).anonymize(paper_dataset)


@pytest.fixture
def tiny_dataset() -> TransactionDataset:
    """A 6-record dataset with one dominant pair and a rare tail term."""
    return TransactionDataset(
        [
            {"a", "b"},
            {"a", "b"},
            {"a", "b", "c"},
            {"a", "c"},
            {"b", "c"},
            {"a", "b", "d"},
        ]
    )


@pytest.fixture
def skewed_dataset() -> TransactionDataset:
    """A 60-record synthetic dataset with Zipf-ish term frequencies.

    Deterministic (seeded) so supports are stable across test runs.
    """
    rng = random.Random(42)
    vocabulary = [f"t{i}" for i in range(30)]
    weights = [1.0 / (i + 1) for i in range(30)]
    records = []
    for _ in range(60):
        length = rng.randint(2, 6)
        record = set()
        while len(record) < length:
            record.add(rng.choices(vocabulary, weights=weights, k=1)[0])
        records.append(record)
    return TransactionDataset(records)


@pytest.fixture
def skewed_published(skewed_dataset):
    """The skewed dataset disassociated with the default parameters (k=3)."""
    params = AnonymizationParams(k=3, m=2, max_cluster_size=12)
    return Disassociator(params).anonymize(skewed_dataset)


def make_uniform_dataset(num_records: int, domain: int, record_length: int, seed: int = 0):
    """Helper used by several test modules: uniform-random records."""
    rng = random.Random(seed)
    vocabulary = [f"u{i}" for i in range(domain)]
    records = []
    for _ in range(num_records):
        records.append(rng.sample(vocabulary, min(record_length, domain)))
    return TransactionDataset(records)


# --------------------------------------------------------------------------- #
# the paper-shaped synthetic workloads shared by the resilience, kernel,
# wave-batching and incremental suites
# --------------------------------------------------------------------------- #

#: The three workload families every cross-cutting suite exercises.
WORKLOAD_NAMES = ("quest", "zipf", "clickstream")


def make_workload(
    name: str,
    *,
    records: int,
    domain: int,
    avg_len: float,
    seed: int,
    sections: int | None = None,
) -> TransactionDataset:
    """One seeded paper-shaped workload: ``quest``/``zipf``/``clickstream``.

    A single dispatch point for the synthetic generators, so every suite
    builds its workloads through the same seeded calls instead of each
    re-spelling the generator keyword soup.  ``records``/``domain`` map to
    transactions/items (quest, zipf) or sessions/pages (clickstream);
    ``sections`` only applies to clickstream (``None`` keeps the
    generator's default).
    """
    # Imported here so importing conftest stays cheap for suites that
    # never touch the synthetic generators.
    from repro.datasets.quest import generate_quest
    from repro.datasets.scenarios import generate_clickstream, generate_zipf_basket

    if name == "quest":
        return generate_quest(
            num_transactions=records,
            domain_size=domain,
            avg_transaction_size=avg_len,
            seed=seed,
        )
    if name == "zipf":
        return generate_zipf_basket(
            num_transactions=records,
            domain_size=domain,
            avg_basket_size=avg_len,
            seed=seed,
        )
    if name == "clickstream":
        kwargs = {} if sections is None else {"num_sections": sections}
        return generate_clickstream(
            num_sessions=records,
            num_pages=domain,
            avg_session_length=avg_len,
            seed=seed,
            **kwargs,
        )
    raise ValueError(f"unknown workload {name!r} (known: {WORKLOAD_NAMES})")

"""Property-based tests (hypothesis) for the core invariants.

These tests generate random transactional datasets and check the paper's
structural invariants end to end:

* every published record/shared chunk is k^m-anonymous,
* the published dataset passes the independent audit,
* the cluster sizes sum to the original record count and no original term is
  dropped,
* reconstruction produces valid datasets of the right size,
* lower-bound supports never exceed the original supports,
* the mining substrates (Apriori vs FP-growth) agree.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.anonymity import combination_supports, is_km_anonymous
from repro.core.dataset import TransactionDataset
from repro.core.engine import anonymize
from repro.core.reconstruct import reconstruct
from repro.core.verification import audit
from repro.mining import apriori, fpgrowth

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
TERMS = [f"w{i}" for i in range(12)]

records_strategy = st.lists(
    st.sets(st.sampled_from(TERMS), min_size=1, max_size=5),
    min_size=1,
    max_size=40,
)

km_strategy = st.tuples(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3))

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(records=records_strategy, km=km_strategy)
@SETTINGS
def test_pipeline_output_is_always_km_anonymous(records, km):
    k, m = km
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=k, m=m, max_cluster_size=max(k + 1, 10), verify=False)
    report = audit(published)
    assert report.ok, report.summary()


@given(records=records_strategy, km=km_strategy)
@SETTINGS
def test_pipeline_preserves_records_and_terms(records, km):
    k, m = km
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=k, m=m, max_cluster_size=max(k + 1, 10), verify=False)
    assert published.total_records() == len(dataset)
    assert published.domain() == dataset.domain


@given(records=records_strategy, km=km_strategy, seed=st.integers(min_value=0, max_value=10))
@SETTINGS
def test_reconstruction_yields_valid_world(records, km, seed):
    k, m = km
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=k, m=m, max_cluster_size=max(k + 1, 10), verify=False)
    world = reconstruct(published, seed=seed)
    assert len(world) == len(dataset)
    assert all(record for record in world)
    assert world.domain <= dataset.domain


@given(records=records_strategy, km=km_strategy)
@SETTINGS
def test_lower_bounds_never_exceed_original_supports(records, km):
    k, m = km
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=k, m=m, max_cluster_size=max(k + 1, 10), verify=False)
    for term in dataset.domain:
        assert published.lower_bound_support({term}) <= dataset.support({term})


@given(records=records_strategy, km=km_strategy)
@SETTINGS
def test_record_chunk_pairs_keep_exact_supports_at_least_k(records, km):
    """Lemma 1: any pair observable inside a chunk appears at least k times."""
    k, m = km
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=k, m=m, max_cluster_size=max(k + 1, 10), verify=False)
    for chunk in published.iter_record_chunks():
        counts = combination_supports(chunk.subrecords, m)
        assert all(value >= k for value in counts.values())


@given(
    records=st.lists(
        st.sets(st.sampled_from(TERMS), min_size=1, max_size=4), min_size=1, max_size=25
    ),
    min_support=st.integers(min_value=1, max_value=6),
)
@SETTINGS
def test_apriori_and_fpgrowth_agree(records, min_support):
    dataset = TransactionDataset(records)
    assert apriori.mine_frequent_itemsets(dataset, min_support, max_size=3) == (
        fpgrowth.mine_frequent_itemsets(dataset, min_support, max_size=3)
    )


@given(
    subrecords=st.lists(
        st.sets(st.sampled_from(TERMS[:6]), min_size=0, max_size=4), min_size=0, max_size=20
    ),
    km=km_strategy,
)
@SETTINGS
def test_km_anonymity_is_monotone_in_k(subrecords, km):
    """If a chunk is k-anonymous for combinations, it is also (k-1)^m-anonymous."""
    k, m = km
    chunk = [frozenset(s) for s in subrecords]
    if is_km_anonymous(chunk, k, m):
        assert is_km_anonymous(chunk, max(1, k - 1), m)


@given(
    subrecords=st.lists(
        st.sets(st.sampled_from(TERMS[:6]), min_size=0, max_size=4), min_size=0, max_size=20
    ),
    km=km_strategy,
)
@SETTINGS
def test_km_anonymity_is_monotone_in_m(subrecords, km):
    """k^m-anonymity for m implies k^(m-1)-anonymity (fewer combinations)."""
    k, m = km
    chunk = [frozenset(s) for s in subrecords]
    if is_km_anonymous(chunk, k, m) and m > 1:
        assert is_km_anonymous(chunk, k, m - 1)


@given(records=records_strategy, seed=st.integers(min_value=0, max_value=5))
@SETTINGS
def test_reconstruction_preserves_chunk_term_supports(records, seed):
    """Terms placed in record chunks keep their exact per-chunk supports in
    every reconstruction (each sub-record is placed exactly once)."""
    dataset = TransactionDataset(records)
    published = anonymize(dataset, k=2, m=2, max_cluster_size=10, verify=False)
    world = reconstruct(published, seed=seed)
    world_supports = world.term_supports()
    for term in published.record_chunk_terms():
        chunk_total = sum(
            chunk.term_supports().get(term, 0) for chunk in published.iter_record_chunks()
        )
        assert world_supports[term] >= chunk_total

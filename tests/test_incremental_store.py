"""Edge cases and API surface of the persistent incremental store.

Complements the differential fuzz suite (``test_incremental_fuzz.py``):
where the fuzz suite proves the bit-for-bit oracle property on randomized
mutation sequences, this one pins the boundary behaviors down one by one
-- the empty dataset, the single shard, the zero-delta no-op fast path,
deleting everything, plan-fingerprint drift and store-identity mismatches
(all refused with :class:`~repro.exceptions.StoreError`), the compaction
and fault-injection hooks, and the delta plumbing through the service
config/request model, the HTTP front door and the CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.cli import main
from repro.core.engine import AnonymizationParams
from repro.datasets.io import write_jsonl
from repro.exceptions import (
    CheckpointError,
    FaultInjected,
    ParameterError,
    StoreError,
)
from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig
from repro.service.http import ServiceHTTPServer, classify_error
from repro.stream import (
    IncrementalPipeline,
    ShardedPipeline,
    ShardStore,
    StreamParams,
    run_fingerprint,
)

PARAMS = AnonymizationParams(k=3, m=2, max_cluster_size=12)

RECORDS = [
    frozenset({f"a{i % 7}", f"b{i % 5}", f"c{i % 11}"}) for i in range(140)
]


def _stream(store_dir, **overrides) -> StreamParams:
    values = dict(shards=3, max_records_in_memory=100, store_dir=store_dir)
    values.update(overrides)
    return StreamParams(**values)


def _canonical(published) -> str:
    return json.dumps(published.to_dict(), sort_keys=True)


def _cold(records, **stream_overrides):
    values = dict(shards=3, max_records_in_memory=100)
    values.update(stream_overrides)
    return ShardedPipeline(PARAMS, StreamParams(**values)).run(list(records))


class TestEdgeCases:
    def test_empty_dataset(self, tmp_path):
        """A store initialized with nothing publishes the empty publication."""
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        published = pipeline.run()
        assert published.clusters == []
        assert _canonical(published) == _canonical(_cold([]))
        report = pipeline.last_report
        assert report.num_records == 0
        assert report.initialized
        # And the follow-up empty run is the no-op fast path.
        again = pipeline.run()
        assert _canonical(again) == _canonical(published)
        assert pipeline.last_report.noop

    def test_single_shard(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s", shards=1))
        pipeline.run(append=RECORDS)
        published = pipeline.run(append=[frozenset({"z1", "z2"})], delete=RECORDS[:3])
        mutated = RECORDS[3:] + [frozenset({"z1", "z2"})]
        assert _canonical(published) == _canonical(_cold(mutated, shards=1))

    def test_zero_delta_is_noop_fast_path(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        first = pipeline.run(append=RECORDS)
        first_report = pipeline.last_report
        assert not first_report.noop
        second = pipeline.run()
        report = pipeline.last_report
        assert _canonical(second) == _canonical(first)
        assert report.noop
        assert report.windows_recomputed == 0 and report.windows_reused == 0
        assert report.anonymize_seconds == 0.0
        # The fast path still reports the publication's cluster statistics.
        assert report.num_clusters == first_report.num_clusters

    def test_delete_everything(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=RECORDS)
        published = pipeline.run(delete=RECORDS)
        assert published.clusters == []
        assert _canonical(published) == _canonical(_cold([]))
        assert pipeline.last_report.num_records == 0
        # The store can grow again after being emptied.
        regrown = pipeline.run(append=RECORDS[:40])
        assert _canonical(regrown) == _canonical(_cold(RECORDS[:40]))

    def test_delete_missing_record_refused_and_rolled_back(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        baseline = pipeline.run(append=RECORDS)
        with pytest.raises(StoreError, match="does not hold"):
            pipeline.run(
                append=[frozenset({"kept?"})], delete=[frozenset({"never-there"})]
            )
        # The whole delta rolled back: the append did not land either.
        assert _canonical(pipeline.run()) == _canonical(baseline)

    def test_duplicate_deletes_remove_distinct_occurrences(self, tmp_path):
        """Deleting the same content twice removes two stored occurrences."""
        twice = [frozenset({"dup", "rec"})] * 2 + RECORDS[:50]
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=twice)
        published = pipeline.run(
            delete=[frozenset({"dup", "rec"}), frozenset({"dup", "rec"})]
        )
        assert _canonical(published) == _canonical(_cold(RECORDS[:50]))


class TestStoreValidation:
    def test_store_requires_store_dir(self):
        with pytest.raises(ParameterError, match="store_dir"):
            IncrementalPipeline(
                PARAMS, StreamParams(shards=3, max_records_in_memory=100)
            )

    def test_parameter_fingerprint_mismatch_refused(self, tmp_path):
        IncrementalPipeline(PARAMS, _stream(tmp_path / "s")).run(append=RECORDS)
        other = AnonymizationParams(k=5, m=2, max_cluster_size=12)
        pipeline = IncrementalPipeline(other, _stream(tmp_path / "s"))
        with pytest.raises(StoreError, match="output-affecting parameters"):
            pipeline.run(append=[frozenset({"x"})])

    def test_store_dir_not_part_of_fingerprint(self, tmp_path):
        """Like spill_dir, the store's location is identity, not parameters."""
        a = run_fingerprint(PARAMS, _stream(tmp_path / "a"))
        b = run_fingerprint(PARAMS, _stream(tmp_path / "b"))
        assert a == b

    def test_store_survives_relocation(self, tmp_path):
        """Moving the store directory keeps it usable (location != identity)."""
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "a"))
        baseline = pipeline.run(append=RECORDS)
        (tmp_path / "a").rename(tmp_path / "b")
        moved = IncrementalPipeline(PARAMS, _stream(tmp_path / "b"))
        assert _canonical(moved.run()) == _canonical(baseline)
        assert moved.last_report.noop

    def test_wrong_version_refused(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=RECORDS[:20])
        with ShardStore(tmp_path / "s") as store:
            store._db.execute("BEGIN IMMEDIATE")
            store._set_meta("version", "999")
            store._db.execute("COMMIT")
        with pytest.raises(StoreError, match="version"):
            pipeline.run()

    def test_corrupt_database_refused(self, tmp_path):
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "store.sqlite").write_bytes(b"this is not sqlite" * 64)
        with pytest.raises(StoreError):
            IncrementalPipeline(PARAMS, _stream(tmp_path / "s")).run()

    def test_plan_drift_refused_and_rolled_back(self, tmp_path):
        """A delta that would change the horpart plan is rejected whole."""
        pipeline = IncrementalPipeline(
            PARAMS, _stream(tmp_path / "s", strategy="horpart")
        )
        records = list(
            frozenset({f"p{i % 13}", f"q{i % 7}", f"r{i}"}) for i in range(160)
        )
        baseline = pipeline.run(append=records)
        with pytest.raises(StoreError, match="plan fingerprint"):
            pipeline.run(delete=records[:80])
        # Nothing mutated: the store still answers with the old publication.
        assert _canonical(pipeline.run()) == _canonical(baseline)

    def test_strategy_mismatch_refused(self, tmp_path):
        pipeline = IncrementalPipeline(
            PARAMS, _stream(tmp_path / "s", strategy="horpart")
        )
        pipeline.run(append=RECORDS)
        hashed = IncrementalPipeline(PARAMS, _stream(tmp_path / "s", strategy="hash"))
        with pytest.raises(StoreError):
            hashed.run(append=[frozenset({"x"})])

    def test_store_error_is_checkpoint_error(self):
        assert issubclass(StoreError, CheckpointError)

    def test_delete_on_fresh_store_refused(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        with pytest.raises(StoreError, match="uninitialized"):
            pipeline.run(delete=[frozenset({"x"})])


class TestMaintenance:
    def test_compact_preserves_everything(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=RECORDS)
        baseline = pipeline.run(delete=RECORDS[:60])
        before = (tmp_path / "s" / "store.sqlite").stat().st_size
        pipeline.compact()
        after = (tmp_path / "s" / "store.sqlite").stat().st_size
        assert after <= before
        assert _canonical(pipeline.run()) == _canonical(baseline)

    @pytest.mark.parametrize("point", ["store.open", "store.compact"])
    def test_compact_faults(self, point, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=RECORDS[:30])
        plan = faults.FaultPlan([faults.FaultSpec(point, hit=1)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                pipeline.compact()

    def test_injection_points_registered(self):
        for point in ("store.open", "store.validate", "store.mutate", "store.compact"):
            assert point in faults.INJECTION_POINTS


class TestServiceDelta:
    def _config(self, tmp_path, **overrides) -> ServiceConfig:
        values = dict(
            k=3,
            m=2,
            max_cluster_size=12,
            shards=3,
            max_records_in_memory=100,
            store_dir=str(tmp_path / "store"),
        )
        values.update(overrides)
        return ServiceConfig(**values)

    def test_delta_requires_store_dir(self, tmp_path):
        with AnonymizationService(ServiceConfig(k=3, m=2, max_cluster_size=12)) as s:
            with pytest.raises(ParameterError, match="store_dir"):
                s.run(RECORDS[:20], mode="delta")

    def test_delete_requires_delta_mode(self):
        with pytest.raises(ParameterError, match='mode="delta"'):
            AnonymizationRequest(RECORDS[:5], mode="batch", delete=RECORDS[:2])

    def test_source_required_outside_delta(self):
        with pytest.raises(ParameterError, match="source is required"):
            AnonymizationRequest(None, mode="batch")

    def test_sync_and_submit_delta(self, tmp_path):
        with AnonymizationService(self._config(tmp_path)) as service:
            first = service.run(RECORDS, mode="delta")
            assert first.mode == "delta"
            job = service.submit(None, mode="delta", delete=RECORDS[:4])
            result = job.result()
        assert _canonical(result.publication) == _canonical(_cold(RECORDS[4:]))

    def test_delta_source_from_file(self, tmp_path):
        path = tmp_path / "append.jsonl"
        write_jsonl(RECORDS[:60], path)
        with AnonymizationService(self._config(tmp_path)) as service:
            result = service.run(str(path), mode="delta")
        assert _canonical(result.publication) == _canonical(_cold(RECORDS[:60]))

    def test_store_dir_in_env_config(self, tmp_path):
        config = ServiceConfig.from_env(
            {"REPRO_SERVICE_STORE_DIR": str(tmp_path / "s"), "REPRO_SERVICE_K": "3"}
        )
        assert config.store_dir == str(tmp_path / "s")
        assert config.to_dict()["store_dir"] == str(tmp_path / "s")
        assert ServiceConfig.from_dict(config.to_dict()).store_dir == config.store_dir


class TestHttpDelta:
    def test_http_delta_flow(self, tmp_path):
        import urllib.error
        import urllib.request

        def post(url, body):
            request = urllib.request.Request(
                url + "/anonymize",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        config = ServiceConfig(
            k=3,
            m=2,
            max_cluster_size=12,
            shards=3,
            max_records_in_memory=100,
            store_dir=str(tmp_path / "store"),
        )
        records = [sorted(r) for r in RECORDS[:80]]
        server = ServiceHTTPServer(AnonymizationService(config), port=0).start()
        try:
            status, body = post(server.url, {"mode": "delta", "records": records})
            assert status == 200 and body["mode"] == "delta"
            # "append" is accepted as an alias for "records".
            status, body = post(
                server.url, {"mode": "delta", "append": [["http-a", "http-b"]]}
            )
            assert status == 200
            status, body = post(
                server.url, {"mode": "delta", "delete": [records[0]]}
            )
            assert status == 200
            expected = _cold(
                RECORDS[1:80] + [frozenset({"http-a", "http-b"})]
            )
            assert (
                json.dumps(body["publication"], sort_keys=True)
                == _canonical(expected)
            )
            # Empty delta: allowed in delta mode, served from the store.
            status, body = post(server.url, {"mode": "delta"})
            assert status == 200 and "no-op" in body["summary"]
            # Conflicting delta: deleting an absent record answers 409.
            status, body = post(
                server.url, {"mode": "delta", "delete": [["absent-record"]]}
            )
            assert status == 409 and body["kind"] == "checkpoint_conflict"
            # Non-delta requests still require records.
            status, body = post(server.url, {"mode": "batch"})
            assert status == 400
        finally:
            server.close()

    def test_store_error_classified_as_conflict(self):
        status, kind, _ = classify_error(StoreError("boom"))
        assert (status, kind) == (409, "checkpoint_conflict")
        status, kind, _ = classify_error(CheckpointError("boom"))
        assert (status, kind) == (409, "checkpoint_conflict")


class TestCliDelta:
    def _write_transactions(self, path, records):
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(" ".join(sorted(record)) + "\n")

    def test_cli_delta_flow(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        write_jsonl(RECORDS[:90], base)
        churn = tmp_path / "churn.jsonl"
        write_jsonl(RECORDS[:5], churn)
        out = tmp_path / "pub.json"
        common = [
            "--k", "3", "--max-cluster-size", "12",
            "--shards", "3", "--max-records-in-memory", "100",
            "--store-dir", str(tmp_path / "store"), "--output", str(out),
        ]
        assert main(["anonymize", str(base), *common]) == 0
        assert main(["anonymize", "--delete", str(churn), *common]) == 0
        published = json.loads(out.read_text())
        assert json.dumps(published, sort_keys=True) == _canonical(
            _cold(RECORDS[5:90])
        )

    def test_cli_append_flag(self, tmp_path):
        extra = tmp_path / "extra.jsonl"
        write_jsonl(RECORDS[:30], extra)
        out = tmp_path / "pub.json"
        common = [
            "--k", "3", "--max-cluster-size", "12",
            "--shards", "3", "--max-records-in-memory", "100",
            "--store-dir", str(tmp_path / "store"), "--output", str(out),
        ]
        assert main(["anonymize", "--append", str(extra), *common]) == 0
        assert json.loads(out.read_text()) == json.loads(
            _canonical(_cold(RECORDS[:30]))
        )

    def test_cli_append_without_store_dir_rejected(self, tmp_path, capsys):
        code = main(
            ["anonymize", "--append", "x.txt", "--output", str(tmp_path / "o.json")]
        )
        assert code == 2
        assert "--store-dir" in capsys.readouterr().err

    def test_cli_input_required_without_store_dir(self, tmp_path, capsys):
        code = main(["anonymize", "--output", str(tmp_path / "o.json")])
        assert code == 2
        assert "input" in capsys.readouterr().err

    def test_cli_store_dir_conflicts_with_resume(self, tmp_path, capsys):
        code = main(
            [
                "anonymize", "in.txt", "--stream", "--resume",
                "--spill-dir", str(tmp_path / "spill"),
                "--store-dir", str(tmp_path / "store"),
                "--output", str(tmp_path / "o.json"),
            ]
        )
        assert code == 2
        assert "incremental" in capsys.readouterr().err

    def test_cli_input_and_append_both_rejected(self, tmp_path, capsys):
        code = main(
            [
                "anonymize", "a.txt", "--append", "b.txt",
                "--store-dir", str(tmp_path / "store"),
                "--output", str(tmp_path / "o.json"),
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err


class TestIdempotencyTokens:
    """Client-supplied delta_ids: at-most-once across request boundaries."""

    def test_cross_delta_retry_not_double_applied(self, tmp_path):
        """A crashed delta's re-run stays idempotent even after other deltas.

        Tokens live in their own table, so delta B committing between
        delta A's crash and its re-run cannot clobber A's token and trick
        the re-run into appending A's records twice.
        """
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        pipeline.run(append=RECORDS[:60], delta_id="delta-a")
        pipeline.run(append=RECORDS[60:90], delta_id="delta-b")
        replay = pipeline.run(append=RECORDS[:60], delta_id="delta-a")
        assert pipeline.last_report.delta_replayed
        assert pipeline.last_report.appended == 0
        assert _canonical(replay) == _canonical(_cold(RECORDS[:90]))

    def test_token_reuse_with_different_contents_refused(self, tmp_path):
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "s"))
        baseline = pipeline.run(append=RECORDS[:30], delta_id="once")
        with pytest.raises(StoreError, match="different contents"):
            pipeline.run(append=RECORDS[30:40], delta_id="once")
        # The refused delta mutated nothing.
        assert _canonical(pipeline.run()) == _canonical(baseline)

    def test_request_delta_id_requires_delta_mode(self):
        with pytest.raises(ParameterError, match="delta_id"):
            AnonymizationRequest(RECORDS[:5], mode="batch", delta_id="x")

    def test_request_delta_id_must_be_nonempty_string(self):
        with pytest.raises(ParameterError, match="non-empty"):
            AnonymizationRequest(RECORDS[:5], mode="delta", delta_id="")

    def test_service_resubmission_with_token_is_idempotent(self, tmp_path):
        config = ServiceConfig(
            k=3,
            m=2,
            max_cluster_size=12,
            shards=3,
            max_records_in_memory=100,
            store_dir=str(tmp_path / "store"),
        )
        with AnonymizationService(config) as service:
            first = service.run(RECORDS[:50], mode="delta", delta_id="day-1")
            again = service.run(RECORDS[:50], mode="delta", delta_id="day-1")
        oracle = _canonical(_cold(RECORDS[:50]))
        assert _canonical(first.publication) == oracle
        assert _canonical(again.publication) == oracle

    def test_http_delta_id_resubmission(self, tmp_path):
        import urllib.error
        import urllib.request

        def post(url, body):
            request = urllib.request.Request(
                url + "/anonymize",
                data=json.dumps(body).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        config = ServiceConfig(
            k=3,
            m=2,
            max_cluster_size=12,
            shards=3,
            max_records_in_memory=100,
            store_dir=str(tmp_path / "store"),
        )
        records = [sorted(r) for r in RECORDS[:60]]
        server = ServiceHTTPServer(AnonymizationService(config), port=0).start()
        try:
            body = {"mode": "delta", "records": records, "delta_id": "retry-1"}
            status, first = post(server.url, body)
            assert status == 200
            status, again = post(server.url, body)
            assert status == 200
            assert again["publication"] == first["publication"]
            # A reused token with different contents is a 409 conflict.
            status, body = post(
                server.url,
                {"mode": "delta", "records": [["new-a"]], "delta_id": "retry-1"},
            )
            assert status == 409 and body["kind"] == "checkpoint_conflict"
            status, body = post(
                server.url, {"mode": "delta", "delta_id": 7}
            )
            assert status == 400
            status, body = post(
                server.url, {"mode": "batch", "records": records, "delta_id": "x"}
            )
            assert status == 400
        finally:
            server.close()
        oracle = _canonical(_cold(RECORDS[:60]))
        assert json.dumps(first["publication"], sort_keys=True) == oracle

    def test_cli_delta_id_rerun_is_idempotent(self, tmp_path):
        base = tmp_path / "base.jsonl"
        write_jsonl(RECORDS[:50], base)
        out = tmp_path / "pub.json"
        argv = [
            "anonymize", str(base),
            "--k", "3", "--max-cluster-size", "12",
            "--shards", "3", "--max-records-in-memory", "100",
            "--store-dir", str(tmp_path / "store"),
            "--delta-id", "nightly-1",
            "--output", str(out),
        ]
        assert main(argv) == 0
        # Simulating crash recovery: the exact re-run must not duplicate.
        assert main(argv) == 0
        assert json.dumps(json.loads(out.read_text()), sort_keys=True) == _canonical(
            _cold(RECORDS[:50])
        )

    def test_cli_delta_id_requires_store_dir(self, tmp_path, capsys):
        code = main(
            [
                "anonymize", "in.txt", "--delta-id", "t",
                "--output", str(tmp_path / "o.json"),
            ]
        )
        assert code == 2
        assert "--store-dir" in capsys.readouterr().err


class TestStoreConcurrency:
    """Runs over one store are serialized by the advisory store lock."""

    def test_exclusive_lock_times_out_then_releases(self, tmp_path):
        holder = ShardStore(tmp_path / "s", exclusive=True)
        try:
            with pytest.raises(StoreError, match="lock"):
                ShardStore(tmp_path / "s", exclusive=True, lock_timeout=0.2)
        finally:
            holder.close()
        # close() released the lock: the next exclusive open succeeds.
        ShardStore(tmp_path / "s", exclusive=True, lock_timeout=0.2).close()

    def test_plain_open_for_inspection_while_locked(self, tmp_path):
        holder = ShardStore(tmp_path / "s", exclusive=True)
        try:
            with ShardStore(tmp_path / "s") as reader:
                assert reader.num_records() == 0
        finally:
            holder.close()

    def test_concurrent_deltas_serialize(self, tmp_path):
        """Two simultaneous delta runs both land, with a consistent store.

        Each thread drives its own IncrementalPipeline against the same
        store_dir (exactly what a --workers 2 service does).  The lock
        forces one full run after the other, so afterwards the store
        holds both appends in some arrival order and an empty reconcile
        publishes bit-for-bit what a cold run over that order would.
        """
        import threading

        stream = _stream(tmp_path / "s")
        errors = []

        def run(chunk):
            try:
                IncrementalPipeline(PARAMS, stream).run(append=chunk)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(RECORDS[:50],)),
            threading.Thread(target=run, args=(RECORDS[50:100],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        with ShardStore(tmp_path / "s") as store:
            texts = [
                row[0]
                for row in store._db.execute(
                    "SELECT record FROM records ORDER BY seq"
                )
            ]
        arrival = [frozenset(json.loads(text)) for text in texts]
        assert len(arrival) == 100
        final = IncrementalPipeline(PARAMS, stream).run()
        assert _canonical(final) == _canonical(_cold(arrival))

    def test_failed_open_leaks_no_file_handles(self, tmp_path):
        import os

        fd_dir = "/proc/self/fd"
        if not os.path.isdir(fd_dir):  # pragma: no cover - non-Linux
            pytest.skip("needs /proc to count open file descriptors")
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "store.sqlite").write_bytes(b"this is not sqlite" * 64)
        with pytest.raises(StoreError):
            ShardStore(tmp_path / "s")
        before = len(os.listdir(fd_dir))
        for _ in range(5):
            with pytest.raises(StoreError):
                ShardStore(tmp_path / "s")
        assert len(os.listdir(fd_dir)) == before

"""Crash/recovery tests for checkpointed sharded runs.

The contract under test: a checkpointed streaming run killed at *any*
injection point can be resumed from the durable manifest in ``spill_dir``
and produce a publication **bit-for-bit identical** to an uninterrupted
run -- completed shards are loaded from their snapshots instead of
re-executed, and incompatible resumes (changed parameters, foreign or
corrupt manifests) are refused with :class:`CheckpointError` instead of
silently splicing mismatched partial results.

Crashes are injected deterministically with :mod:`repro.faults`; the CI
fault matrix re-runs a subset of this file with ``$REPRO_FAULTS`` armed to
prove the env path drives the same harness.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import faults
from repro.core.engine import AnonymizationParams
from repro.core.verification import audit
from repro.exceptions import CheckpointError, FaultInjected, ParameterError
from repro.stream import RunManifest, ShardedPipeline, StreamParams
from tests.conftest import make_workload

PARAMS = AnonymizationParams(k=3, m=2, max_cluster_size=12)

#: (injection point, hit) pairs covering every phase a streaming run can
#: die in: planning, spilling, each window, the checkpoint write itself,
#: the merge, the global repair, and inside the engine mid-window.
CRASH_POINTS = [
    ("stream.plan", 1),
    ("stream.spill", 2),
    ("stream.window", 2),
    ("stream.checkpoint", 1),
    ("stream.merge", 1),
    ("stream.verify", 1),
    ("engine.vertical", 2),
]


def _workloads():
    return {
        "quest": make_workload("quest", records=400, domain=100, avg_len=8.0, seed=11),
        "zipf": make_workload("zipf", records=300, domain=80, avg_len=6.0, seed=11),
        "clickstream": make_workload(
            "clickstream", records=300, domain=60, avg_len=5.0, seed=11
        ),
    }


@pytest.fixture(scope="module")
def workloads():
    """Three paper-shaped workloads, small enough for 20+ crash/resume runs."""
    return _workloads()


def _stream(spill_dir) -> StreamParams:
    return StreamParams(shards=3, max_records_in_memory=100, spill_dir=spill_dir)


def _publish(records, spill_dir, *, resume=False):
    pipeline = ShardedPipeline(PARAMS, _stream(spill_dir))
    published = pipeline.run(iter(records), resume=resume)
    return published, pipeline.last_report


def _canonical(published) -> str:
    return json.dumps(published.to_dict(), sort_keys=True)


class TestCrashResumeIdentity:
    @pytest.mark.parametrize("workload", ["quest", "zipf", "clickstream"])
    def test_resume_after_crash_at_every_point(self, workload, workloads, tmp_path):
        """Kill at each injection point; resume must match the oracle exactly."""
        records = list(workloads[workload])
        oracle, _ = _publish(records, tmp_path / "oracle")
        oracle_json = _canonical(oracle)
        assert audit(oracle, k=PARAMS.k, m=PARAMS.m).ok

        for point, hit in CRASH_POINTS:
            spill_dir = tmp_path / f"crash-{point.replace('.', '-')}"
            plan = faults.FaultPlan([faults.FaultSpec(point, hit=hit)])
            with faults.active(plan):
                with pytest.raises(FaultInjected):
                    _publish(records, spill_dir)
            resumed, report = _publish(records, spill_dir, resume=True)
            assert _canonical(resumed) == oracle_json, (workload, point)
            # A crash before the spill completed leaves nothing trustworthy
            # to adopt, so those resumes deliberately restart from scratch.
            expect_adopted = point not in ("stream.plan", "stream.spill")
            assert report.resumed == expect_adopted, (workload, point)

    def test_resume_skips_completed_shards(self, workloads, tmp_path):
        records = list(workloads["quest"])
        plan = faults.FaultPlan([faults.FaultSpec("stream.merge", hit=1)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                _publish(records, tmp_path)
        _, report = _publish(records, tmp_path, resume=True)
        # every shard finished before the merge crash: none re-runs
        assert report.shards_skipped == 3
        assert report.resumed

    def test_records_free_resume_after_spill_completed(self, workloads, tmp_path):
        """Once spill_complete, a resume needs no access to the input."""
        records = list(workloads["quest"])
        oracle, _ = _publish(records, tmp_path / "oracle")
        spill_dir = tmp_path / "crashed"
        plan = faults.FaultPlan([faults.FaultSpec("stream.window", hit=2)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                _publish(records, spill_dir)
        pipeline = ShardedPipeline(PARAMS, _stream(spill_dir))
        resumed = pipeline.run(resume=True)  # no records at all
        assert _canonical(resumed) == _canonical(oracle)

    def test_interrupted_resume_resumes_again(self, workloads, tmp_path):
        """A crash during the resume itself leaves a resumable checkpoint."""
        records = list(workloads["zipf"])
        oracle, _ = _publish(records, tmp_path / "oracle")
        spill_dir = tmp_path / "crashed"
        with faults.active(
            faults.FaultPlan([faults.FaultSpec("stream.window", hit=1)])
        ):
            with pytest.raises(FaultInjected):
                _publish(records, spill_dir)
        with faults.active(
            faults.FaultPlan([faults.FaultSpec("stream.merge", hit=1)])
        ):
            with pytest.raises(FaultInjected):
                _publish(records, spill_dir, resume=True)
        resumed, _ = _publish(records, spill_dir, resume=True)
        assert _canonical(resumed) == _canonical(oracle)


class TestCheckpointValidation:
    def test_resume_requires_checkpointing(self, workloads):
        pipeline = ShardedPipeline(
            PARAMS, StreamParams(shards=3, max_records_in_memory=100)
        )
        with pytest.raises(ParameterError):
            pipeline.run(iter(workloads["quest"]), resume=True)

    def test_checkpoint_true_requires_spill_dir(self):
        with pytest.raises(ParameterError):
            StreamParams(shards=3, max_records_in_memory=100, checkpoint=True)

    def test_checkpoint_false_disables_manifest(self, workloads, tmp_path):
        pipeline = ShardedPipeline(
            PARAMS,
            StreamParams(
                shards=3,
                max_records_in_memory=100,
                spill_dir=tmp_path,
                checkpoint=False,
            ),
        )
        pipeline.run(iter(workloads["quest"]))
        assert not RunManifest.path(tmp_path).exists()

    def test_resume_from_empty_dir(self, workloads, tmp_path):
        """No manifest: with records the resume degrades to a fresh run
        (same as crashing before the first checkpoint); without records
        there is nothing to run at all, which must be an error."""
        published, report = _publish(list(workloads["quest"]), tmp_path, resume=True)
        assert not report.resumed
        assert audit(published, k=PARAMS.k, m=PARAMS.m).ok
        pipeline = ShardedPipeline(PARAMS, _stream(tmp_path / "empty"))
        with pytest.raises(CheckpointError):
            pipeline.run(resume=True)  # records-free resume needs a manifest

    def test_resume_with_changed_params_fails(self, workloads, tmp_path):
        records = list(workloads["quest"])
        with faults.active(
            faults.FaultPlan([faults.FaultSpec("stream.merge", hit=1)])
        ):
            with pytest.raises(FaultInjected):
                _publish(records, tmp_path)
        pipeline = ShardedPipeline(
            AnonymizationParams(k=4, m=2, max_cluster_size=12), _stream(tmp_path)
        )
        with pytest.raises(CheckpointError):
            pipeline.run(iter(records), resume=True)

    def test_resume_over_corrupt_manifest_fails(self, workloads, tmp_path):
        records = list(workloads["quest"])
        with faults.active(
            faults.FaultPlan([faults.FaultSpec("stream.merge", hit=1)])
        ):
            with pytest.raises(FaultInjected):
                _publish(records, tmp_path)
        RunManifest.path(tmp_path).write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError):
            _publish(records, tmp_path, resume=True)

    def test_fresh_run_invalidates_previous_manifest(self, workloads, tmp_path):
        """A non-resume run must never leave a stale manifest resumable."""
        records = list(workloads["quest"])
        _publish(records, tmp_path)  # leaves a completed manifest
        plan = faults.FaultPlan([faults.FaultSpec("stream.spill", hit=1)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                _publish(records, tmp_path)  # fresh run dies mid-spill
        manifest = RunManifest.load(tmp_path)
        assert manifest is None  # the old manifest is gone, not resurrected


class TestEnvDrivenFaults:
    """The CI fault matrix path: ``$REPRO_FAULTS`` arms the same harness."""

    @pytest.mark.skipif(
        not os.environ.get(faults.ENV_VAR),
        reason="set REPRO_FAULTS=point:N to run the env-armed crash matrix",
    )
    def test_env_armed_crash_then_resume(self, tmp_path):
        records = list(
            make_workload("quest", records=400, domain=100, avg_len=8.0, seed=11)
        )
        # Fresh counters, and the plan armed at import is disarmed so the
        # oracle and resume runs are not themselves crashed.
        plan = faults.plan_from_env()
        assert plan is not None
        previous = faults.active_plan()
        faults.clear()
        try:
            oracle, _ = _publish(records, tmp_path / "oracle")
            spill_dir = tmp_path / "crashed"
            with faults.active(plan):
                with pytest.raises(FaultInjected):
                    _publish(records, spill_dir)
            resumed, _ = _publish(records, spill_dir, resume=True)
            assert _canonical(resumed) == _canonical(oracle)
        finally:
            faults.install(previous)

"""Tests for the sharded streaming subsystem (``repro.stream``).

The headline guarantee: a sharded streaming run on any input produces a
publication that passes the same independent k^m-anonymity audit as a
single-pass run, while never holding more than ``max_records_in_memory``
records resident -- and does so deterministically.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.engine import AnonymizationParams, Disassociator
from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
)
from repro.core.verification import audit
from repro.datasets.io import write_jsonl, write_transactions
from repro.datasets.quest import generate_quest
from repro.exceptions import ParameterError
from repro.experiments.harness import TEST_CONFIG, disassociate
from repro.stream import (
    HashShardPlanner,
    HorpartShardPlanner,
    ShardedPipeline,
    StreamParams,
    anonymize_stream,
    build_planner,
    record_fingerprint,
    relabel_cluster,
    verify_and_repair,
)


@pytest.fixture(scope="module")
def quest():
    """Small QUEST dataset: large enough for several shards and windows."""
    return generate_quest(
        num_transactions=600, domain_size=150, avg_transaction_size=8.0, seed=5
    )


PARAMS = AnonymizationParams(k=3, m=2, max_cluster_size=12, verify=False)
STREAM = StreamParams(shards=4, max_records_in_memory=100)


class TestPlanners:
    def test_fingerprint_is_content_based(self):
        assert record_fingerprint({"b", "a"}) == record_fingerprint(["a", "b"])
        assert record_fingerprint({"a"}) != record_fingerprint({"b"})

    def test_hash_planner_partitions_and_balances(self, quest):
        planner = HashShardPlanner(4)
        counts = [0] * 4
        for record in quest:
            shard = planner.shard_of(record)
            assert 0 <= shard < 4
            counts[shard] += 1
        assert all(count > len(quest) / 16 for count in counts)

    def test_horpart_planner_groups_split_term_neighbours(self, quest):
        planner = HorpartShardPlanner.from_sample(4, quest)
        assert planner.split_terms
        # Records with identical membership over the split terms (and at
        # least one split term) must co-locate.
        by_mask = {}
        for record in quest:
            mask = tuple(t in record for t in planner.split_terms)
            if any(mask):
                by_mask.setdefault(mask, set()).add(planner.shard_of(record))
        assert all(len(shards) == 1 for shards in by_mask.values())

    def test_horpart_routing_is_container_independent(self):
        planner = HorpartShardPlanner(4, ["1", "9"])
        routes = {
            planner.shard_of([1, 2]),
            planner.shard_of({1, 2}),
            planner.shard_of(frozenset({"1", "2"})),
            planner.shard_of(("1", "2")),
        }
        assert len(routes) == 1

    def test_planners_are_deterministic(self, quest):
        a = build_planner("horpart", 4, quest)
        b = build_planner("horpart", 4, quest)
        assert a.describe() == b.describe()
        assert [a.shard_of(r) for r in quest] == [b.shard_of(r) for r in quest]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError, match="unknown shard strategy"):
            build_planner("round-robin", 4)


class TestStreamParams:
    def test_validation(self):
        with pytest.raises(ParameterError):
            StreamParams(shards=0)
        with pytest.raises(ParameterError):
            StreamParams(max_records_in_memory=1)
        with pytest.raises(ParameterError):
            StreamParams(strategy="nope")

    def test_memory_bound_must_fit_a_cluster(self):
        with pytest.raises(ParameterError, match="max_records_in_memory"):
            ShardedPipeline(
                AnonymizationParams(max_cluster_size=50),
                StreamParams(max_records_in_memory=10),
            )


class TestShardedPipeline:
    @pytest.mark.parametrize("strategy", ["hash", "horpart"])
    def test_sharded_run_passes_global_audit(self, quest, strategy):
        pipeline = ShardedPipeline(
            PARAMS, StreamParams(shards=4, max_records_in_memory=100, strategy=strategy)
        )
        published = pipeline.anonymize(quest)
        assert audit(published, k=3, m=2).ok
        assert published.k == 3 and published.m == 2
        assert published.total_records() == len(quest)

    def test_memory_bound_is_respected_and_reported(self, quest):
        pipeline = ShardedPipeline(PARAMS, STREAM)
        pipeline.anonymize(quest)
        report = pipeline.last_report
        assert 0 < report.peak_resident_records <= 100
        assert report.num_records == len(quest)
        assert sum(report.shard_records) == len(quest)
        # the bound forces several windows per shard on 600 records
        assert sum(report.shard_windows) >= 4
        assert report.total_seconds > 0

    def test_sharded_run_is_deterministic(self, quest):
        first = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        second = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        assert first.to_dict() == second.to_dict()

    def test_published_clusters_hold_no_private_records(self, quest):
        published = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        assert all(
            leaf.original_records is None for leaf in published.simple_clusters()
        )

    def test_cluster_labels_are_globally_unique(self, quest):
        published = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        labels = [leaf.label for leaf in published.simple_clusters()]
        assert len(labels) == len(set(labels))
        assert all(label.startswith("S") for label in labels)

    def test_streaming_a_file_matches_streaming_memory(self, quest, tmp_path):
        path = tmp_path / "quest.jsonl"
        write_jsonl(quest, path)
        from_file = ShardedPipeline(PARAMS, STREAM).anonymize_file(path)
        in_memory = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        assert from_file.to_dict() == in_memory.to_dict()

    def test_spill_dir_is_kept_when_explicit(self, quest, tmp_path):
        spill = tmp_path / "spill"
        pipeline = ShardedPipeline(
            PARAMS, StreamParams(shards=2, max_records_in_memory=100, spill_dir=spill)
        )
        pipeline.anonymize(quest)
        files = sorted(spill.glob("shard-*.jsonl"))
        assert len(files) == 2
        # spilled records together are exactly the input (as a bag)
        from repro.datasets.io import iter_jsonl

        spilled = sorted(sorted(r) for f in files for r in iter_jsonl(f))
        assert spilled == sorted(sorted(r) for r in quest)

    def test_empty_stream_publishes_empty_dataset(self):
        published = ShardedPipeline(PARAMS, STREAM).run(iter(()))
        assert len(published.clusters) == 0
        assert audit(published, k=3, m=2).ok

    def test_single_shard_single_window_matches_single_pass_clusters(self, quest):
        # With one shard and a window covering everything, the streaming
        # path degenerates to the single-pass engine (modulo labels).
        pipeline = ShardedPipeline(
            PARAMS, StreamParams(shards=1, max_records_in_memory=1000)
        )
        sharded = pipeline.anonymize(quest)
        single = Disassociator(PARAMS).anonymize(quest)
        stripped = [relabel_cluster(c, "S0W0.") for c in single.clusters]
        assert DisassociatedDataset(stripped, k=3, m=2).to_dict() == sharded.to_dict()

    def test_engine_module_re_exports_sharded_pipeline(self):
        from repro.core import engine

        assert engine.ShardedPipeline is ShardedPipeline
        assert engine.StreamParams is StreamParams
        with pytest.raises(AttributeError):
            engine.NoSuchThing

    def test_anonymize_stream_function(self, quest, tmp_path):
        path = tmp_path / "quest.jsonl"
        write_jsonl(quest, path)
        published = anonymize_stream(
            path, k=3, m=2, shards=3, max_records_in_memory=100, max_cluster_size=12
        )
        assert audit(published, k=3, m=2).ok


class TestRelabel:
    def test_relabel_rewrites_contribution_keys(self):
        leaf_a = SimpleCluster(2, [], TermChunk({"x"}), label="P0")
        leaf_b = SimpleCluster(2, [], TermChunk({"y"}), label="P1")
        joint = JointCluster(
            [leaf_a, leaf_b],
            [SharedChunk({"s"}, [{"s"}, {"s"}], {"P0": 1, "P1": 1})],
            label="J[P0+P1]",
        )
        relabeled = relabel_cluster(joint, "S2W1.")
        assert relabeled.label == "S2W1.J[P0+P1]"
        assert [c.label for c in relabeled.children] == ["S2W1.P0", "S2W1.P1"]
        assert relabeled.shared_chunks[0].contributions == {"S2W1.P0": 1, "S2W1.P1": 1}


class TestBoundaryRepair:
    def test_clean_dataset_untouched(self, quest):
        published = ShardedPipeline(PARAMS, STREAM).anonymize(quest)
        repaired, summary = verify_and_repair(published)
        assert summary.clean
        assert repaired.to_dict() == published.to_dict()

    def test_violating_chunk_is_repaired_by_demotion(self):
        # 'b' appears once in a k=3 chunk: a boundary-style violation.
        records = [frozenset({"a", "b"}), frozenset({"a"}), frozenset({"a"})]
        bad = DisassociatedDataset(
            [
                SimpleCluster(
                    3,
                    [RecordChunk({"a", "b"}, records)],
                    TermChunk(),
                    label="X",
                    original_records=records,
                )
            ],
            k=3,
            m=2,
        )
        assert not audit(bad).ok
        fixed, summary = verify_and_repair(bad)
        assert audit(fixed).ok
        assert not summary.clean
        assert "b" in summary.demoted_terms["X"]
        # the demoted term is still published as present
        (cluster,) = fixed.clusters
        assert "b" in cluster.term_chunk
        # 'a' (support 3) stays in a record chunk
        assert "a" in cluster.record_chunk_terms()


    def test_shared_chunk_demotion_keeps_contributions_aligned(self):
        from repro.stream.boundary import _shrink_shared_chunk

        # P0 contributed {a,b} and {b}; P1 contributed {a}.  Demoting 'a'
        # empties P1's only projection: its contribution must disappear so
        # sum(contributions) still equals len(subrecords) (reconstruction
        # relies on that invariant to slice per contributing cluster).
        chunk = SharedChunk(
            {"a", "b"},
            [{"a", "b"}, {"b"}, {"a"}],
            {"P0": 2, "P1": 1},
        )
        shrunk = _shrink_shared_chunk(chunk, frozenset({"b"}))
        assert shrunk.subrecords == [frozenset({"b"}), frozenset({"b"})]
        assert shrunk.contributions == {"P0": 2}
        assert sum(shrunk.contributions.values()) == len(shrunk.subrecords)


class TestHarnessIntegration:
    def test_disassociate_routes_through_stream(self, quest):
        config = TEST_CONFIG.with_overrides(
            stream=True, shards=3, max_records_in_memory=100, k=3
        )
        reports = []
        published, seconds = disassociate(quest, config, report_sink=reports)
        assert audit(published, k=3, m=2).ok
        assert seconds > 0
        (report,) = reports
        assert report.peak_resident_records <= 100


class TestStreamCli:
    def test_stream_flags(self, quest, tmp_path, capsys):
        data = tmp_path / "quest.txt"
        write_transactions(quest, data)
        out = tmp_path / "published.json"
        code = main(
            [
                "anonymize",
                str(data),
                "--output",
                str(out),
                "--stream",
                "--shards",
                "3",
                "--max-records-in-memory",
                "120",
                "--shard-strategy",
                "horpart",
                "--k",
                "3",
                "--max-cluster-size",
                "12",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "sharded run" in captured and "3 shard(s)" in captured
        assert main(["audit", str(out)]) == 0

    def test_jsonl_input_without_stream(self, quest, tmp_path):
        data = tmp_path / "quest.jsonl"
        write_jsonl(quest, data)
        out = tmp_path / "published.json"
        assert main(["anonymize", str(data), "--output", str(out), "--k", "3",
                     "--max-cluster-size", "12"]) == 0
        assert main(["audit", str(out)]) == 0

"""Unit tests for reconstruction (repro.core.reconstruct)."""

from __future__ import annotations

import pytest

from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
)
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.exceptions import ReconstructionError


class TestReconstructSimpleClusters:
    @pytest.fixture
    def published(self) -> DisassociatedDataset:
        chunk1 = RecordChunk({"a", "b"}, [{"a", "b"}, {"a"}, {"a", "b"}])
        chunk2 = RecordChunk({"c"}, [{"c"}, {"c"}])
        cluster = SimpleCluster(4, [chunk1, chunk2], TermChunk({"z"}), label="P0")
        return DisassociatedDataset([cluster], k=2, m=2)

    def test_record_count_matches_cluster_size(self, published):
        world = reconstruct(published, seed=0)
        assert len(world) == 4

    def test_no_empty_records(self, published):
        world = reconstruct(published, seed=0)
        assert all(len(record) > 0 for record in world)

    def test_all_subrecords_are_placed(self, published):
        world = reconstruct(published, seed=1)
        # supports of record-chunk terms are preserved exactly
        supports = world.term_supports()
        assert supports["a"] == 3
        assert supports["b"] == 2
        assert supports["c"] == 2

    def test_term_chunk_terms_appear_at_least_once(self, published):
        world = reconstruct(published, seed=2)
        assert world.support({"z"}) >= 1

    def test_reconstruction_is_deterministic_given_seed(self, published):
        assert reconstruct(published, seed=7) == reconstruct(published, seed=7)

    def test_different_seeds_can_differ(self, published):
        worlds = {tuple(sorted(map(tuple, map(sorted, reconstruct(published, seed=s)))))
                  for s in range(10)}
        assert len(worlds) > 1

    def test_reconstruct_many_returns_independent_worlds(self, published):
        worlds = Reconstructor(published, seed=0).reconstruct_many(3)
        assert len(worlds) == 3
        assert all(len(world) == 4 for world in worlds)

    def test_oversized_chunk_raises(self):
        chunk = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        cluster = SimpleCluster(2, [chunk], TermChunk(), label="broken")
        published = DisassociatedDataset([cluster], k=2, m=2)
        with pytest.raises(ReconstructionError):
            reconstruct(published, seed=0)


class TestReconstructJointClusters:
    @pytest.fixture
    def published(self) -> DisassociatedDataset:
        left_chunk = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        left = SimpleCluster(3, [left_chunk], TermChunk({"v"}), label="L")
        right_chunk = RecordChunk({"b"}, [{"b"}, {"b"}, {"b"}])
        right = SimpleCluster(3, [right_chunk], TermChunk(), label="R")
        shared = SharedChunk({"s"}, [{"s"}, {"s"}, {"s"}], contributions={"L": 2, "R": 1})
        joint = JointCluster([left, right], [shared], label="J")
        return DisassociatedDataset([joint], k=3, m=2)

    def test_total_record_count(self, published):
        world = reconstruct(published, seed=0)
        assert len(world) == 6

    def test_shared_terms_are_placed(self, published):
        world = reconstruct(published, seed=0)
        assert world.term_supports()["s"] == 3

    def test_record_chunk_supports_preserved(self, published):
        world = reconstruct(published, seed=3)
        supports = world.term_supports()
        assert supports["a"] == 3
        assert supports["b"] == 3

    def test_shared_subrecords_respect_contributions(self, published):
        # term "s" was contributed twice by L (whose records all contain "a")
        # and once by R (records contain "b"); with contributions honored,
        # the reconstruction places at most 2 copies of "s" on "a"-records.
        for seed in range(5):
            world = reconstruct(published, seed=seed)
            with_a = sum(1 for record in world if "s" in record and "a" in record)
            with_b = sum(1 for record in world if "s" in record and "b" in record)
            assert with_a <= 2
            assert with_b <= 1 + 0  # R contributed exactly one sub-record

    def test_averaged_supports(self, published):
        averaged = Reconstructor(published, seed=0).averaged_supports([{"a"}, {"s"}], count=4)
        assert averaged[frozenset({"a"})] == pytest.approx(3.0)
        assert averaged[frozenset({"s"})] == pytest.approx(3.0)


class TestPipelineReconstruction:
    def test_paper_pipeline_record_count(self, paper_dataset, paper_published):
        world = reconstruct(paper_published, seed=0)
        assert len(world) == len(paper_dataset)

    def test_paper_pipeline_no_new_terms(self, paper_dataset, paper_published):
        world = reconstruct(paper_published, seed=0)
        assert world.domain <= paper_dataset.domain

    def test_record_chunk_term_supports_are_preserved(self, skewed_dataset, skewed_published):
        world = reconstruct(skewed_published, seed=5)
        world_supports = world.term_supports()
        original_supports = skewed_dataset.term_supports()
        for term in skewed_published.record_chunk_terms():
            # every sub-record containing the term is placed exactly once, so
            # the reconstructed support can never exceed the original
            assert world_supports[term] <= original_supports[term]
            assert world_supports[term] >= 1

    def test_reconstruction_of_deserialized_publication(self, paper_published):
        rebuilt = DisassociatedDataset.from_dict(paper_published.to_dict())
        world = reconstruct(rebuilt, seed=0)
        assert len(world) == 10

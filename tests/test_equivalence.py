"""Equivalence suite: the encoded execution core vs the string reference.

The interned/bitset fast paths (``backend="encoded"``, with and without the
parallel VERPART fan-out) must produce *identical* published datasets to
the pre-refactor string pipeline (``backend="string"``), for every phase
individually and end to end.  These tests are the contract that lets every
future performance PR swap internals without moving the output.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator, anonymize
from repro.core.horizontal import horizontal_partition, horizontal_partition_indices
from repro.core.refine import refine
from repro.core.verification import verify_km_anonymity
from repro.core.vertical import vertical_partition, vertical_partition_fast
from repro.core.vocab import EncodedDataset
from tests.conftest import PAPER_RECORDS


def make_seeded_dataset(seed: int, num_records: int = 400) -> TransactionDataset:
    """Zipf-ish random dataset; duplicates and shared prefixes are common."""
    rng = random.Random(seed)
    vocabulary = [f"t{i}" for i in range(120)]
    weights = [1.0 / (i + 1) for i in range(120)]
    records = []
    for _ in range(num_records):
        length = rng.randint(1, 8)
        record = set()
        while len(record) < length:
            record.add(rng.choices(vocabulary, weights=weights, k=1)[0])
        records.append(record)
    return TransactionDataset(records)


class TestPhaseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_horizontal_partition_matches(self, seed):
        dataset = make_seeded_dataset(seed)
        reference = horizontal_partition(dataset, 25)
        encoded = EncodedDataset.from_dataset(dataset)
        index_parts = horizontal_partition_indices(encoded, 25)
        records = list(dataset)
        assert len(reference) == len(index_parts)
        for ref_part, idx_part in zip(reference, index_parts):
            assert list(ref_part) == [records[i] for i in idx_part]

    @pytest.mark.parametrize("seed,k,m", [(0, 3, 2), (1, 5, 2), (2, 2, 3), (3, 4, 1)])
    def test_vertical_partition_matches(self, seed, k, m):
        dataset = make_seeded_dataset(seed, num_records=150)
        for index, part in enumerate(horizontal_partition(dataset, 20)):
            reference = vertical_partition(part, k, m, label=f"P{index}")
            fast = vertical_partition_fast(list(part), k, m, label=f"P{index}")
            assert reference.cluster.to_dict() == fast.cluster.to_dict()
            assert reference.demoted_terms == fast.demoted_terms

    @pytest.mark.parametrize("seed", [0, 4])
    def test_refine_matches(self, seed):
        dataset = make_seeded_dataset(seed)

        def clusters():
            return [
                vertical_partition(part, 3, 2, label=f"P{i}").cluster
                for i, part in enumerate(horizontal_partition(dataset, 20))
            ]

        reference = refine(clusters(), 3, 2, use_bitsets=False)
        fast = refine(clusters(), 3, 2, use_bitsets=True)
        assert [c.to_dict() for c in reference] == [c.to_dict() for c in fast]


class TestPipelineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_backends_publish_identical_datasets(self, seed):
        dataset = make_seeded_dataset(seed)
        string_pub = anonymize(dataset, k=4, m=2, max_cluster_size=25, backend="string")
        encoded_pub = anonymize(dataset, k=4, m=2, max_cluster_size=25, backend="encoded")
        assert string_pub.to_dict() == encoded_pub.to_dict()
        verify_km_anonymity(encoded_pub)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_jobs_fanout_is_deterministic(self, jobs):
        dataset = make_seeded_dataset(7, num_records=500)
        serial = anonymize(dataset, backend="string", verify=False)
        parallel = anonymize(dataset, backend="encoded", jobs=jobs, verify=False)
        assert serial.to_dict() == parallel.to_dict()
        verify_km_anonymity(parallel)

    def test_paper_dataset_equivalence_with_sensitive_terms(self):
        dataset = TransactionDataset(PAPER_RECORDS)
        kwargs = dict(k=3, m=2, max_cluster_size=6, sensitive_terms={"viagra"})
        string_pub = anonymize(dataset, backend="string", **kwargs)
        encoded_pub = anonymize(dataset, backend="encoded", **kwargs)
        assert string_pub.to_dict() == encoded_pub.to_dict()

    def test_default_backend_is_encoded(self):
        assert AnonymizationParams().backend == "encoded"

    def test_reports_agree_on_structure(self):
        dataset = make_seeded_dataset(9)
        string_engine = Disassociator(AnonymizationParams(backend="string", verify=False))
        encoded_engine = Disassociator(AnonymizationParams(backend="encoded", verify=False))
        string_engine.anonymize(dataset)
        encoded_engine.anonymize(dataset)
        fields = (
            "num_records",
            "num_clusters",
            "num_joint_clusters",
            "num_record_chunks",
            "num_shared_chunks",
            "term_chunk_terms",
        )
        for field in fields:
            assert getattr(string_engine.last_report, field) == getattr(
                encoded_engine.last_report, field
            ), field

"""Unit tests for VERPART and the Lemma-2 enforcement (repro.core.vertical)."""

from __future__ import annotations

import pytest

from repro.core.anonymity import is_km_anonymous
from repro.core.dataset import TransactionDataset
from repro.core.vertical import (
    _MaskCoverage,
    _RecordCoverage,
    demote_for_lemma2,
    satisfies_lemma2,
    subrecord_bound,
    vertical_partition,
    vertical_partition_fast,
)
from repro.core.vocab import EncodedCluster
from repro.exceptions import ParameterError


@pytest.fixture
def p1_records() -> TransactionDataset:
    """Cluster P1 of the paper (records r1-r5)."""
    return TransactionDataset(
        [
            {"itunes", "flu", "madonna", "ikea", "ruby"},
            {"madonna", "flu", "viagra", "ruby", "audi a4", "sony tv"},
            {"itunes", "madonna", "audi a4", "ikea", "sony tv"},
            {"itunes", "flu", "viagra"},
            {"itunes", "flu", "madonna", "audi a4", "sony tv"},
        ]
    )


class TestVerticalPartition:
    def test_rare_terms_go_to_term_chunk(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        term_chunk = result.cluster.term_chunk.terms
        # ikea, viagra and ruby have support 2 < 3 in P1 (paper, Figure 2b)
        assert {"ikea", "viagra", "ruby"} <= term_chunk

    def test_frequent_terms_form_km_anonymous_chunks(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        for chunk in result.cluster.record_chunks:
            assert is_km_anonymous(chunk.subrecords, k=3, m=2)

    def test_paper_p1_chunk_domains(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        domains = {frozenset(chunk.domain) for chunk in result.cluster.record_chunks}
        assert frozenset({"itunes", "flu", "madonna"}) in domains
        assert frozenset({"audi a4", "sony tv"}) in domains

    def test_cluster_size_is_published(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        assert result.cluster.size == 5

    def test_chunk_domains_are_disjoint(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        seen: set = set()
        for chunk in result.cluster.record_chunks:
            assert not (chunk.domain & seen)
            seen.update(chunk.domain)
        assert not (seen & result.cluster.term_chunk.terms)

    def test_domains_are_jointly_exhaustive(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        covered = set(result.cluster.term_chunk.terms)
        for chunk in result.cluster.record_chunks:
            covered.update(chunk.domain)
        assert covered == set(p1_records.domain)

    def test_original_records_attached_for_refinement(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        originals = result.cluster.original_records
        assert originals is not None
        assert sorted(map(sorted, originals)) == sorted(map(sorted, p1_records))

    def test_k_larger_than_cluster_puts_everything_in_term_chunk(self, p1_records):
        result = vertical_partition(p1_records, k=10, m=2)
        assert not result.cluster.record_chunks
        assert result.cluster.term_chunk.terms == frozenset(p1_records.domain)

    def test_k_equals_one_keeps_all_terms_in_record_chunks(self, p1_records):
        result = vertical_partition(p1_records, k=1, m=2)
        assert result.cluster.term_chunk.terms == frozenset()

    def test_invalid_parameters_rejected(self, p1_records):
        with pytest.raises(ParameterError):
            vertical_partition(p1_records, k=0, m=2)

    def test_label_is_propagated(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2, label="cluster-7")
        assert result.cluster.label == "cluster-7"

    def test_m_of_three_still_produces_anonymous_chunks(self, p1_records):
        result = vertical_partition(p1_records, k=2, m=3)
        for chunk in result.cluster.record_chunks:
            assert is_km_anonymous(chunk.subrecords, k=2, m=3)

    def test_all_identical_records_single_chunk(self):
        records = TransactionDataset([{"x", "y", "z"}] * 6)
        result = vertical_partition(records, k=3, m=2)
        assert len(result.cluster.record_chunks) == 1
        assert result.cluster.record_chunks[0].domain == frozenset({"x", "y", "z"})


class TestLemma2:
    def test_subrecord_bound_formula(self):
        # size + k * (min(m, v) - 1)
        assert subrecord_bound(size=5, k=3, m=2, num_chunks=2) == 5 + 3
        assert subrecord_bound(size=5, k=3, m=2, num_chunks=1) == 5
        assert subrecord_bound(size=5, k=3, m=4, num_chunks=3) == 5 + 3 * 2
        assert subrecord_bound(size=5, k=3, m=2, num_chunks=0) == 0

    def test_example1_without_enforcement_violates_lemma2(self, example1_cluster):
        result = vertical_partition(example1_cluster, k=3, m=2, enforce_lemma2=False)
        cluster = result.cluster
        # chunks {a} and {b,c} are each 3^2-anonymous, but only 3+3=6 < 5+3
        # sub-records exist and the term chunk is empty: Example 1 of the paper
        if len(cluster.record_chunks) >= 2 and len(cluster.term_chunk) == 0:
            assert not satisfies_lemma2(cluster, k=3, m=2)

    def test_example1_with_enforcement_satisfies_lemma2(self, example1_cluster):
        result = vertical_partition(example1_cluster, k=3, m=2)
        assert satisfies_lemma2(result.cluster, k=3, m=2)

    def test_enforcement_demotes_terms_to_term_chunk(self, example1_cluster):
        result = vertical_partition(example1_cluster, k=3, m=2)
        # enforcing Lemma 2 on Example 1 requires a non-empty term chunk
        assert len(result.cluster.term_chunk) > 0
        assert result.demoted_terms <= frozenset({"a", "b", "c"})

    def test_non_empty_term_chunk_always_satisfies_lemma2(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        assert len(result.cluster.term_chunk) > 0
        assert satisfies_lemma2(result.cluster, k=3, m=2)

    def test_demoted_terms_empty_when_bound_already_met(self, p1_records):
        result = vertical_partition(p1_records, k=3, m=2)
        assert result.demoted_terms == frozenset()

    def test_single_chunk_cluster_satisfies_lemma2(self):
        records = TransactionDataset([{"x", "y"}] * 4)
        result = vertical_partition(records, k=2, m=2)
        assert satisfies_lemma2(result.cluster, k=2, m=2)


class TestIncrementalDemotion:
    """The Lemma-2 demotion loop over incremental coverage trackers."""

    RECORDS = [
        frozenset({"x"}),
        frozenset({"x"}),
        frozenset({"x"}),
        frozenset({"y"}),
        frozenset({"y"}),
        frozenset({"y"}),
    ]
    DOMAINS = [frozenset({"x"}), frozenset({"y"})]
    SUPPORTS = {"x": 3, "y": 3}

    def test_default_mode_stops_after_first_demotion(self):
        coverage = _RecordCoverage(self.RECORDS, self.DOMAINS)
        demoted = demote_for_lemma2(coverage, self.SUPPORTS, k=3, m=2, size=6)
        # one demoted term repopulates the term chunk, which satisfies Lemma 2
        assert demoted == {"x"}
        assert coverage.domains_frozen() == [frozenset({"y"})]

    def test_until_bound_performs_multiple_consecutive_demotions(self):
        # bound = 6 + 3 = 9 > 6 sub-records, and after demoting "x" the
        # single remaining chunk still publishes 3 < 6 sub-records: the
        # loop must demote "x" and then "y" in two consecutive steps.
        coverage = _RecordCoverage(self.RECORDS, self.DOMAINS)
        demoted = demote_for_lemma2(
            coverage, self.SUPPORTS, k=3, m=2, size=6, until_bound=True
        )
        assert demoted == {"x", "y"}
        assert coverage.domains_frozen() == []

    def test_mask_coverage_matches_record_coverage(self):
        cluster = EncodedCluster(self.RECORDS)
        for until_bound in (False, True):
            record_cov = _RecordCoverage(self.RECORDS, self.DOMAINS)
            mask_cov = _MaskCoverage(cluster.masks, self.DOMAINS)
            demoted_rec = demote_for_lemma2(
                record_cov, self.SUPPORTS, k=3, m=2, size=6, until_bound=until_bound
            )
            demoted_mask = demote_for_lemma2(
                mask_cov, self.SUPPORTS, k=3, m=2, size=6, until_bound=until_bound
            )
            assert demoted_rec == demoted_mask
            assert record_cov.domains_frozen() == mask_cov.domains_frozen()

    def test_coverage_totals_track_incremental_updates(self):
        records = [frozenset({"a", "b"}), frozenset({"a"}), frozenset({"c"})]
        domains = [frozenset({"a", "b"}), frozenset({"c"})]
        coverage = _RecordCoverage(records, domains)
        assert coverage.total() == 3
        coverage.remove_term("a")
        assert coverage.total() == 2  # {b} covers one record, {c} one
        coverage.remove_term("b")
        assert coverage.total() == 1
        assert coverage.num_domains() == 1

    def test_fast_path_demotes_same_terms_as_reference(self, example1_cluster):
        reference = vertical_partition(example1_cluster, k=3, m=2)
        fast = vertical_partition_fast(list(example1_cluster), k=3, m=2)
        assert reference.demoted_terms == fast.demoted_terms
        assert reference.cluster.to_dict() == fast.cluster.to_dict()

"""Unit tests for the Apriori miner (repro.mining.apriori)."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError
from repro.mining.apriori import mine_frequent_itemsets, mine_top_k
from repro.mining.itemsets import itemset_supports


class TestMineFrequentItemsets:
    def test_singletons_above_threshold(self, tiny_dataset):
        frequent = mine_frequent_itemsets(tiny_dataset, min_support=3)
        assert frequent[("a",)] == 5
        assert frequent[("c",)] == 3
        assert ("d",) not in frequent

    def test_pairs_above_threshold(self, tiny_dataset):
        frequent = mine_frequent_itemsets(tiny_dataset, min_support=3)
        assert frequent[("a", "b")] == 4
        assert ("a", "c") not in frequent  # support 2

    def test_matches_exhaustive_enumeration(self, paper_dataset):
        frequent = mine_frequent_itemsets(paper_dataset, min_support=3)
        exhaustive = {
            itemset: support
            for itemset, support in itemset_supports(paper_dataset, max_size=6).items()
            if support >= 3
        }
        assert frequent == exhaustive

    def test_max_size_caps_result(self, paper_dataset):
        frequent = mine_frequent_itemsets(paper_dataset, min_support=2, max_size=2)
        assert all(len(itemset) <= 2 for itemset in frequent)

    def test_min_support_one_returns_everything_present(self, tiny_dataset):
        frequent = mine_frequent_itemsets(tiny_dataset, min_support=1, max_size=2)
        assert ("d",) in frequent
        assert ("a", "d") in frequent

    def test_empty_dataset(self):
        assert mine_frequent_itemsets(TransactionDataset([]), min_support=1) == {}

    def test_invalid_min_support_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            mine_frequent_itemsets(tiny_dataset, min_support=0)

    def test_invalid_max_size_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            mine_frequent_itemsets(tiny_dataset, min_support=1, max_size=0)

    def test_apriori_property_holds(self, skewed_dataset):
        """Every subset of a frequent itemset must itself be frequent."""
        from itertools import combinations

        frequent = mine_frequent_itemsets(skewed_dataset, min_support=5, max_size=3)
        for itemset in frequent:
            for size in range(1, len(itemset)):
                for subset in combinations(itemset, size):
                    assert subset in frequent


class TestMineTopK:
    def test_returns_k_results_when_available(self, paper_dataset):
        top = mine_top_k(paper_dataset, top_k=10, max_size=2)
        assert len(top) == 10

    def test_ordering_is_deterministic_and_descending(self, skewed_dataset):
        top = mine_top_k(skewed_dataset, top_k=20, max_size=2)
        supports = [support for _itemset, support in top]
        assert supports == sorted(supports, reverse=True)
        assert top == mine_top_k(skewed_dataset, top_k=20, max_size=2)

    def test_agrees_with_exhaustive_top_k(self, paper_dataset):
        from repro.mining.itemsets import top_k_itemsets

        assert mine_top_k(paper_dataset, top_k=15, max_size=2) == top_k_itemsets(
            paper_dataset, top_k=15, max_size=2
        )

    def test_empty_dataset_returns_empty_list(self):
        assert mine_top_k(TransactionDataset([]), top_k=5) == []

    def test_invalid_top_k_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            mine_top_k(tiny_dataset, top_k=0)

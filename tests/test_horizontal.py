"""Unit tests for HORPART (repro.core.horizontal)."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.core.horizontal import horizontal_partition, partition_sizes
from repro.exceptions import ParameterError
from tests.conftest import make_uniform_dataset


class TestHorizontalPartition:
    def test_empty_dataset_yields_no_clusters(self):
        assert horizontal_partition(TransactionDataset([])) == []

    def test_small_dataset_is_single_cluster(self, tiny_dataset):
        clusters = horizontal_partition(tiny_dataset, max_cluster_size=10)
        assert len(clusters) == 1
        assert len(clusters[0]) == len(tiny_dataset)

    def test_every_cluster_respects_size_bound_on_uniform_data(self):
        dataset = make_uniform_dataset(200, domain=50, record_length=4, seed=1)
        clusters = horizontal_partition(dataset, max_cluster_size=20)
        assert all(size <= 20 for size in partition_sizes(clusters))

    def test_partition_is_a_permutation_of_the_input(self, paper_dataset):
        clusters = horizontal_partition(paper_dataset, max_cluster_size=4)
        scattered = [record for cluster in clusters for record in cluster]
        assert sorted(map(sorted, scattered)) == sorted(map(sorted, paper_dataset))

    def test_partition_preserves_record_count(self):
        dataset = make_uniform_dataset(137, domain=30, record_length=5, seed=2)
        clusters = horizontal_partition(dataset, max_cluster_size=16)
        assert sum(partition_sizes(clusters)) == 137

    def test_similar_records_land_in_the_same_cluster(self):
        # two well-separated groups sharing no terms
        group_a = [{"a", f"x{i}"} for i in range(10)]
        group_b = [{"b", f"y{i}"} for i in range(10)]
        dataset = TransactionDataset(group_a + group_b)
        clusters = horizontal_partition(dataset, max_cluster_size=12)
        for cluster in clusters:
            has_a = any("a" in record for record in cluster)
            has_b = any("b" in record for record in cluster)
            assert not (has_a and has_b)

    def test_duplicate_heavy_dataset_terminates(self):
        # all records identical: the split term never separates anything
        dataset = TransactionDataset([{"a", "b"}] * 50)
        clusters = horizontal_partition(dataset, max_cluster_size=10)
        assert sum(partition_sizes(clusters)) == 50
        assert all(size <= 10 for size in partition_sizes(clusters))

    def test_single_term_records_terminate(self):
        dataset = TransactionDataset([{"only"}] * 33)
        clusters = horizontal_partition(dataset, max_cluster_size=8)
        assert sum(partition_sizes(clusters)) == 33

    def test_invalid_cluster_size_rejected(self, tiny_dataset):
        with pytest.raises(ParameterError):
            horizontal_partition(tiny_dataset, max_cluster_size=1)

    def test_deterministic_output(self, paper_dataset):
        first = horizontal_partition(paper_dataset, max_cluster_size=4)
        second = horizontal_partition(paper_dataset, max_cluster_size=4)
        assert [sorted(map(sorted, c)) for c in first] == [
            sorted(map(sorted, c)) for c in second
        ]

    def test_paper_dataset_splits_on_most_frequent_term(self, paper_dataset):
        # "madonna" is the most frequent term (8/10 records); the first split
        # separates the two madonna-free records from the rest.
        clusters = horizontal_partition(paper_dataset, max_cluster_size=9)
        cluster_with_r4 = next(
            c for c in clusters if any(r == frozenset({"itunes", "flu", "viagra"}) for r in c)
        )
        assert all("madonna" not in record for record in cluster_with_r4)

    def test_large_cluster_bound_keeps_everything_together(self, paper_dataset):
        clusters = horizontal_partition(paper_dataset, max_cluster_size=100)
        assert len(clusters) == 1

    def test_cluster_records_share_terms_more_than_random(self):
        dataset = make_uniform_dataset(100, domain=20, record_length=5, seed=3)
        clusters = horizontal_partition(dataset, max_cluster_size=10)
        # every multi-record cluster should have at least one term shared by
        # a majority of its records (that is what splitting on frequent terms buys)
        for cluster in clusters:
            if len(cluster) < 4:
                continue
            supports = cluster.term_supports()
            assert max(supports.values()) >= len(cluster) // 2

"""Unit tests for dataset I/O, the Quest generator and the real-data proxies."""

from __future__ import annotations

import json

import pytest

from repro.core.dataset import TransactionDataset
from repro.datasets.io import (
    read_dataset_json,
    read_disassociated_json,
    read_transactions,
    write_dataset_json,
    write_disassociated_json,
    write_transactions,
)
from repro.datasets.quest import QuestConfig, QuestGenerator, generate_quest
from repro.datasets.real_proxies import (
    PROFILES,
    available_datasets,
    load_proxy,
    profile_of,
)
from repro.exceptions import DatasetFormatError, ParameterError


class TestTransactionFileIO:
    def test_round_trip(self, paper_dataset, tmp_path):
        path = tmp_path / "data.txt"
        write_transactions(paper_dataset, path, delimiter="|")
        loaded = read_transactions(path, delimiter="|")
        assert sorted(map(sorted, loaded)) == sorted(map(sorted, paper_dataset))

    def test_default_delimiter_is_whitespace(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("a b c\nb c\n")
        loaded = read_transactions(path)
        assert len(loaded) == 2
        assert loaded[0] == frozenset({"a", "b", "c"})

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("a b\n\n\nc d\n")
        assert len(read_transactions(path)) == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            read_transactions(tmp_path / "missing.txt")


class TestJsonIO:
    def test_dataset_round_trip(self, paper_dataset, tmp_path):
        path = tmp_path / "data.json"
        write_dataset_json(paper_dataset, path)
        assert read_dataset_json(path) == TransactionDataset(paper_dataset.to_lists())

    def test_dataset_json_is_sorted_lists(self, tiny_dataset, tmp_path):
        path = tmp_path / "data.json"
        write_dataset_json(tiny_dataset, path)
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert all(row == sorted(row) for row in payload)

    def test_non_list_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(DatasetFormatError):
            read_dataset_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{invalid")
        with pytest.raises(DatasetFormatError):
            read_dataset_json(path)

    def test_published_round_trip(self, paper_published, tmp_path):
        path = tmp_path / "published.json"
        write_disassociated_json(paper_published, path)
        loaded = read_disassociated_json(path)
        assert loaded.k == paper_published.k
        assert loaded.total_records() == paper_published.total_records()
        assert loaded.domain() == paper_published.domain()

    def test_published_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            read_disassociated_json(tmp_path / "missing.json")


class TestQuestGenerator:
    def test_record_count_matches_config(self):
        dataset = generate_quest(num_transactions=300, domain_size=100, seed=0)
        assert len(dataset) == 300

    def test_domain_within_configured_bound(self):
        dataset = generate_quest(num_transactions=300, domain_size=100, seed=0)
        assert len(dataset.domain) <= 100

    def test_average_length_is_close_to_target(self):
        dataset = generate_quest(
            num_transactions=500, domain_size=200, avg_transaction_size=8.0, seed=1
        )
        assert 4.0 <= dataset.stats().avg_record_size <= 14.0

    def test_deterministic_given_seed(self):
        a = generate_quest(num_transactions=100, domain_size=50, seed=3)
        b = generate_quest(num_transactions=100, domain_size=50, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_quest(num_transactions=100, domain_size=50, seed=3)
        b = generate_quest(num_transactions=100, domain_size=50, seed=4)
        assert a != b

    def test_skewed_supports(self):
        dataset = generate_quest(num_transactions=500, domain_size=300, seed=2)
        supports = sorted(dataset.term_supports().values(), reverse=True)
        # the head of the distribution is much heavier than the tail
        assert supports[0] >= 5 * supports[-1]

    def test_no_empty_records(self):
        dataset = generate_quest(num_transactions=200, domain_size=50, seed=5)
        assert all(record for record in dataset)

    def test_invalid_config_rejected(self):
        with pytest.raises(ParameterError):
            QuestConfig(num_transactions=0)
        with pytest.raises(ParameterError):
            QuestConfig(domain_size=1)
        with pytest.raises(ParameterError):
            QuestConfig(correlation=1.5)
        with pytest.raises(ParameterError):
            QuestConfig(corruption_mean=1.0)

    def test_config_and_overrides_are_mutually_exclusive(self):
        with pytest.raises(ParameterError):
            QuestGenerator(QuestConfig(), num_transactions=10)


class TestRealProxies:
    def test_available_datasets(self):
        assert available_datasets() == ["POS", "WV1", "WV2"]

    def test_profiles_match_figure6(self):
        assert PROFILES["POS"].num_records == 515_597
        assert PROFILES["POS"].domain_size == 1_657
        assert PROFILES["WV1"].avg_record_size == 2.5
        assert PROFILES["WV2"].domain_size == 3_340

    def test_profile_of_is_case_insensitive(self):
        assert profile_of("pos").name == "POS"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ParameterError):
            load_proxy("NETFLIX")
        with pytest.raises(ParameterError):
            profile_of("NETFLIX")

    def test_scaled_record_count(self):
        dataset = load_proxy("WV1", scale=0.01, seed=0)
        expected = round(PROFILES["WV1"].num_records * 0.01)
        assert abs(len(dataset) - expected) <= 1

    def test_record_lengths_respect_profile_maximum(self):
        dataset = load_proxy("WV1", scale=0.01, seed=0)
        assert dataset.stats().max_record_size <= PROFILES["WV1"].max_record_size

    def test_average_length_roughly_matches_profile(self):
        dataset = load_proxy("POS", scale=0.005, seed=0)
        profile = PROFILES["POS"]
        assert profile.avg_record_size * 0.5 <= dataset.stats().avg_record_size
        assert dataset.stats().avg_record_size <= profile.avg_record_size * 1.8

    def test_domain_scale_shrinks_domain(self):
        full = load_proxy("WV2", scale=0.01, seed=0)
        small = load_proxy("WV2", scale=0.01, seed=0, domain_scale=0.1)
        assert len(small.domain) < len(full.domain)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ParameterError):
            load_proxy("POS", scale=0.0)
        with pytest.raises(ParameterError):
            load_proxy("POS", scale=1.5)
        with pytest.raises(ParameterError):
            load_proxy("POS", domain_scale=0.0)

    def test_deterministic_given_seed(self):
        assert load_proxy("WV1", scale=0.005, seed=2) == load_proxy("WV1", scale=0.005, seed=2)

    def test_supports_are_skewed(self):
        dataset = load_proxy("POS", scale=0.005, seed=0)
        supports = sorted(dataset.term_supports().values(), reverse=True)
        assert supports[0] >= 10 * supports[-1]

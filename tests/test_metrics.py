"""Unit tests for the information-loss metrics (repro.metrics)."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.core.engine import anonymize
from repro.exceptions import MiningError
from repro.metrics import (
    dataset_ncp,
    pair_relative_error,
    relative_error,
    relative_error_chunks,
    relative_error_generalized,
    relative_error_reconstructed,
    term_ncp,
    terms_in_rank_range,
    terms_lost,
    tkd_chunks,
    tkd_ml2,
    tkd_reconstructed,
    tlost,
    top_k_deviation,
)
from repro.mining.hierarchy import GeneralizationHierarchy


class TestTopKDeviation:
    def test_identical_datasets_have_zero_deviation(self, paper_dataset):
        assert top_k_deviation(paper_dataset, paper_dataset, top_k=20, max_size=2) == 0.0

    def test_disjoint_datasets_have_full_deviation(self):
        original = TransactionDataset([{"a", "b"}] * 5)
        other = TransactionDataset([{"x", "y"}] * 5)
        assert top_k_deviation(original, other, top_k=5, max_size=2) == 1.0

    def test_deviation_is_bounded(self, skewed_dataset, skewed_published):
        value = tkd_reconstructed(skewed_dataset, skewed_published, top_k=30, max_size=2)
        assert 0.0 <= value <= 1.0

    def test_chunk_variant_upper_bounds_reconstructed_variant(
        self, skewed_dataset, skewed_published
    ):
        """tKd-a only sees within-chunk associations, so it can only lose
        more of the top-K itemsets than a reconstruction does (paper 7a)."""
        tkd_a = tkd_chunks(skewed_dataset, skewed_published, top_k=30, max_size=2)
        tkd = tkd_reconstructed(skewed_dataset, skewed_published, top_k=30, max_size=2, seed=1)
        assert tkd <= tkd_a + 0.15  # small slack: reconstruction is randomized

    def test_empty_original_yields_zero(self):
        empty = TransactionDataset([])
        assert top_k_deviation(empty, empty, top_k=5) == 0.0

    def test_invalid_top_k_rejected(self, paper_dataset):
        with pytest.raises(MiningError):
            top_k_deviation(paper_dataset, paper_dataset, top_k=0)


class TestPairRelativeError:
    def test_exact_support_gives_zero(self):
        assert pair_relative_error(10, 10) == 0.0

    def test_both_zero_gives_zero(self):
        assert pair_relative_error(0, 0) == 0.0

    def test_lost_pair_gives_two(self):
        assert pair_relative_error(8, 0) == 2.0

    def test_invented_pair_gives_two(self):
        assert pair_relative_error(0, 8) == 2.0

    def test_symmetric(self):
        assert pair_relative_error(4, 6) == pair_relative_error(6, 4)

    def test_value_in_zero_two_range(self):
        for so, sp in [(1, 5), (5, 1), (3, 3), (100, 1)]:
            assert 0.0 <= pair_relative_error(so, sp) <= 2.0


class TestTermsInRankRange:
    def test_returns_requested_slice(self, skewed_dataset):
        terms = terms_in_rank_range(skewed_dataset, (0, 5))
        ordered = skewed_dataset.terms_by_support()
        assert terms == ordered[:5]

    def test_range_beyond_domain_is_shifted(self, tiny_dataset):
        terms = terms_in_rank_range(tiny_dataset, (100, 120))
        assert terms  # never empty for a non-empty dataset

    def test_invalid_range_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            terms_in_rank_range(tiny_dataset, (5, 5))


class TestRelativeError:
    def test_identical_datasets_give_zero(self, skewed_dataset):
        assert relative_error(skewed_dataset, skewed_dataset, rank_range=(0, 8)) == 0.0

    def test_chunks_variant_bounded(self, skewed_dataset, skewed_published):
        value = relative_error_chunks(skewed_dataset, skewed_published, rank_range=(0, 8))
        assert 0.0 <= value <= 2.0

    def test_reconstructed_variant_bounded(self, skewed_dataset, skewed_published):
        value = relative_error_reconstructed(
            skewed_dataset, skewed_published, rank_range=(0, 8), seed=0
        )
        assert 0.0 <= value <= 2.0

    def test_averaging_reconstructions_is_deterministic_and_bounded(
        self, skewed_dataset, skewed_published
    ):
        """Averaging supports over reconstructions (paper, Figure 7d) stays in
        the metric's range and is reproducible given the seed.  (The paper's
        accuracy gain from averaging shows up at realistic dataset sizes and
        is exercised by the Figure 7d benchmark, not by this 60-record toy.)"""
        averaged_a = relative_error_reconstructed(
            skewed_dataset, skewed_published, rank_range=(5, 15), reconstructions=10, seed=3
        )
        averaged_b = relative_error_reconstructed(
            skewed_dataset, skewed_published, rank_range=(5, 15), reconstructions=10, seed=3
        )
        assert averaged_a == pytest.approx(averaged_b)
        assert 0.0 <= averaged_a <= 2.0

    def test_single_probe_term_gives_zero(self, skewed_dataset):
        assert relative_error(skewed_dataset, skewed_dataset, terms=["t0"]) == 0.0

    def test_explicit_terms_override_rank_range(self, skewed_dataset, skewed_published):
        value = relative_error_reconstructed(
            skewed_dataset, skewed_published, terms=["t0", "t1", "t2"], seed=0
        )
        assert 0.0 <= value <= 2.0


class TestRelativeErrorGeneralized:
    def test_untouched_cut_gives_zero(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        identity_cut = {term: term for term in skewed_dataset.domain}
        value = relative_error_generalized(
            skewed_dataset, skewed_dataset, identity_cut, hierarchy, rank_range=(0, 6)
        )
        assert value == 0.0

    def test_generalized_cut_increases_error(self, skewed_dataset):
        from repro.baselines.apriori_anonymization import anonymize_with_generalization

        result = anonymize_with_generalization(skewed_dataset, k=5, m=2, fanout=3)
        value = relative_error_generalized(
            skewed_dataset,
            result.dataset,
            result.cut,
            result.hierarchy,
            rank_range=(0, 6),
        )
        assert 0.0 <= value <= 2.0


class TestTlost:
    def test_zero_when_every_frequent_term_is_in_a_chunk(self):
        dataset = TransactionDataset([{"a", "b"}] * 8)
        published = anonymize(dataset, k=3, m=2, max_cluster_size=8)
        assert tlost(dataset, published) == 0.0

    def test_bounded_between_zero_and_one(self, skewed_dataset, skewed_published):
        assert 0.0 <= tlost(skewed_dataset, skewed_published) <= 1.0

    def test_terms_lost_are_frequent_and_chunkless(self, skewed_dataset, skewed_published):
        lost = terms_lost(skewed_dataset, skewed_published)
        supports = skewed_dataset.term_supports()
        chunk_terms = skewed_published.record_chunk_terms()
        for term in lost:
            assert supports[term] >= skewed_published.k
            assert term not in chunk_terms

    def test_empty_frequent_set_gives_zero(self):
        dataset = TransactionDataset([{"a"}, {"b"}, {"c"}, {"d"}])
        published = anonymize(dataset, k=3, m=2, max_cluster_size=4)
        assert tlost(dataset, published) == 0.0


class TestTkdML2:
    def test_identical_datasets_give_zero(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        assert tkd_ml2(skewed_dataset, skewed_dataset, hierarchy, top_k=20, max_size=2) == 0.0

    def test_generalized_dataset_preserves_some_ml_itemsets(self, skewed_dataset):
        from repro.baselines.apriori_anonymization import anonymize_with_generalization

        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        result = anonymize_with_generalization(skewed_dataset, k=3, m=2, hierarchy=hierarchy)
        plain_tkd = top_k_deviation(skewed_dataset, result.dataset, top_k=20, max_size=2)
        ml2 = tkd_ml2(skewed_dataset, result.dataset, hierarchy, top_k=20, max_size=2)
        # multi-level mining must recover at least as much as leaf-level mining
        assert ml2 <= plain_tkd + 1e-9
        assert 0.0 <= ml2 <= 1.0

    def test_bounded_for_disassociation(self, skewed_dataset, skewed_published):
        from repro.metrics import tkd_ml2_disassociated

        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        value = tkd_ml2_disassociated(
            skewed_dataset, skewed_published, hierarchy, top_k=20, max_size=2
        )
        assert 0.0 <= value <= 1.0


class TestNCP:
    def test_term_ncp_delegates_to_hierarchy(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        assert term_ncp("t0", hierarchy) == 0.0
        assert term_ncp(hierarchy.root, hierarchy) == 1.0

    def test_dataset_ncp_zero_for_identity_cut(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        cut = {term: term for term in skewed_dataset.domain}
        assert dataset_ncp(skewed_dataset, cut, hierarchy) == 0.0

    def test_dataset_ncp_one_for_root_cut(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        cut = {term: hierarchy.root for term in skewed_dataset.domain}
        assert dataset_ncp(skewed_dataset, cut, hierarchy) == 1.0

    def test_dataset_ncp_monotone_in_generalization(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=4)
        partial_cut = {
            term: hierarchy.parent(term) or term for term in skewed_dataset.domain
        }
        root_cut = {term: hierarchy.root for term in skewed_dataset.domain}
        partial = dataset_ncp(skewed_dataset, partial_cut, hierarchy)
        full = dataset_ncp(skewed_dataset, root_cut, hierarchy)
        assert 0.0 < partial <= full == 1.0

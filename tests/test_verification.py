"""Unit tests for the independent audit (repro.core.verification)."""

from __future__ import annotations

import pytest

from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
)
from repro.core.verification import audit, verify_km_anonymity
from repro.exceptions import AnonymityViolationError, ParameterError


def good_cluster(label="P") -> SimpleCluster:
    chunk = RecordChunk({"a", "b"}, [{"a", "b"}, {"a", "b"}, {"a", "b"}])
    return SimpleCluster(3, [chunk], TermChunk({"z"}), label=label)


def violating_cluster(label="BAD") -> SimpleCluster:
    chunk = RecordChunk({"a", "b"}, [{"a", "b"}, {"a"}, {"b"}])
    return SimpleCluster(3, [chunk], TermChunk({"z"}), label=label)


class TestAuditSimpleClusters:
    def test_good_dataset_passes(self):
        published = DisassociatedDataset([good_cluster()], k=3, m=2)
        report = audit(published)
        assert report.ok
        assert "passed" in report.summary()

    def test_chunk_violation_detected(self):
        published = DisassociatedDataset([violating_cluster()], k=3, m=2)
        report = audit(published)
        assert not report.ok
        assert report.chunk_violations
        label, itemset, support = report.chunk_violations[0]
        assert label == "BAD"
        assert support < 3

    def test_lemma2_violation_detected(self):
        # two chunks, empty term chunk, only 6 sub-records < 5 + 3 (Example 1)
        c1 = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        c2 = RecordChunk({"b", "c"}, [{"b", "c"}, {"b", "c"}, {"b", "c"}])
        cluster = SimpleCluster(5, [c1, c2], TermChunk(), label="EX1")
        published = DisassociatedDataset([cluster], k=3, m=2)
        report = audit(published)
        assert not report.ok
        assert report.lemma2_violations == ["EX1"]

    def test_non_empty_term_chunk_fixes_lemma2(self):
        c1 = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        c2 = RecordChunk({"b", "c"}, [{"b", "c"}, {"b", "c"}, {"b", "c"}])
        cluster = SimpleCluster(5, [c1, c2], TermChunk({"d"}), label="EX1")
        published = DisassociatedDataset([cluster], k=3, m=2)
        assert audit(published).ok

    def test_audit_uses_dataset_parameters_by_default(self):
        published = DisassociatedDataset([good_cluster()], k=3, m=2)
        assert audit(published).ok
        # stricter k makes the same data fail
        assert not audit(published, k=4).ok

    def test_audit_with_invalid_override_raises(self):
        published = DisassociatedDataset([good_cluster()], k=3, m=2)
        with pytest.raises(ParameterError):
            audit(published, k=0)


class TestAuditJointClusters:
    def _leaf(self, label, term_chunk_terms):
        chunk = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        return SimpleCluster(3, [chunk], TermChunk(term_chunk_terms), label=label)

    def test_safe_shared_chunk_passes(self):
        left = self._leaf("L", {"o"})
        right = self._leaf("R", {"o"})
        shared = SharedChunk({"o"}, [{"o"}, {"o"}, {"o"}], {"L": 2, "R": 1})
        joint = JointCluster([left, right], [shared], label="J")
        published = DisassociatedDataset([joint], k=3, m=2)
        assert audit(published).ok

    def test_property1_violation_detected(self):
        # the shared chunk contains term "a", which also appears in the
        # children's record chunks, so it must be k-anonymous; it is not
        # (sub-records {a,o}, {a}, {o} are all distinct) -- Figure 5a.
        left = self._leaf("L", {"o"})
        right = self._leaf("R", {"o"})
        shared = SharedChunk(
            {"a", "o"}, [{"a", "o"}, {"a", "o"}, {"a", "o"}, {"a"}, {"o"}], {"L": 3, "R": 2}
        )
        joint = JointCluster([left, right], [shared], label="J")
        published = DisassociatedDataset([joint], k=3, m=2)
        report = audit(published)
        assert not report.ok
        assert "J" in report.property1_violations

    def test_km_violation_in_shared_chunk_detected(self):
        left = self._leaf("L", {"o"})
        right = self._leaf("R", {"o"})
        shared = SharedChunk({"o", "p"}, [{"o", "p"}, {"o"}, {"o"}], {"L": 2, "R": 1})
        joint = JointCluster([left, right], [shared], label="J")
        published = DisassociatedDataset([joint], k=3, m=2)
        report = audit(published)
        assert not report.ok
        assert report.chunk_violations

    def test_violation_in_leaf_of_joint_cluster_detected(self):
        left = violating_cluster("L")
        right = self._leaf("R", {"o"})
        joint = JointCluster([left, right], [], label="J")
        published = DisassociatedDataset([joint], k=3, m=2)
        report = audit(published)
        assert not report.ok
        assert any(label == "L" for label, _i, _s in report.chunk_violations)


class TestVerifyKmAnonymity:
    def test_passes_silently_on_good_data(self):
        published = DisassociatedDataset([good_cluster()], k=3, m=2)
        verify_km_anonymity(published)

    def test_raises_with_offending_itemset(self):
        published = DisassociatedDataset([violating_cluster()], k=3, m=2)
        with pytest.raises(AnonymityViolationError) as excinfo:
            verify_km_anonymity(published)
        assert excinfo.value.support is not None
        assert excinfo.value.support < 3

    def test_raises_on_lemma2_violation(self):
        c1 = RecordChunk({"a"}, [{"a"}, {"a"}, {"a"}])
        c2 = RecordChunk({"b", "c"}, [{"b", "c"}, {"b", "c"}, {"b", "c"}])
        cluster = SimpleCluster(5, [c1, c2], TermChunk(), label="EX1")
        published = DisassociatedDataset([cluster], k=3, m=2)
        with pytest.raises(AnonymityViolationError):
            verify_km_anonymity(published)

    def test_pipeline_output_always_verifies(self, paper_published):
        verify_km_anonymity(paper_published)

    def test_skewed_pipeline_output_always_verifies(self, skewed_published):
        verify_km_anonymity(skewed_published)

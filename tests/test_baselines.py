"""Unit tests for the baseline anonymization methods (repro.baselines)."""

from __future__ import annotations

import pytest

from repro.baselines.apriori_anonymization import (
    AprioriAnonymizer,
    anonymize_with_generalization,
)
from repro.baselines.diffpart import DiffPart, publish_with_diffpart
from repro.baselines.suppression import GlobalSuppressor, anonymize_with_suppression
from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError
from repro.mining.hierarchy import GeneralizationHierarchy
from repro.mining.itemsets import itemset_supports
from tests.conftest import make_uniform_dataset


def assert_km_anonymous_dataset(dataset: TransactionDataset, k: int, m: int) -> None:
    """Every combination of up to m published terms must have support >= k."""
    counts = itemset_supports(dataset, max_size=m)
    violating = {itemset: s for itemset, s in counts.items() if s < k}
    assert not violating, f"violating combinations: {violating}"


class TestAprioriAnonymizer:
    def test_output_is_km_anonymous(self, skewed_dataset):
        result = anonymize_with_generalization(skewed_dataset, k=3, m=2, fanout=3)
        assert_km_anonymous_dataset(result.dataset, k=3, m=2)

    def test_paper_dataset_generalization(self, paper_dataset):
        result = anonymize_with_generalization(paper_dataset, k=3, m=2, fanout=3)
        assert_km_anonymous_dataset(result.dataset, k=3, m=2)

    def test_record_count_preserved(self, skewed_dataset):
        result = anonymize_with_generalization(skewed_dataset, k=3, m=2)
        assert len(result.dataset) == len(skewed_dataset)

    def test_cut_covers_whole_domain(self, skewed_dataset):
        result = anonymize_with_generalization(skewed_dataset, k=3, m=2)
        assert set(result.cut) == set(skewed_dataset.domain)

    def test_cut_nodes_are_ancestors_of_their_terms(self, skewed_dataset):
        result = anonymize_with_generalization(skewed_dataset, k=3, m=2)
        for term, node in result.cut.items():
            assert result.hierarchy.is_ancestor(node, term)

    def test_ncp_grows_with_k(self, skewed_dataset):
        loose = anonymize_with_generalization(skewed_dataset, k=2, m=2, fanout=4)
        strict = anonymize_with_generalization(skewed_dataset, k=8, m=2, fanout=4)
        assert strict.ncp() >= loose.ncp()

    def test_already_anonymous_dataset_is_untouched(self):
        dataset = TransactionDataset([{"a", "b"}] * 6)
        result = anonymize_with_generalization(dataset, k=3, m=2)
        assert result.ncp() == 0.0
        assert result.dataset == dataset

    def test_accepts_external_hierarchy(self, skewed_dataset):
        hierarchy = GeneralizationHierarchy.balanced(skewed_dataset.domain, fanout=5)
        result = AprioriAnonymizer(k=3, m=2, hierarchy=hierarchy).anonymize(skewed_dataset)
        assert result.hierarchy is hierarchy

    def test_invalid_parameters_rejected(self, skewed_dataset):
        with pytest.raises(ParameterError):
            AprioriAnonymizer(k=0, m=2).anonymize(skewed_dataset)

    def test_generalization_levels_reports_cut(self, skewed_dataset):
        result = anonymize_with_generalization(skewed_dataset, k=4, m=2)
        levels = result.generalization_levels()
        assert sum(levels.values()) == len(skewed_dataset.domain)


class TestDiffPart:
    def test_publishes_only_original_terms(self, skewed_dataset):
        result = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=0)
        assert result.dataset.domain <= skewed_dataset.domain

    def test_deterministic_given_seed(self, skewed_dataset):
        a = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=5)
        b = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=5)
        assert a.dataset == b.dataset

    def test_different_seeds_differ(self, skewed_dataset):
        a = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=1)
        b = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=2)
        assert a.dataset != b.dataset or a.partitions_published != b.partitions_published

    def test_suppresses_infrequent_terms(self):
        dataset = make_uniform_dataset(150, domain=80, record_length=3, seed=9)
        result = publish_with_diffpart(dataset, epsilon=0.5, seed=0)
        # differential privacy on sparse data loses a large part of the domain
        assert len(result.dataset.domain) < len(dataset.domain)

    def test_higher_epsilon_preserves_no_less_of_the_domain_on_average(self, skewed_dataset):
        low = publish_with_diffpart(skewed_dataset, epsilon=0.25, seed=3)
        high = publish_with_diffpart(skewed_dataset, epsilon=2.0, seed=3)
        assert len(high.dataset.domain) >= len(low.dataset.domain) - 3

    def test_partition_counters_are_consistent(self, skewed_dataset):
        result = publish_with_diffpart(skewed_dataset, epsilon=1.0, seed=0)
        assert result.partitions_published >= 0
        assert result.partitions_pruned >= 0
        assert result.epsilon == 1.0

    def test_invalid_epsilon_rejected(self, skewed_dataset):
        with pytest.raises(ParameterError):
            DiffPart(epsilon=0.0)
        with pytest.raises(ParameterError):
            DiffPart(epsilon=-1.0)

    def test_empty_output_possible_on_tiny_data_without_error(self):
        dataset = TransactionDataset([{"a"}, {"b"}, {"c"}])
        result = publish_with_diffpart(dataset, epsilon=0.1, seed=0)
        assert len(result.dataset) >= 0  # must not raise


class TestGlobalSuppressor:
    def test_output_is_km_anonymous(self, skewed_dataset):
        result = anonymize_with_suppression(skewed_dataset, k=3, m=2)
        assert_km_anonymous_dataset(result.dataset, k=3, m=2)

    def test_paper_dataset_suppression(self, paper_dataset):
        result = anonymize_with_suppression(paper_dataset, k=3, m=2)
        assert_km_anonymous_dataset(result.dataset, k=3, m=2)

    def test_suppressed_terms_disjoint_from_published_domain(self, skewed_dataset):
        result = anonymize_with_suppression(skewed_dataset, k=3, m=2)
        assert not (result.suppressed_terms & result.dataset.domain)

    def test_term_loss_fraction_in_unit_interval(self, skewed_dataset):
        result = anonymize_with_suppression(skewed_dataset, k=3, m=2)
        assert 0.0 <= result.term_loss <= 1.0

    def test_already_anonymous_dataset_loses_nothing(self):
        dataset = TransactionDataset([{"a", "b"}] * 5)
        result = anonymize_with_suppression(dataset, k=3, m=2)
        assert result.suppressed_terms == frozenset()
        assert result.dataset == dataset

    def test_stricter_k_suppresses_no_fewer_terms(self, skewed_dataset):
        loose = anonymize_with_suppression(skewed_dataset, k=2, m=2)
        strict = anonymize_with_suppression(skewed_dataset, k=6, m=2)
        assert len(strict.suppressed_terms) >= len(loose.suppressed_terms)

    def test_suppression_loses_more_terms_than_disassociation_keeps(self, skewed_dataset):
        """The motivating claim: suppression destroys associations for far
        more terms than disassociation does."""
        from repro.core.engine import anonymize

        suppressed = anonymize_with_suppression(skewed_dataset, k=3, m=2)
        published = anonymize(skewed_dataset, k=3, m=2, max_cluster_size=12)
        assert len(published.domain()) >= len(suppressed.dataset.domain)

    def test_invalid_parameters_rejected(self, skewed_dataset):
        with pytest.raises(ParameterError):
            GlobalSuppressor(k=0, m=2)

"""Tests for the adversary simulation (repro.analysis.attack)."""

from __future__ import annotations

import pytest

from repro.analysis.attack import (
    original_risk,
    published_candidates,
    published_risk,
    simulate_attack,
    vulnerable_combinations,
)
from repro.core.dataset import TransactionDataset
from repro.core.engine import anonymize
from repro.exceptions import ParameterError


class TestVulnerableCombinations:
    def test_paper_example_identifying_pair_is_listed(self, paper_dataset):
        vulnerable = vulnerable_combinations(paper_dataset, k=3, m=2)
        assert ("madonna", "viagra") in vulnerable
        assert vulnerable[("madonna", "viagra")] == 1

    def test_frequent_combinations_are_not_listed(self, paper_dataset):
        vulnerable = vulnerable_combinations(paper_dataset, k=3, m=2)
        assert ("madonna",) not in vulnerable

    def test_uniform_duplicates_have_no_vulnerable_combinations(self):
        dataset = TransactionDataset([{"a", "b"}] * 10)
        assert vulnerable_combinations(dataset, k=3, m=2) == {}

    def test_invalid_parameters_rejected(self, paper_dataset):
        with pytest.raises(ParameterError):
            vulnerable_combinations(paper_dataset, k=0, m=2)


class TestOriginalRisk:
    def test_paper_dataset_is_fully_exposed(self, paper_dataset):
        # every record of the running example contains some rare pair
        assert original_risk(paper_dataset, k=3, m=2) == 1.0

    def test_duplicated_records_have_zero_risk(self):
        dataset = TransactionDataset([{"a", "b"}] * 8)
        assert original_risk(dataset, k=3, m=2) == 0.0

    def test_risk_is_monotone_in_k(self, skewed_dataset):
        assert original_risk(skewed_dataset, k=2, m=2) <= original_risk(
            skewed_dataset, k=6, m=2
        )

    def test_risk_is_monotone_in_m(self, skewed_dataset):
        assert original_risk(skewed_dataset, k=3, m=1) <= original_risk(
            skewed_dataset, k=3, m=2
        )


class TestPublishedCandidates:
    def test_identifying_pair_no_longer_pins_a_single_record(self, paper_published):
        # The pair uniquely identified r2 in the original data.  After
        # disassociation it is either unreconstructable or admits at least k
        # candidates (here: viagra sits in a term chunk, so every record of
        # its cluster that can carry madonna is a candidate).
        candidates = published_candidates(paper_published, {"madonna", "viagra"})
        assert candidates == 0 or candidates >= paper_published.k

    def test_chunk_resident_pair_admits_at_least_k_candidates(self, paper_published):
        k = paper_published.k
        # pick a pair that lives inside one record chunk of the publication
        for chunk in paper_published.iter_record_chunks():
            if len(chunk.domain) >= 2:
                terms = sorted(chunk.domain)[:2]
                if chunk.support(terms) > 0:
                    assert published_candidates(paper_published, terms) >= k
                    return
        pytest.skip("no multi-term chunk in this publication")

    def test_unknown_terms_have_zero_candidates(self, paper_published):
        assert published_candidates(paper_published, {"not a term"}) == 0

    def test_term_chunk_terms_admit_whole_clusters(self, paper_published):
        only_terms = paper_published.term_chunk_only_terms()
        if not only_terms:
            pytest.skip("publication has no term-chunk-only terms")
        term = sorted(only_terms)[0]
        candidates = published_candidates(paper_published, {term})
        covering = [
            cluster.size
            for cluster in paper_published.clusters
            if term in cluster.domain()
        ]
        assert candidates == sum(covering)
        assert candidates >= paper_published.k


class TestPublishedRisk:
    def test_correct_publication_has_zero_risk(self, paper_dataset, paper_published):
        assert published_risk(paper_dataset, paper_published) == 0.0

    def test_skewed_publication_has_zero_risk(self, skewed_dataset, skewed_published):
        assert published_risk(skewed_dataset, skewed_published) == 0.0

    def test_singleton_background_is_also_safe(self, paper_dataset, paper_published):
        assert published_risk(paper_dataset, paper_published, m=1) == 0.0


class TestSimulateAttack:
    def test_report_contents(self, paper_dataset, paper_published):
        report = simulate_attack(paper_dataset, paper_published)
        assert report.k == 3 and report.m == 2
        assert report.original_at_risk == 1.0
        assert report.vulnerable_combinations > 0
        assert report.published_exposed_combinations == 0.0
        assert "identifiable" in report.summary()

    def test_end_to_end_on_fresh_data(self):
        records = [{"x", f"rare{i}"} for i in range(6)] + [{"x", "y"}] * 6
        dataset = TransactionDataset(records)
        published = anonymize(dataset, k=3, m=2, max_cluster_size=8)
        report = simulate_attack(dataset, published)
        assert report.original_at_risk > 0.0
        assert report.published_exposed_combinations == 0.0

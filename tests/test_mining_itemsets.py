"""Unit tests for the itemset utilities (repro.mining.itemsets)."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError
from repro.mining.itemsets import (
    canonical,
    itemset_supports,
    pair_supports,
    top_k_itemset_set,
    top_k_itemsets,
)


class TestCanonical:
    def test_sorts_and_stringifies(self):
        assert canonical({"b", "a"}) == ("a", "b")
        assert canonical([2, 1]) == ("1", "2")

    def test_empty_itemset(self):
        assert canonical([]) == ()


class TestItemsetSupports:
    def test_counts_singletons_and_pairs(self, tiny_dataset):
        counts = itemset_supports(tiny_dataset, max_size=2)
        assert counts[("a",)] == 5
        assert counts[("a", "b")] == 4
        assert counts[("b", "c")] == 2

    def test_max_size_limits_enumeration(self, tiny_dataset):
        counts = itemset_supports(tiny_dataset, max_size=1)
        assert all(len(itemset) == 1 for itemset in counts)

    def test_triples_counted_when_requested(self, tiny_dataset):
        counts = itemset_supports(tiny_dataset, max_size=3)
        assert counts[("a", "b", "c")] == 1

    def test_restrict_to_projects_records(self, tiny_dataset):
        counts = itemset_supports(tiny_dataset, max_size=2, restrict_to={"a", "b"})
        assert ("a", "b") in counts
        assert all(set(itemset) <= {"a", "b"} for itemset in counts)

    def test_invalid_max_size_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            itemset_supports(tiny_dataset, max_size=0)

    def test_empty_dataset(self):
        assert itemset_supports(TransactionDataset([]), max_size=2) == {}

    def test_supports_match_dataset_support(self, paper_dataset):
        counts = itemset_supports(paper_dataset, max_size=2)
        for itemset, support in list(counts.items())[:20]:
            assert support == paper_dataset.support(itemset)


class TestPairSupports:
    def test_includes_zero_support_pairs(self, tiny_dataset):
        pairs = pair_supports(tiny_dataset, ["c", "d"])
        assert pairs[("c", "d")] == 0

    def test_counts_existing_pairs(self, tiny_dataset):
        pairs = pair_supports(tiny_dataset, ["a", "b", "c"])
        assert pairs[("a", "b")] == 4
        assert pairs[("a", "c")] == 2

    def test_number_of_pairs_is_n_choose_2(self, paper_dataset):
        terms = list(paper_dataset.domain)[:6]
        pairs = pair_supports(paper_dataset, terms)
        assert len(pairs) == 15

    def test_single_term_has_no_pairs(self, tiny_dataset):
        assert pair_supports(tiny_dataset, ["a"]) == {}


class TestTopKItemsets:
    def test_returns_requested_count(self, paper_dataset):
        top = top_k_itemsets(paper_dataset, top_k=5, max_size=2)
        assert len(top) == 5

    def test_ordered_by_support(self, paper_dataset):
        top = top_k_itemsets(paper_dataset, top_k=10, max_size=2)
        supports = [support for _itemset, support in top]
        assert supports == sorted(supports, reverse=True)

    def test_most_frequent_singleton_is_first(self, paper_dataset):
        top = top_k_itemsets(paper_dataset, top_k=1, max_size=2)
        assert top[0][0] == ("madonna",)
        assert top[0][1] == 8

    def test_ties_broken_deterministically(self, tiny_dataset):
        first = top_k_itemsets(tiny_dataset, top_k=8, max_size=2)
        second = top_k_itemsets(tiny_dataset, top_k=8, max_size=2)
        assert first == second

    def test_min_support_filters(self, tiny_dataset):
        top = top_k_itemsets(tiny_dataset, top_k=100, max_size=2, min_support=4)
        assert all(support >= 4 for _itemset, support in top)

    def test_invalid_top_k_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            top_k_itemsets(tiny_dataset, top_k=0)

    def test_top_k_itemset_set_matches_itemsets(self, paper_dataset):
        as_list = top_k_itemsets(paper_dataset, top_k=7, max_size=2)
        as_set = top_k_itemset_set(paper_dataset, top_k=7, max_size=2)
        assert as_set == {itemset for itemset, _support in as_list}

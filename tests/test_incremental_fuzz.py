"""Differential fuzzing of the incremental store against the cold oracle.

The contract under test is the tentpole property of
:class:`repro.stream.store.IncrementalPipeline`: after *any* sequence of
record appends and deletes, the incrementally maintained publication is
**bit-for-bit identical** to a cold :class:`repro.stream.ShardedPipeline`
run over the mutated dataset.  The oracle is trivial to state and
expensive to hold -- window reuse, arrival-order preservation under
deletes, plan stability and the boundary repair all have to line up --
which makes it an ideal fuzz target:

* :class:`TestDifferentialFuzz` drives seeded randomized mutation
  sequences (append-only, delete-only, mixed; 30 sequences per workload
  family, 2 delta steps each) over the three paper-shaped workloads and
  compares canonical publication JSON after the final step;
* :class:`TestCrashResume` kills a delta run at every injection point it
  crosses (store open/validate/mutate, window, merge, verify) and checks
  that re-running the *same* delta -- same ``delta_id`` -- converges to
  the oracle regardless of where the first attempt died (mutation
  committed or not);
* :class:`TestServiceDeltaRetry` checks the service layer's transparent
  retry does the same without double-applying the mutation.
"""

from __future__ import annotations

import json
import random

import pytest

from repro import faults
from repro.core.engine import AnonymizationParams
from repro.exceptions import FaultInjected
from repro.service import AnonymizationService, ServiceConfig
from repro.stream import IncrementalPipeline, ShardedPipeline, StreamParams
from tests.conftest import make_workload

PARAMS = AnonymizationParams(k=3, m=2, max_cluster_size=12)

#: Workload family -> seeded base dataset (shapes match the resilience
#: suite: small enough for ~100 fuzz runs, rich enough to produce shared
#: chunks, refinement and boundary repairs).
WORKLOADS = {
    "quest": dict(records=250, domain=80, avg_len=6.0, seed=11),
    "zipf": dict(records=220, domain=70, avg_len=5.0, seed=11),
    "clickstream": dict(records=220, domain=60, avg_len=5.0, seed=11),
}

#: Mutation kinds x seeds: 30 sequences per workload family.
KINDS = ("append", "delete", "mixed")
SEEDS = tuple(range(10))

#: How many delta steps each fuzz sequence applies before the oracle check.
STEPS_PER_SEQUENCE = 2


def _stream(store_dir, **overrides) -> StreamParams:
    values = dict(shards=3, max_records_in_memory=100, store_dir=store_dir)
    values.update(overrides)
    return StreamParams(**values)


def _canonical(published) -> str:
    return json.dumps(published.to_dict(), sort_keys=True)


def _cold(records, **stream_overrides):
    """The oracle: a cold sharded run over the full mutated dataset."""
    values = dict(shards=3, max_records_in_memory=100)
    values.update(stream_overrides)
    return ShardedPipeline(PARAMS, StreamParams(**values)).run(list(records))


def _term_pool(records) -> list:
    return sorted({term for record in records for term in record})


def _random_record(rng: random.Random, pool: list) -> frozenset:
    """A random record mixing existing terms with fresh ones (fuzz both
    vocabulary growth and duplicate-content routing)."""
    size = rng.randint(1, 6)
    terms = set()
    while len(terms) < size:
        if rng.random() < 0.7:
            terms.add(rng.choice(pool))
        else:
            terms.add(f"fresh-{rng.randint(0, 49)}")
    return frozenset(terms)


def _random_delta(rng: random.Random, current: list, pool: list, kind: str):
    """One randomized (append, delete) pair legal against ``current``."""
    appends, deletes = [], []
    if kind in ("append", "mixed"):
        appends = [_random_record(rng, pool) for _ in range(rng.randint(1, 12))]
    if kind in ("delete", "mixed") and current:
        count = rng.randint(1, min(12, len(current)))
        deletes = [current[i] for i in rng.sample(range(len(current)), count)]
    return appends, deletes


def _apply_oracle(current: list, appends: list, deletes: list) -> list:
    """The store's mutation semantics on a plain list.

    Deletes remove the earliest surviving occurrence of each record (in
    delete order), then appends land at the end -- the exact arrival
    order the store maintains.
    """
    mutated = list(current)
    for record in deletes:
        mutated.remove(record)
    return mutated + appends


@pytest.fixture(scope="module")
def base_records():
    """Workload family -> the list of base records (built once)."""
    return {
        name: list(make_workload(name, **spec)) for name, spec in WORKLOADS.items()
    }


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_delta_matches_cold_recompute(
        self, workload, kind, seed, base_records, tmp_path
    ):
        """Any mutation sequence == cold run over the mutated dataset."""
        records = base_records[workload]
        rng = random.Random(seed * 1000 + KINDS.index(kind))
        pool = _term_pool(records)
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
        pipeline.run(append=records)
        current = list(records)
        for _ in range(STEPS_PER_SEQUENCE):
            appends, deletes = _random_delta(rng, current, pool, kind)
            published = pipeline.run(append=appends, delete=deletes)
            current = _apply_oracle(current, appends, deletes)
        assert _canonical(published) == _canonical(_cold(current))
        report = pipeline.last_report
        assert report.num_records == len(current)
        assert sum(report.shard_records) == len(current)

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_incremental_equals_cold_from_scratch(
        self, workload, base_records, tmp_path
    ):
        """The very first (initializing) run is already oracle-identical."""
        records = base_records[workload]
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
        published = pipeline.run(append=records)
        assert _canonical(published) == _canonical(_cold(records))
        assert pipeline.last_report.initialized

    def test_horpart_strategy_fuzz(self, base_records, tmp_path):
        """Sample-based routing: append-only deltas stay oracle-identical.

        Deletes inside the sample prefix can legitimately change the
        derived plan (rejected with ``StoreError``, covered in the edge
        suite), so the horpart fuzz sticks to appends -- the plan is
        stable and every delta must land bit-for-bit.
        """
        records = base_records["quest"]
        rng = random.Random(77)
        pool = _term_pool(records)
        pipeline = IncrementalPipeline(
            PARAMS, _stream(tmp_path / "store", strategy="horpart")
        )
        pipeline.run(append=records)
        current = list(records)
        for _ in range(3):
            appends, _ = _random_delta(rng, current, pool, "append")
            published = pipeline.run(append=appends)
            current = current + appends
        assert _canonical(published) == _canonical(
            _cold(current, strategy="horpart")
        )


#: Every injection point a delta run crosses, with the 1-based hit that
#: lands *inside the delta* (the initializing run is not under the plan).
DELTA_CRASH_POINTS = [
    ("store.open", 1),
    ("store.validate", 1),
    ("store.mutate", 1),
    ("stream.window", 1),
    ("stream.window", 2),
    ("stream.merge", 1),
    ("stream.verify", 1),
]


class TestCrashResume:
    @pytest.mark.parametrize("point,hit", DELTA_CRASH_POINTS)
    def test_crash_during_delta_then_rerun(
        self, point, hit, base_records, tmp_path
    ):
        """A delta killed at any phase converges on re-run (same delta_id).

        Crashes before the mutation commit must re-apply the mutation;
        crashes after it must *not* double-apply (the store recognizes the
        ``delta_id``).  Either way the re-run publishes the oracle bytes.
        """
        records = base_records["quest"]
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
        pipeline.run(append=records)
        appends = [frozenset({f"crash-{i}", f"crash-{i + 1}"}) for i in range(9)]
        deletes = records[3:7]
        plan = faults.FaultPlan([faults.FaultSpec(point, hit=hit)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                pipeline.run(append=appends, delete=deletes, delta_id="delta-1")
        resumed = pipeline.run(append=appends, delete=deletes, delta_id="delta-1")
        mutated = _apply_oracle(records, appends, deletes)
        assert _canonical(resumed) == _canonical(_cold(mutated))
        # The mutation landed exactly once, whether the crash hit before
        # or after the commit.
        assert pipeline.last_report.num_records == len(mutated)

    def test_repeated_crashes_still_converge(self, base_records, tmp_path):
        """Several consecutive crashes at different phases, one delta."""
        records = base_records["zipf"]
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
        pipeline.run(append=records)
        appends = [frozenset({f"x{i}", "y"}) for i in range(6)]
        for point in ("store.mutate", "stream.window", "stream.verify"):
            plan = faults.FaultPlan([faults.FaultSpec(point, hit=1)])
            with faults.active(plan):
                with pytest.raises(FaultInjected):
                    pipeline.run(append=appends, delta_id="retry-me")
        resumed = pipeline.run(append=appends, delta_id="retry-me")
        assert _canonical(resumed) == _canonical(_cold(records + appends))

    def test_completed_delta_replay_is_noop(self, base_records, tmp_path):
        """Replaying a fully completed delta serves the stored publication."""
        records = base_records["quest"]
        pipeline = IncrementalPipeline(PARAMS, _stream(tmp_path / "store"))
        pipeline.run(append=records)
        appends = [frozenset({"replay-a", "replay-b"})]
        first = pipeline.run(append=appends, delta_id="once")
        replay = pipeline.run(append=appends, delta_id="once")
        assert _canonical(replay) == _canonical(first)
        assert pipeline.last_report.noop
        assert pipeline.last_report.windows_recomputed == 0


class TestServiceDeltaRetry:
    def test_transient_fault_retried_without_double_apply(self, tmp_path):
        """The service retry of a crashed delta applies the mutation once."""
        records = [
            frozenset({f"t{i}", f"t{i + 1}", f"t{(i * 3) % 17}"}) for i in range(120)
        ]
        config = ServiceConfig(
            k=3,
            m=2,
            max_cluster_size=12,
            shards=3,
            max_records_in_memory=100,
            store_dir=str(tmp_path / "store"),
        )
        with AnonymizationService(config) as service:
            service.run(records, mode="delta")
            appends = [frozenset({"svc-a", "svc-b", f"svc-{i}"}) for i in range(5)]
            # The fault fires inside the first execution attempt's window
            # recompute -- after the mutation committed -- so the retry
            # must skip the mutation and still finish the publication.
            plan = faults.FaultPlan([faults.FaultSpec("stream.window", hit=1)])
            with faults.active(plan):
                result = service.run(appends, mode="delta")
        mutated = records + appends
        assert _canonical(result.publication) == _canonical(_cold(mutated))
        assert result.report.num_records == len(mutated)
        assert result.mode == "delta"

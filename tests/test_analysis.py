"""Unit tests for the analysis toolkit (repro.analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.estimation import SupportEstimator
from repro.analysis.queries import (
    containment_ratio,
    cooccurrence_count,
    frequent_pairs,
    rule_confidence,
    top_terms,
)
from repro.core.clusters import DisassociatedDataset, RecordChunk, SimpleCluster, TermChunk
from repro.core.dataset import TransactionDataset


class TestQueries:
    def test_top_terms(self, tiny_dataset):
        assert top_terms(tiny_dataset, count=2) == [("a", 5), ("b", 5)]

    def test_top_terms_count_clamps(self, tiny_dataset):
        assert len(top_terms(tiny_dataset, count=100)) == 4

    def test_cooccurrence_count(self, tiny_dataset):
        assert cooccurrence_count(tiny_dataset, {"a", "b"}) == 4

    def test_containment_ratio(self, tiny_dataset):
        assert containment_ratio(tiny_dataset, {"a", "b"}) == pytest.approx(4 / 6)

    def test_containment_ratio_empty_dataset(self):
        assert containment_ratio(TransactionDataset([]), {"a"}) == 0.0

    def test_rule_confidence(self, tiny_dataset):
        assert rule_confidence(tiny_dataset, {"a"}, {"b"}) == pytest.approx(4 / 5)

    def test_rule_confidence_undefined(self, tiny_dataset):
        assert rule_confidence(tiny_dataset, {"missing"}, {"b"}) is None

    def test_frequent_pairs(self, tiny_dataset):
        pairs = frequent_pairs(tiny_dataset, min_support=2)
        assert pairs[0] == (("a", "b"), 4)
        assert all(support >= 2 for _pair, support in pairs)


class TestSupportEstimator:
    @pytest.fixture
    def published(self) -> DisassociatedDataset:
        chunk_ab = RecordChunk({"a", "b"}, [{"a", "b"}, {"a", "b"}, {"a"}])
        chunk_c = RecordChunk({"c"}, [{"c"}, {"c"}, {"c"}])
        cluster = SimpleCluster(4, [chunk_ab, chunk_c], TermChunk({"z"}), label="P0")
        return DisassociatedDataset([cluster], k=2, m=2)

    def test_lower_bound_matches_dataset_method(self, published):
        estimator = SupportEstimator(published)
        assert estimator.lower_bound({"a", "b"}) == 2
        assert estimator.lower_bound({"z"}) == 1
        assert estimator.lower_bound({"a", "c"}) == 0

    def test_expected_support_single_term(self, published):
        estimator = SupportEstimator(published)
        assert estimator.expected_support({"a"}) == pytest.approx(3.0)
        assert estimator.expected_support({"c"}) == pytest.approx(3.0)

    def test_expected_support_cross_chunk_pair(self, published):
        estimator = SupportEstimator(published)
        # independence model: 4 * (3/4) * (3/4) = 2.25
        assert estimator.expected_support({"a", "c"}) == pytest.approx(2.25)

    def test_expected_support_term_chunk_term(self, published):
        estimator = SupportEstimator(published)
        assert estimator.expected_support({"z"}) == pytest.approx(1.0)

    def test_expected_support_unknown_term_is_zero(self, published):
        estimator = SupportEstimator(published)
        assert estimator.expected_support({"nope"}) == 0.0

    def test_expected_support_empty_itemset_is_total(self, published):
        estimator = SupportEstimator(published)
        assert estimator.expected_support(set()) == 4.0

    def test_reconstructed_support_between_bounds(self, published):
        estimator = SupportEstimator(published, seed=0)
        value = estimator.reconstructed_support({"a"}, reconstructions=4)
        assert value == pytest.approx(3.0)

    def test_estimates_on_pipeline_output(self, skewed_dataset, skewed_published):
        estimator = SupportEstimator(skewed_published, seed=1)
        for term in list(skewed_published.record_chunk_terms())[:5]:
            original = skewed_dataset.support({term})
            assert estimator.lower_bound({term}) <= original
            assert estimator.expected_support({term}) <= original + 1e-9

    def test_expected_support_on_joint_clusters(self, paper_published):
        estimator = SupportEstimator(paper_published, seed=0)
        # madonna appears in record chunks of both paper clusters
        assert estimator.expected_support({"madonna"}) > 0

"""Unit tests for the transactional dataset substrate (repro.core.dataset)."""

from __future__ import annotations

import pytest

from repro.core.dataset import (
    DatasetStats,
    TransactionDataset,
    jaccard_similarity,
    normalize_record,
)
from repro.exceptions import DatasetError


class TestNormalizeRecord:
    def test_converts_terms_to_strings(self):
        assert normalize_record([1, 2, 3]) == frozenset({"1", "2", "3"})

    def test_deduplicates_terms(self):
        assert normalize_record(["a", "a", "b"]) == frozenset({"a", "b"})

    def test_empty_record_rejected_by_default(self):
        with pytest.raises(DatasetError):
            normalize_record([])

    def test_empty_record_allowed_when_requested(self):
        assert normalize_record([], allow_empty=True) == frozenset()

    def test_non_iterable_record_rejected(self):
        with pytest.raises(DatasetError):
            normalize_record(42)


class TestConstructionAndContainer:
    def test_len_counts_records(self, paper_dataset):
        assert len(paper_dataset) == 10

    def test_iteration_yields_frozensets(self, paper_dataset):
        assert all(isinstance(record, frozenset) for record in paper_dataset)

    def test_indexing_returns_record(self, tiny_dataset):
        assert tiny_dataset[0] == frozenset({"a", "b"})

    def test_slicing_returns_dataset(self, tiny_dataset):
        subset = tiny_dataset[:2]
        assert isinstance(subset, TransactionDataset)
        assert len(subset) == 2

    def test_duplicate_records_are_preserved(self):
        dataset = TransactionDataset([{"x"}, {"x"}])
        assert len(dataset) == 2

    def test_equality_is_order_sensitive(self):
        a = TransactionDataset([{"x"}, {"y"}])
        b = TransactionDataset([{"y"}, {"x"}])
        assert a != b
        assert a == TransactionDataset([{"x"}, {"y"}])

    def test_records_property_is_immutable_copy(self, tiny_dataset):
        records = tiny_dataset.records
        assert isinstance(records, tuple)
        assert len(records) == len(tiny_dataset)

    def test_empty_record_in_input_raises(self):
        with pytest.raises(DatasetError):
            TransactionDataset([{"a"}, set()])

    def test_repr_mentions_size_and_domain(self, tiny_dataset):
        assert "n=6" in repr(tiny_dataset)


class TestDomainAndSupports:
    def test_domain_is_union_of_terms(self, tiny_dataset):
        assert tiny_dataset.domain == frozenset({"a", "b", "c", "d"})

    def test_term_supports_counts_records(self, tiny_dataset):
        supports = tiny_dataset.term_supports()
        assert supports["a"] == 5
        assert supports["b"] == 5
        assert supports["c"] == 3
        assert supports["d"] == 1

    def test_term_supports_returns_copy(self, tiny_dataset):
        supports = tiny_dataset.term_supports()
        supports["a"] = 999
        assert tiny_dataset.term_supports()["a"] == 5

    def test_support_of_pair(self, tiny_dataset):
        assert tiny_dataset.support({"a", "b"}) == 4

    def test_support_of_missing_combination_is_zero(self, tiny_dataset):
        assert tiny_dataset.support({"c", "d"}) == 0

    def test_support_of_empty_itemset_is_dataset_size(self, tiny_dataset):
        assert tiny_dataset.support(set()) == len(tiny_dataset)

    def test_support_of_unknown_term_is_zero(self, tiny_dataset):
        assert tiny_dataset.support({"zzz"}) == 0

    def test_terms_by_support_descending(self, tiny_dataset):
        ordered = tiny_dataset.terms_by_support()
        assert ordered[0] in {"a", "b"}
        assert ordered[-1] == "d"

    def test_terms_by_support_ascending(self, tiny_dataset):
        ordered = tiny_dataset.terms_by_support(descending=False)
        assert ordered[0] == "d"

    def test_most_frequent_term(self, tiny_dataset):
        assert tiny_dataset.most_frequent_term() == "a"  # tie a/b broken alphabetically

    def test_most_frequent_term_with_exclusion(self, tiny_dataset):
        assert tiny_dataset.most_frequent_term(exclude={"a"}) == "b"

    def test_most_frequent_term_all_excluded(self, tiny_dataset):
        assert tiny_dataset.most_frequent_term(exclude=tiny_dataset.domain) is None


class TestStats:
    def test_stats_match_paper_format(self, paper_dataset):
        stats = paper_dataset.stats()
        assert stats.num_records == 10
        assert stats.domain_size == 12
        assert stats.max_record_size == 6
        assert stats.avg_record_size == pytest.approx(4.4, abs=0.01)

    def test_stats_of_empty_dataset(self):
        assert TransactionDataset([]).stats() == DatasetStats(0, 0, 0, 0.0)

    def test_stats_row_rendering(self, paper_dataset):
        row = paper_dataset.stats().as_row()
        assert "|D|=10" in row and "|T|=12" in row


class TestTransformations:
    def test_project_keeps_only_given_terms(self, tiny_dataset):
        projected = tiny_dataset.project({"a"})
        assert projected.domain == frozenset({"a"})
        assert len(projected) == len(tiny_dataset)

    def test_project_keeps_empty_projections(self, tiny_dataset):
        projected = tiny_dataset.project({"d"})
        assert sum(1 for record in projected if not record) == 5

    def test_split_on_term_partitions_records(self, tiny_dataset):
        with_a, without_a = tiny_dataset.split_on_term("a")
        assert len(with_a) == 5
        assert len(without_a) == 1
        assert all("a" in record for record in with_a)
        assert all("a" not in record for record in without_a)

    def test_split_preserves_total(self, paper_dataset):
        with_term, without_term = paper_dataset.split_on_term("madonna")
        assert len(with_term) + len(without_term) == len(paper_dataset)

    def test_filter_records(self, tiny_dataset):
        filtered = tiny_dataset.filter_records(lambda r: "d" in r)
        assert len(filtered) == 1

    def test_sample_is_deterministic_given_seed(self, paper_dataset):
        assert paper_dataset.sample(4, seed=1) == paper_dataset.sample(4, seed=1)

    def test_sample_larger_than_dataset_returns_all(self, tiny_dataset):
        assert len(tiny_dataset.sample(100, seed=0)) == len(tiny_dataset)

    def test_shuffled_preserves_multiset_of_records(self, paper_dataset):
        shuffled = paper_dataset.shuffled(seed=3)
        assert sorted(map(sorted, shuffled)) == sorted(map(sorted, paper_dataset))

    def test_concat_appends_records(self, tiny_dataset):
        combined = tiny_dataset.concat(tiny_dataset)
        assert len(combined) == 2 * len(tiny_dataset)

    def test_without_terms_drops_empty_records(self):
        dataset = TransactionDataset([{"a"}, {"a", "b"}])
        reduced = dataset.without_terms({"a"})
        assert len(reduced) == 1
        assert reduced[0] == frozenset({"b"})

    def test_non_empty_filters_empty_projections(self, tiny_dataset):
        projected = tiny_dataset.project({"d"})
        assert len(projected.non_empty()) == 1

    def test_to_lists_round_trip(self, paper_dataset):
        rebuilt = TransactionDataset.from_lists(paper_dataset.to_lists())
        assert rebuilt == paper_dataset

    def test_to_lists_sorts_terms(self, tiny_dataset):
        for row in tiny_dataset.to_lists():
            assert row == sorted(row)


class TestJaccard:
    def test_identical_records(self):
        assert jaccard_similarity({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_records(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert jaccard_similarity({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard_similarity(set(), set()) == 1.0

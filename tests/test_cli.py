"""Tests for the ``repro-anon`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets.io import read_transactions, write_transactions


@pytest.fixture
def transactions_file(paper_dataset, tmp_path):
    path = tmp_path / "data.txt"
    write_transactions(paper_dataset, path, delimiter="|")
    # rewrite with the default (space) delimiter expected by the CLI
    path.write_text(
        "\n".join(" ".join(sorted(t.replace(" ", "_") for t in record)) for record in paper_dataset)
        + "\n"
    )
    return path


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for command in ("anonymize", "reconstruct", "evaluate", "generate", "audit"):
            args = {"anonymize": ["anonymize", "in", "--output", "out"],
                    "reconstruct": ["reconstruct", "in", "--output", "out"],
                    "evaluate": ["evaluate", "orig", "pub"],
                    "generate": ["generate", "--output", "out"],
                    "audit": ["audit", "in"]}[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_quest(self, tmp_path, capsys):
        output = tmp_path / "synthetic.txt"
        code = main(
            ["generate", "--output", str(output), "--records", "200", "--domain", "50", "--seed", "1"]
        )
        assert code == 0
        assert len(read_transactions(output)) == 200
        assert "wrote 200 records" in capsys.readouterr().out

    def test_generate_proxy_profile(self, tmp_path):
        output = tmp_path / "wv1.txt"
        code = main(
            ["generate", "--output", str(output), "--profile", "WV1", "--scale", "0.005", "--seed", "2"]
        )
        assert code == 0
        assert len(read_transactions(output)) > 100

    def test_anonymize_evaluate_reconstruct_audit_round_trip(
        self, transactions_file, tmp_path, capsys
    ):
        published_path = tmp_path / "published.json"
        code = main(
            [
                "anonymize",
                str(transactions_file),
                "--output",
                str(published_path),
                "--k",
                "3",
                "--m",
                "2",
                "--max-cluster-size",
                "6",
            ]
        )
        assert code == 0
        assert published_path.exists()
        assert "anonymized 10 records" in capsys.readouterr().out

        assert main(["audit", str(published_path)]) == 0
        assert "passed" in capsys.readouterr().out

        code = main(
            ["evaluate", str(transactions_file), str(published_path), "--top-k", "20"]
        )
        assert code == 0
        metrics = json.loads(capsys.readouterr().out)
        assert set(metrics) == {"tkd_a", "tkd", "re_a", "re", "tlost"}

        world_path = tmp_path / "world.txt"
        code = main(["reconstruct", str(published_path), "--output", str(world_path), "--seed", "4"])
        assert code == 0
        assert len(read_transactions(world_path)) == 10

    def test_anonymize_no_refine_flag(self, transactions_file, tmp_path):
        published_path = tmp_path / "published.json"
        code = main(
            [
                "anonymize",
                str(transactions_file),
                "--output",
                str(published_path),
                "--k",
                "3",
                "--max-cluster-size",
                "6",
                "--no-refine",
            ]
        )
        assert code == 0
        payload = json.loads(published_path.read_text())
        assert all(cluster["type"] == "simple" for cluster in payload["clusters"])

    def test_missing_input_returns_error_code(self, tmp_path, capsys):
        code = main(["anonymize", str(tmp_path / "missing.txt"), "--output", str(tmp_path / "o.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_audit_missing_file_returns_error_code(self, tmp_path):
        assert main(["audit", str(tmp_path / "missing.json")]) == 2

"""Service-hardening tests: deadlines, bounded retry, engine replacement.

The contract under test, per the operations runbook (docs/OPERATIONS.md):

* a request's **deadline** (per-request ``deadline`` or the service's
  ``default_deadline``) starts at enqueue, is enforced at dequeue and at
  every pipeline phase boundary, and surfaces as
  :class:`DeadlineExceededError` (HTTP ``504``, kind
  ``deadline_exceeded``), counted once in ``stats()["failures"]``;
* **transient failures** (a crashed worker-process pool, injected
  transient faults) are retried under the config's :class:`RetryPolicy`
  with exponential backoff, but only for replayable sources; the last
  failure surfaces as :class:`RetriesExhaustedError` (HTTP ``503`` +
  ``Retry-After``, kind ``retries_exhausted``);
* a :class:`BrokenProcessPool` **replaces the crashed engine** before it
  could ever rejoin the idle pool, so the request after a crash runs on a
  healthy engine (the PR's pool-poisoning regression);
* every HTTP error body carries a machine-readable ``kind`` and oversized
  bodies answer ``413`` under a configurable cap.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import faults
from repro.datasets.quest import generate_quest
from repro.exceptions import (
    DeadlineExceededError,
    FaultInjected,
    ParameterError,
    RetriesExhaustedError,
)
from repro.service import (
    AnonymizationService,
    RetryPolicy,
    ServiceConfig,
    ServiceHTTPServer,
)

CONFIG = ServiceConfig(k=3, m=2, max_cluster_size=10, retry="attempts=2,backoff=0")


@pytest.fixture()
def dataset():
    return generate_quest(
        num_transactions=150, domain_size=40, avg_transaction_size=5.0, seed=2
    )


@pytest.fixture()
def service():
    svc = AnonymizationService(CONFIG)
    yield svc
    svc.close()


def http(base: str, method: str, path: str, payload=None, raw=None, timeout=60):
    """One HTTP round-trip; returns ``(status, decoded-json, headers)``."""
    if raw is not None:
        data = raw
    else:
        data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.load(response), dict(response.headers)
    except urllib.error.HTTPError as error:
        return (
            error.code,
            json.loads(error.read().decode("utf-8")),
            dict(error.headers),
        )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ParameterError):
            RetryPolicy(backoff=-1.0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(attempts=5, backoff=0.1, multiplier=2.0, max_backoff=0.35)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped

    def test_round_trips(self):
        policy = RetryPolicy.from_text("attempts=3,backoff=0.5")
        assert policy.attempts == 3
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert ServiceConfig(retry="attempts=3,backoff=0.5").retry == policy


class TestDeadlines:
    def test_request_validation(self, service, dataset):
        with pytest.raises(ParameterError):
            service.run(dataset, deadline=0)

    def test_expired_at_dequeue(self, service, dataset):
        with pytest.raises(DeadlineExceededError):
            service.run(dataset, deadline=1e-9)
        assert service.stats()["failures"]["deadline_exceeded"] == 1

    def test_generous_deadline_passes(self, service, dataset):
        result = service.run(dataset, deadline=300.0)
        assert result.publication.clusters
        assert service.stats()["failures"]["deadline_exceeded"] == 0

    def test_default_deadline_from_config(self, dataset):
        with AnonymizationService(
            ServiceConfig(k=3, max_cluster_size=10, default_deadline=1e-9)
        ) as svc:
            with pytest.raises(DeadlineExceededError):
                svc.run(dataset)
            # a per-request deadline overrides the unworkable default
            assert svc.run(dataset, deadline=300.0).publication.clusters

    def test_queued_job_deadline(self, service, dataset):
        job = service.submit(dataset, deadline=1e-9)
        with pytest.raises(DeadlineExceededError):
            job.result(timeout=60)


class TestRetries:
    def test_transient_fault_is_retried_to_success(self, service, dataset):
        plan = faults.FaultPlan([faults.FaultSpec("service.execute", hit=1)])
        with faults.active(plan):
            result = service.run(dataset)
        assert result.publication.clusters
        failures = service.stats()["failures"]
        assert failures["retries"] == 1
        assert failures["retries_exhausted"] == 0

    def test_persistent_fault_exhausts_retries(self, service, dataset):
        plan = faults.FaultPlan(
            [faults.FaultSpec("service.execute", probability=1.0)]
        )
        with faults.active(plan):
            with pytest.raises(RetriesExhaustedError) as excinfo:
                service.run(dataset)
        assert excinfo.value.attempts == 2
        failures = service.stats()["failures"]
        assert failures["retries_exhausted"] == 1
        assert failures["retries"] == 1

    def test_non_transient_fault_is_not_retried(self, service, dataset):
        plan = faults.FaultPlan(
            [faults.FaultSpec("service.execute", hit=1, transient=False)]
        )
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                service.run(dataset)
        assert service.stats()["failures"]["retries"] == 0

    def test_consumed_iterator_is_not_replayed(self, service, dataset):
        plan = faults.FaultPlan([faults.FaultSpec("service.execute", hit=1)])
        with faults.active(plan):
            with pytest.raises(FaultInjected):
                service.run(iter(list(dataset)), mode="stream")
        assert service.stats()["failures"]["retries"] == 0

    def test_retry_output_matches_clean_run(self, service, dataset):
        clean = service.run(dataset)
        plan = faults.FaultPlan([faults.FaultSpec("service.execute", hit=1)])
        with faults.active(plan):
            retried = service.run(dataset)
        assert json.dumps(retried.to_dict(), sort_keys=True) == json.dumps(
            clean.to_dict(), sort_keys=True
        )


class TestEngineReplacement:
    def test_broken_pool_rebuilds_engine(self, service, dataset, monkeypatch):
        """The pool-poisoning regression: after a BrokenProcessPool the
        crashed engine must never rejoin the idle pool -- the request
        retries on a replacement and later requests keep succeeding."""
        crashed_engines = []
        original = AnonymizationService._execute_once

        def crash_once(self, request, config, lease, state):
            if not crashed_engines:
                crashed_engines.append(lease.engine)
                raise BrokenProcessPool("simulated worker-pool crash")
            return original(self, request, config, lease, state)

        monkeypatch.setattr(AnonymizationService, "_execute_once", crash_once)
        result = service.run(dataset)
        assert result.publication.clusters
        failures = service.stats()["failures"]
        assert failures["engines_rebuilt"] == 1
        assert failures["retries"] == 1
        # the crashed engine is gone from the pool: nothing holds it
        assert all(engine is not crashed_engines[0] for engine in service._engines)
        # and the service stays healthy for subsequent requests
        assert service.run(dataset).publication.clusters

    def test_broken_pool_without_retryable_source_still_rebuilds(
        self, service, dataset, monkeypatch
    ):
        def always_crash(self, request, config, lease, state):
            raise BrokenProcessPool("simulated worker-pool crash")

        monkeypatch.setattr(AnonymizationService, "_execute_once", always_crash)
        with pytest.raises(RetriesExhaustedError):
            service.run(dataset)
        monkeypatch.undo()
        # both attempts crashed -> two rebuilds, and the pool is healthy
        assert service.stats()["failures"]["engines_rebuilt"] == 2
        assert service.run(dataset).publication.clusters


class TestHTTPFailureContract:
    @pytest.fixture()
    def served(self):
        service = AnonymizationService(CONFIG)
        server = ServiceHTTPServer(
            service, port=0, max_body_bytes=4096
        ).start()
        yield server
        server.close()

    RECORDS = [["a", "b", "c"], ["a", "b", "d"], ["a", "c", "d"]] * 4

    def test_deadline_maps_to_504(self, served):
        status, body, _ = http(
            served.url,
            "POST",
            "/anonymize",
            {"records": self.RECORDS, "deadline": 1e-9, "overrides": {"k": 2}},
        )
        assert status == 504
        assert body["kind"] == "deadline_exceeded"
        assert "deadline" in body["error"]

    def test_retries_exhausted_maps_to_503_with_retry_after(self, served):
        plan = faults.FaultPlan(
            [faults.FaultSpec("service.execute", probability=1.0)]
        )
        with faults.active(plan):
            status, body, headers = http(
                served.url,
                "POST",
                "/anonymize",
                {"records": self.RECORDS, "overrides": {"k": 2}},
            )
        assert status == 503
        assert body["kind"] == "retries_exhausted"
        assert headers.get("Retry-After") == "1"

    def test_failed_async_job_carries_kind(self, served):
        plan = faults.FaultPlan(
            [faults.FaultSpec("service.execute", probability=1.0)]
        )
        with faults.active(plan):
            status, body, _ = http(
                served.url,
                "POST",
                "/anonymize",
                {"records": self.RECORDS, "async": True, "overrides": {"k": 2}},
            )
            assert status == 202
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status, job, _ = http(served.url, "GET", body["href"])
                if job["state"] in ("failed", "done"):
                    break
                time.sleep(0.02)
        assert job["state"] == "failed"
        assert job["kind"] == "retries_exhausted"

    def test_oversize_body_maps_to_413(self, served):
        status, body, _ = http(
            served.url, "POST", "/anonymize", raw=b"x" * 8192
        )
        assert status == 413
        assert body["kind"] == "too_large"

    def test_bad_request_kinds(self, served):
        status, body, _ = http(
            served.url, "POST", "/anonymize", {"records": self.RECORDS, "resume": True}
        )
        assert (status, body["kind"]) == (400, "bad_request")
        status, body, _ = http(served.url, "GET", "/nope")
        assert (status, body["kind"]) == (404, "not_found")
        status, body, _ = http(served.url, "GET", "/anonymize")
        assert (status, body["kind"]) == (405, "method_not_allowed")

    def test_stats_exposes_failure_counters(self, served):
        http(
            served.url,
            "POST",
            "/anonymize",
            {"records": self.RECORDS, "deadline": 1e-9, "overrides": {"k": 2}},
        )
        _, stats, _ = http(served.url, "GET", "/stats")
        assert stats["failures"]["deadline_exceeded"] == 1
        assert set(stats["failures"]) == {
            "retries",
            "deadline_exceeded",
            "retries_exhausted",
            "engines_rebuilt",
        }

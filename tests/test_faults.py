"""Unit tests for the deterministic fault-injection harness (``repro.faults``).

The resilience suites (``test_resilience.py``, ``test_service_resilience.py``)
exercise the harness end-to-end through the pipelines; this file pins down
the harness itself: trigger semantics, determinism across processes, the
``$REPRO_FAULTS`` grammar, and the arming lifecycle.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.exceptions import FaultInjected, ParameterError


class TestFaultSpec:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ParameterError):
            faults.FaultSpec("stream.merge")
        with pytest.raises(ParameterError):
            faults.FaultSpec("stream.merge", hit=1, probability=0.5)

    def test_hit_is_one_based(self):
        with pytest.raises(ParameterError):
            faults.FaultSpec("stream.merge", hit=0)
        assert faults.FaultSpec("stream.merge", hit=1).hit == 1

    def test_probability_bounds(self):
        with pytest.raises(ParameterError):
            faults.FaultSpec("stream.merge", probability=0.0)
        with pytest.raises(ParameterError):
            faults.FaultSpec("stream.merge", probability=1.5)
        assert faults.FaultSpec("stream.merge", probability=1.0).probability == 1.0


class TestFaultPlan:
    def test_nth_hit_fires_exactly_once(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", hit=3)])
        plan.check("p")
        plan.check("p")
        with pytest.raises(FaultInjected) as excinfo:
            plan.check("p")
        assert excinfo.value.point == "p"
        assert excinfo.value.hit == 3
        assert excinfo.value.transient is True
        # the trigger is Nth-hit, not every-hit-from-N: later arrivals pass
        plan.check("p")
        assert plan.hits("p") == 4

    def test_unknown_points_are_free(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", hit=1)])
        plan.check("q")  # no trigger, no counter bump requirement
        with pytest.raises(FaultInjected):
            plan.check("p")

    def test_non_transient_flag_carries(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", hit=1, transient=False)])
        with pytest.raises(FaultInjected) as excinfo:
            plan.check("p")
        assert excinfo.value.transient is False

    def test_probability_is_deterministic_per_seed(self):
        def fire_pattern(seed):
            plan = faults.FaultPlan(
                [faults.FaultSpec("p", probability=0.5)], seed=seed
            )
            pattern = []
            for _ in range(32):
                try:
                    plan.check("p")
                    pattern.append(False)
                except FaultInjected:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert fire_pattern(7) != fire_pattern(8)
        assert any(fire_pattern(7))

    def test_reset_rearms_counters(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", hit=2)])
        plan.check("p")
        with pytest.raises(FaultInjected):
            plan.check("p")
        plan.reset()
        plan.check("p")  # first arrival again
        with pytest.raises(FaultInjected):
            plan.check("p")

    def test_describe_is_json_safe_summary(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec("a", hit=1), faults.FaultSpec("b", probability=0.5)],
            seed=3,
        )
        try:
            plan.check("a")
        except FaultInjected:
            pass
        summary = plan.describe()
        assert summary["seed"] == 3
        assert set(summary["triggers"]) == {"a", "b"}
        assert summary["hits"] == {"a": 1}


class TestFromText:
    def test_grammar(self):
        plan = faults.FaultPlan.from_text("stream.merge:2, engine.refine@0.25,p")
        assert plan.points() == ["engine.refine", "p", "stream.merge"]
        with pytest.raises(FaultInjected):  # bare token means first hit
            plan.check("p")

    def test_malformed_triggers_rejected(self):
        with pytest.raises(ParameterError):
            faults.FaultPlan.from_text("stream.merge:soon")
        with pytest.raises(ParameterError):
            faults.FaultPlan.from_text("stream.merge@often")

    def test_empty_text_yields_empty_plan(self):
        assert faults.FaultPlan.from_text("").points() == []


class TestEnvArming:
    def test_plan_from_env(self):
        plan = faults.plan_from_env(
            {faults.ENV_VAR: "stream.window:2", faults.ENV_SEED_VAR: "9"}
        )
        assert plan is not None
        assert plan.points() == ["stream.window"]
        assert plan.seed == 9

    def test_unset_or_blank_disarms(self):
        assert faults.plan_from_env({}) is None
        assert faults.plan_from_env({faults.ENV_VAR: "  "}) is None


class TestLifecycle:
    def test_checks_are_noops_without_a_plan(self):
        previous = faults.active_plan()
        faults.clear()
        try:
            for point in faults.INJECTION_POINTS:
                faults.check(point)
        finally:
            faults.install(previous)

    def test_active_scopes_and_restores(self):
        previous = faults.active_plan()
        plan = faults.FaultPlan([faults.FaultSpec("p", hit=1)])
        with faults.active(plan):
            assert faults.active_plan() is plan
            with pytest.raises(FaultInjected):
                faults.check("p")
        assert faults.active_plan() is previous

    def test_injection_point_registry_matches_plan_points(self):
        # every documented point parses and arms cleanly
        text = ",".join(f"{point}:1" for point in faults.INJECTION_POINTS)
        plan = faults.FaultPlan.from_text(text)
        assert plan.points() == sorted(faults.INJECTION_POINTS)

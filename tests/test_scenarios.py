"""Tests for the synthetic scenario generators (``repro.datasets.scenarios``)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.datasets.scenarios import (
    SCENARIOS,
    generate_clickstream,
    generate_zipf_basket,
)
from repro.exceptions import ParameterError


class TestZipfBasket:
    def test_shape_and_determinism(self):
        a = generate_zipf_basket(num_transactions=400, domain_size=100, seed=9)
        b = generate_zipf_basket(num_transactions=400, domain_size=100, seed=9)
        assert len(a) == 400
        assert a.domain <= {f"sku{i}" for i in range(100)}
        assert list(a) == list(b)
        assert list(a) != list(
            generate_zipf_basket(num_transactions=400, domain_size=100, seed=10)
        )

    def test_popularity_is_skewed(self):
        dataset = generate_zipf_basket(
            num_transactions=600, domain_size=200, zipf_exponent=1.3, seed=0
        )
        supports = dataset.term_supports()
        head = sum(supports.get(f"sku{i}", 0) for i in range(10))
        # with a Zipf catalogue the top-10 items dominate the tail
        assert head > sum(supports.values()) * 0.2

    def test_invalid_params_rejected(self):
        with pytest.raises(ParameterError):
            generate_zipf_basket(num_transactions=0)
        with pytest.raises(ParameterError):
            generate_zipf_basket(zipf_exponent=0.0)


class TestClickstream:
    def test_shape_and_determinism(self):
        a = generate_clickstream(num_sessions=300, num_pages=120, num_sections=6, seed=4)
        b = generate_clickstream(num_sessions=300, num_pages=120, num_sections=6, seed=4)
        assert len(a) == 300
        assert list(a) == list(b)

    def test_sessions_have_section_locality(self):
        pages_per_section = 20
        dataset = generate_clickstream(
            num_sessions=400,
            num_pages=120,
            num_sections=6,
            jump_probability=0.1,
            seed=0,
        )
        home_share = []
        for session in dataset:
            sections = Counter(int(page[4:]) // pages_per_section for page in session)
            home_share.append(max(sections.values()) / len(session))
        # most clicks of most sessions stay in the home section
        assert sum(home_share) / len(home_share) > 0.7

    def test_invalid_params_rejected(self):
        with pytest.raises(ParameterError):
            generate_clickstream(num_sections=0)
        with pytest.raises(ParameterError):
            generate_clickstream(jump_probability=1.5)


def test_scenario_registry():
    assert set(SCENARIOS) == {"ZIPF", "CLICKSTREAM"}
    for generator in SCENARIOS.values():
        assert callable(generator)

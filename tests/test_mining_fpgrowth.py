"""Unit tests for the FP-growth miner, cross-checked against Apriori."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.exceptions import MiningError
from repro.mining import apriori, fpgrowth


class TestFPGrowthCorrectness:
    def test_matches_apriori_on_paper_dataset(self, paper_dataset):
        for min_support in (2, 3, 4):
            assert fpgrowth.mine_frequent_itemsets(
                paper_dataset, min_support
            ) == apriori.mine_frequent_itemsets(paper_dataset, min_support)

    def test_matches_apriori_on_skewed_dataset(self, skewed_dataset):
        assert fpgrowth.mine_frequent_itemsets(
            skewed_dataset, min_support=6, max_size=3
        ) == apriori.mine_frequent_itemsets(skewed_dataset, min_support=6, max_size=3)

    def test_matches_apriori_with_max_size(self, paper_dataset):
        assert fpgrowth.mine_frequent_itemsets(
            paper_dataset, min_support=2, max_size=2
        ) == apriori.mine_frequent_itemsets(paper_dataset, min_support=2, max_size=2)

    def test_singleton_supports_are_exact(self, tiny_dataset):
        frequent = fpgrowth.mine_frequent_itemsets(tiny_dataset, min_support=1)
        supports = tiny_dataset.term_supports()
        for term, support in supports.items():
            assert frequent[(term,)] == support

    def test_pair_supports_are_exact(self, tiny_dataset):
        frequent = fpgrowth.mine_frequent_itemsets(tiny_dataset, min_support=1, max_size=2)
        assert frequent[("a", "b")] == tiny_dataset.support({"a", "b"})

    def test_empty_dataset(self):
        assert fpgrowth.mine_frequent_itemsets(TransactionDataset([]), min_support=1) == {}

    def test_high_threshold_returns_nothing(self, tiny_dataset):
        assert fpgrowth.mine_frequent_itemsets(tiny_dataset, min_support=100) == {}

    def test_invalid_parameters_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            fpgrowth.mine_frequent_itemsets(tiny_dataset, min_support=0)
        with pytest.raises(MiningError):
            fpgrowth.mine_frequent_itemsets(tiny_dataset, min_support=1, max_size=0)


class TestFPGrowthTopK:
    def test_matches_apriori_top_k(self, paper_dataset):
        assert fpgrowth.mine_top_k(paper_dataset, top_k=12, max_size=2) == apriori.mine_top_k(
            paper_dataset, top_k=12, max_size=2
        )

    def test_empty_dataset_returns_empty(self):
        assert fpgrowth.mine_top_k(TransactionDataset([]), top_k=3) == []

    def test_invalid_top_k_rejected(self, tiny_dataset):
        with pytest.raises(MiningError):
            fpgrowth.mine_top_k(tiny_dataset, top_k=0)

"""End-to-end integration tests across modules.

Each test exercises a realistic workflow: generate data, anonymize it,
serialize / deserialize the publication, reconstruct worlds, evaluate the
information loss and compare with a baseline — i.e. the way a downstream
user would actually drive the library.
"""

from __future__ import annotations

import pytest

from repro.analysis.estimation import SupportEstimator
from repro.analysis.queries import rule_confidence, top_terms
from repro.baselines.diffpart import publish_with_diffpart
from repro.baselines.suppression import anonymize_with_suppression
from repro.core.clusters import DisassociatedDataset
from repro.core.engine import AnonymizationParams, Disassociator, anonymize
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.core.verification import audit, verify_km_anonymity
from repro.datasets.io import read_disassociated_json, write_disassociated_json
from repro.datasets.quest import generate_quest
from repro.datasets.real_proxies import load_proxy
from repro.metrics import tkd_reconstructed, tlost, top_k_deviation


@pytest.fixture(scope="module")
def quest_dataset():
    return generate_quest(num_transactions=600, domain_size=150, avg_transaction_size=6, seed=11)


@pytest.fixture(scope="module")
def quest_published(quest_dataset):
    params = AnonymizationParams(k=4, m=2, max_cluster_size=25)
    return Disassociator(params).anonymize(quest_dataset)


class TestQuestWorkflow:
    def test_publication_is_audited_clean(self, quest_published):
        assert audit(quest_published).ok

    def test_serialization_round_trip_preserves_guarantee(self, quest_published, tmp_path):
        path = tmp_path / "published.json"
        write_disassociated_json(quest_published, path)
        loaded = read_disassociated_json(path)
        verify_km_anonymity(loaded)
        assert loaded.total_records() == quest_published.total_records()

    def test_reconstruction_statistics_are_close_to_original(self, quest_dataset, quest_published):
        world = reconstruct(quest_published, seed=0)
        original_top = [term for term, _s in top_terms(quest_dataset, count=10)]
        world_top = [term for term, _s in top_terms(world, count=10)]
        overlap = len(set(original_top) & set(world_top))
        assert overlap >= 7

    def test_tkd_on_reconstruction_is_low(self, quest_dataset, quest_published):
        value = tkd_reconstructed(quest_dataset, quest_published, top_k=50, max_size=2, seed=1)
        assert value <= 0.35

    def test_tlost_is_moderate(self, quest_dataset, quest_published):
        assert tlost(quest_dataset, quest_published) <= 0.6

    def test_support_estimates_bracket_reality(self, quest_dataset, quest_published):
        estimator = SupportEstimator(quest_published, seed=2)
        frequent_terms = quest_dataset.terms_by_support()[:10]
        for term in frequent_terms:
            actual = quest_dataset.support({term})
            assert estimator.lower_bound({term}) <= actual
            assert estimator.expected_support({term}) <= actual + 1e-6

    def test_rule_confidence_is_answerable_on_reconstruction(self, quest_dataset, quest_published):
        world = reconstruct(quest_published, seed=3)
        a, b = quest_dataset.terms_by_support()[:2]
        original = rule_confidence(quest_dataset, {a}, {b})
        approximated = rule_confidence(world, {a}, {b})
        if original is not None and approximated is not None:
            assert abs(original - approximated) <= 0.5


class TestProxyWorkflow:
    @pytest.fixture(scope="class")
    def proxy(self):
        return load_proxy("WV1", scale=0.004, seed=5, domain_scale=0.1)

    def test_anonymize_verify_and_measure(self, proxy):
        published = anonymize(proxy, k=5, m=2, max_cluster_size=30)
        assert audit(published).ok
        assert published.total_records() == len(proxy)
        deviation = tkd_reconstructed(proxy, published, top_k=50, max_size=2, seed=0)
        assert 0.0 <= deviation <= 1.0

    def test_disassociation_beats_diffpart_on_tkd(self, proxy):
        """The headline comparison of Figure 11a, at test scale."""
        published = anonymize(proxy, k=5, m=2, max_cluster_size=30)
        disassociation_tkd = tkd_reconstructed(proxy, published, top_k=50, max_size=2, seed=0)
        diffpart = publish_with_diffpart(proxy, epsilon=1.0, seed=0)
        diffpart_tkd = top_k_deviation(proxy, diffpart.dataset, top_k=50, max_size=2)
        assert disassociation_tkd < diffpart_tkd

    def test_disassociation_preserves_more_terms_than_suppression(self, proxy):
        sample = proxy.sample(250, seed=1)
        published = anonymize(sample, k=5, m=2, max_cluster_size=30)
        suppressed = anonymize_with_suppression(sample, k=5, m=2)
        assert len(published.domain()) >= len(suppressed.dataset.domain)


class TestMultipleReconstructions:
    def test_reconstructions_are_distinct_but_consistent(self, quest_published):
        reconstructor = Reconstructor(quest_published, seed=9)
        worlds = reconstructor.reconstruct_many(3)
        sizes = {len(world) for world in worlds}
        assert sizes == {quest_published.total_records()}
        serialized = {tuple(sorted(map(tuple, world.to_lists()))) for world in worlds}
        assert len(serialized) > 1

    def test_deserialized_publication_reconstructs_identically(self, quest_published, tmp_path):
        path = tmp_path / "p.json"
        write_disassociated_json(quest_published, path)
        loaded = read_disassociated_json(path)
        a = reconstruct(quest_published, seed=13)
        b = reconstruct(loaded, seed=13)
        # same seed, same structure: identical multiset of records
        assert sorted(map(sorted, a)) == sorted(map(sorted, b))

    def test_publication_dict_is_json_serializable(self, quest_published):
        import json

        payload = json.dumps(quest_published.to_dict())
        assert DisassociatedDataset.from_dict(json.loads(payload)).k == quest_published.k

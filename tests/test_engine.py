"""Unit and integration tests for the end-to-end engine (repro.core.engine)."""

from __future__ import annotations

import pytest

from repro.core.dataset import TransactionDataset
from repro.core.engine import AnonymizationParams, Disassociator, anonymize
from repro.core.verification import audit
from repro.exceptions import ParameterError
from tests.conftest import make_uniform_dataset


class TestAnonymizationParams:
    def test_defaults_match_paper(self):
        params = AnonymizationParams()
        assert params.k == 5 and params.m == 2

    @pytest.mark.parametrize("kwargs", [
        {"k": 0},
        {"m": 0},
        {"max_cluster_size": 1},
        {"k": 10, "max_cluster_size": 10},
        {"max_cluster_size": 30, "max_join_size": 10},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ParameterError):
            AnonymizationParams(**kwargs)

    def test_sensitive_terms_normalized_to_strings(self):
        params = AnonymizationParams(sensitive_terms={1, "x"})
        assert params.sensitive_terms == frozenset({"1", "x"})

    def test_params_are_frozen(self):
        params = AnonymizationParams()
        with pytest.raises(AttributeError):
            params.k = 10


class TestDisassociator:
    def test_output_is_km_anonymous(self, paper_dataset):
        published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert audit(published).ok

    def test_total_records_preserved(self, paper_dataset):
        published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert published.total_records() == len(paper_dataset)

    def test_all_original_terms_published(self, paper_dataset):
        published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert published.domain() == paper_dataset.domain

    def test_parameters_recorded_on_output(self, paper_dataset):
        published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert published.k == 3 and published.m == 2

    def test_report_is_filled(self, paper_dataset):
        engine = Disassociator(AnonymizationParams(k=3, m=2, max_cluster_size=6))
        engine.anonymize(paper_dataset)
        report = engine.last_report
        assert report.num_records == 10
        assert report.num_clusters >= 1
        assert report.total_seconds >= 0

    def test_refine_disabled_produces_only_simple_clusters(self, paper_dataset):
        from repro.core.clusters import SimpleCluster

        published = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6, refine=False)
        assert all(isinstance(c, SimpleCluster) for c in published.clusters)
        assert audit(published).ok

    def test_higher_k_pushes_more_terms_to_term_chunks(self):
        dataset = make_uniform_dataset(80, domain=25, record_length=5, seed=11)
        loose = anonymize(dataset, k=2, m=2, max_cluster_size=20)
        strict = anonymize(dataset, k=8, m=2, max_cluster_size=20)
        assert len(strict.record_chunk_terms()) <= len(loose.record_chunk_terms())

    def test_m_of_one_reduces_to_per_term_threshold(self, paper_dataset):
        published = anonymize(paper_dataset, k=3, m=1, max_cluster_size=12)
        assert audit(published).ok

    def test_single_record_dataset(self):
        published = anonymize(TransactionDataset([{"a", "b"}]), k=2, m=2, max_cluster_size=5)
        assert published.total_records() == 1
        # a single record can never reach support 2: everything is disassociated
        assert published.record_chunk_terms() == frozenset()
        assert audit(published).ok

    def test_duplicate_records_dataset(self):
        published = anonymize(TransactionDataset([{"a", "b"}] * 10), k=3, m=2, max_cluster_size=6)
        assert audit(published).ok
        assert published.lower_bound_support({"a", "b"}) >= 3

    def test_uniform_dataset_end_to_end(self):
        dataset = make_uniform_dataset(120, domain=40, record_length=4, seed=5)
        published = anonymize(dataset, k=4, m=2, max_cluster_size=25)
        assert audit(published).ok
        assert published.total_records() == 120

    def test_anonymize_function_matches_class_api(self, paper_dataset):
        params = AnonymizationParams(k=3, m=2, max_cluster_size=6)
        via_class = Disassociator(params).anonymize(paper_dataset)
        via_function = anonymize(paper_dataset, k=3, m=2, max_cluster_size=6)
        assert via_class.to_dict() == via_function.to_dict()


class TestPipelineAPI:
    def test_default_pipeline_phases_in_order(self):
        from repro.core.engine import Pipeline

        pipeline = Disassociator().build_pipeline()
        assert isinstance(pipeline, Pipeline)
        assert [phase.name for phase in pipeline.phases] == [
            "horizontal",
            "vertical",
            "refine",
            "verify",
        ]

    def test_custom_phase_is_timed_into_report(self, paper_dataset):
        from repro.core.engine import DEFAULT_PHASES, Pipeline

        class CountingPhase:
            name = "refine"  # accounts into refine_seconds
            calls = 0

            def run(self, ctx):
                CountingPhase.calls += 1

        class CustomDisassociator(Disassociator):
            def build_pipeline(self):
                phases = [phase() for phase in DEFAULT_PHASES]
                phases.insert(3, CountingPhase())
                return Pipeline(phases)

        engine = CustomDisassociator(AnonymizationParams(k=3, m=2, max_cluster_size=6))
        engine.anonymize(paper_dataset)
        assert CountingPhase.calls == 1
        assert engine.last_report.refine_seconds >= 0

    def test_invalid_backend_rejected(self):
        with pytest.raises(ParameterError):
            AnonymizationParams(backend="numpy")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ParameterError):
            AnonymizationParams(jobs=0)

    def test_report_includes_encode_decode_time(self, paper_dataset):
        engine = Disassociator(AnonymizationParams(k=3, m=2, max_cluster_size=6))
        engine.anonymize(paper_dataset)
        report = engine.last_report
        assert report.encode_seconds >= 0
        assert report.decode_seconds >= 0
        timings = report.phase_timings()
        assert set(timings) == {
            "horizontal_seconds",
            "vertical_seconds",
            "refine_seconds",
            "verify_seconds",
            "encode_seconds",
            "decode_seconds",
            "total_seconds",
        }


class TestReattachSensitive:
    def test_duplicates_consumed_in_dataset_order(self):
        from repro.core.engine import _reattach_sensitive

        # Two records share the non-sensitive projection {a} but carry
        # different sensitive terms: FIFO matching must hand them back in
        # dataset order, not reversed.
        dataset = TransactionDataset([{"a", "s1"}, {"a", "s2"}, {"b"}])
        partitions = [TransactionDataset([{"a"}, {"a"}]), TransactionDataset([{"b"}])]
        restored = _reattach_sensitive(dataset, partitions, frozenset({"s1", "s2"}))
        assert list(restored[0]) == [frozenset({"a", "s1"}), frozenset({"a", "s2"})]
        assert list(restored[1]) == [frozenset({"b"})]

    def test_multiplicities_preserved_with_duplicate_records(self):
        from collections import Counter

        from repro.core.engine import _reattach_sensitive

        dataset = TransactionDataset(
            [{"a", "s1"}, {"a", "s2"}, {"a", "s1"}, {"a"}, {"c", "s2"}]
        )
        partitions = [
            TransactionDataset([{"a"}, {"a"}]),
            TransactionDataset([{"a"}, {"a"}, {"c"}]),
        ]
        restored = _reattach_sensitive(dataset, partitions, frozenset({"s1", "s2"}))
        flattened = Counter(r for part in restored for r in part)
        assert flattened == Counter(iter(dataset))

    def test_end_to_end_with_duplicate_sensitive_records(self):
        dataset = TransactionDataset(
            [{"x", "s"}, {"x"}, {"x", "s"}, {"x"}, {"x", "s"}, {"x"}]
        )
        published = anonymize(
            dataset, k=2, m=2, max_cluster_size=4, sensitive_terms={"s"}
        )
        assert published.total_records() == 6
        assert "s" in published.domain()
        assert audit(published).ok


class TestSensitiveTerms:
    def test_sensitive_terms_never_appear_in_record_chunks(self, paper_dataset):
        sensitive = {"viagra", "panic disorder"}
        published = anonymize(
            paper_dataset, k=3, m=2, max_cluster_size=6, sensitive_terms=sensitive
        )
        assert not (published.record_chunk_terms() & sensitive)

    def test_sensitive_terms_still_published_in_term_chunks(self, paper_dataset):
        sensitive = {"viagra", "panic disorder"}
        published = anonymize(
            paper_dataset, k=3, m=2, max_cluster_size=6, sensitive_terms=sensitive
        )
        assert sensitive <= set(published.domain())

    def test_sensitive_output_still_km_anonymous(self, paper_dataset):
        published = anonymize(
            paper_dataset, k=3, m=2, max_cluster_size=6, sensitive_terms={"madonna"}
        )
        assert audit(published).ok

    def test_record_count_preserved_with_sensitive_terms(self, paper_dataset):
        published = anonymize(
            paper_dataset, k=3, m=2, max_cluster_size=6, sensitive_terms={"madonna"}
        )
        assert published.total_records() == len(paper_dataset)

    def test_all_sensitive_record_is_preserved(self):
        dataset = TransactionDataset([{"s"}, {"s", "x"}, {"x"}, {"x", "s"}])
        published = anonymize(dataset, k=2, m=2, max_cluster_size=3, sensitive_terms={"s"})
        assert published.total_records() == 4
        assert "s" in published.domain()

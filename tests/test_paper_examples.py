"""Tests that re-enact the paper's worked examples (Figures 2-5, Example 1).

These tests pin the library's behaviour to the concrete numbers printed in
the paper, which is the strongest form of reproduction available for the
algorithmic part of the work.
"""

from __future__ import annotations

import pytest

from repro.core.anonymity import is_k_anonymous, is_km_anonymous
from repro.core.clusters import JointCluster, RecordChunk, SharedChunk, SimpleCluster, TermChunk
from repro.core.dataset import TransactionDataset
from repro.core.refine import build_shared_chunks, merge_criterion
from repro.core.reconstruct import reconstruct
from repro.core.verification import audit
from repro.core.vertical import satisfies_lemma2, vertical_partition
from tests.conftest import EXAMPLE1_RECORDS, PAPER_RECORDS


class TestFigure2:
    """Figure 2: the running example (query log of 10 users)."""

    def test_identifying_pair_exists_in_original(self, paper_dataset):
        # John knows Jane searched for madonna and viagra: only r2 matches.
        assert paper_dataset.support({"madonna", "viagra"}) == 1

    def test_vertical_partition_of_p1_matches_paper(self):
        p1 = TransactionDataset(PAPER_RECORDS[:5])
        cluster = vertical_partition(p1, k=3, m=2, label="P1").cluster
        domains = {frozenset(chunk.domain) for chunk in cluster.record_chunks}
        assert frozenset({"itunes", "flu", "madonna"}) in domains
        assert frozenset({"audi a4", "sony tv"}) in domains
        assert cluster.term_chunk.terms == frozenset({"ikea", "viagra", "ruby"})

    def test_vertical_partition_of_p2_matches_paper(self):
        p2 = TransactionDataset(PAPER_RECORDS[5:])
        cluster = vertical_partition(p2, k=3, m=2, label="P2").cluster
        domains = {frozenset(chunk.domain) for chunk in cluster.record_chunks}
        assert frozenset({"iphone sdk", "digital camera", "madonna"}) in domains
        assert cluster.term_chunk.terms == frozenset(
            {"panic disorder", "playboy", "ikea", "ruby"}
        )

    def test_published_c1_subrecords_match_figure_2b(self):
        p1 = TransactionDataset(PAPER_RECORDS[:5])
        cluster = vertical_partition(p1, k=3, m=2).cluster
        c1 = next(
            chunk
            for chunk in cluster.record_chunks
            if chunk.domain == frozenset({"itunes", "flu", "madonna"})
        )
        expected = sorted(
            map(
                sorted,
                [
                    {"itunes", "flu", "madonna"},
                    {"madonna", "flu"},
                    {"itunes", "madonna"},
                    {"itunes", "flu"},
                    {"itunes", "flu", "madonna"},
                ],
            )
        )
        assert sorted(map(sorted, c1.subrecords)) == expected

    def test_anonymized_dataset_hides_the_identifying_pair(self, paper_published):
        # after disassociation no chunk associates madonna with viagra
        assert paper_published.lower_bound_support({"madonna", "viagra"}) == 0

    def test_guarantee_holds_for_k3_m2(self, paper_published):
        assert paper_published.k == 3 and paper_published.m == 2
        assert audit(paper_published).ok


class TestFigure3:
    """Figure 3: the joint cluster with a shared chunk over {ikea, ruby}."""

    def _clusters(self):
        p1 = vertical_partition(TransactionDataset(PAPER_RECORDS[:5]), k=3, m=2, label="P1").cluster
        p2 = vertical_partition(TransactionDataset(PAPER_RECORDS[5:]), k=3, m=2, label="P2").cluster
        return p1, p2

    def test_shared_chunk_over_ikea_ruby_is_km_anonymous(self):
        p1, p2 = self._clusters()
        chunks, placed = build_shared_chunks(
            [p1, p2],
            frozenset({"ikea", "ruby"}),
            p1.record_chunk_terms() | p2.record_chunk_terms(),
            k=3,
            m=2,
        )
        assert placed == frozenset({"ikea", "ruby"})
        for chunk in chunks:
            assert is_km_anonymous(chunk.subrecords, k=3, m=2)

    def test_equation1_numbers_match_paper(self):
        # paper: (s(ruby) + s(ikea)) / |Jnew| = (4+4)/10 >= (2+2)/10
        p1, p2 = self._clusters()
        chunks, placed = build_shared_chunks(
            [p1, p2], frozenset({"ikea", "ruby"}), frozenset(), k=3, m=2
        )
        supports = {}
        for chunk in chunks:
            supports.update(chunk.term_supports())
        assert supports["ikea"] + supports["ruby"] == 8
        assert merge_criterion(chunks, placed, [p1, p2], joint_size=10)


class TestFigure4AndExample1:
    """Figure 4 / Example 1: chunk-level anonymity is not sufficient."""

    def test_both_chunks_are_3_2_anonymous(self):
        c1 = [frozenset({"a"})] * 3
        c2 = [frozenset({"b", "c"})] * 3
        assert is_km_anonymous(c1, k=3, m=2)
        assert is_km_anonymous(c2, k=3, m=2)

    def test_but_lemma2_rejects_the_publication(self):
        cluster = SimpleCluster(
            size=5,
            record_chunks=[
                RecordChunk({"a"}, [{"a"}] * 3),
                RecordChunk({"b", "c"}, [{"b", "c"}] * 3),
            ],
            term_chunk=TermChunk(),
            label="example1",
        )
        assert not satisfies_lemma2(cluster, k=3, m=2)

    def test_verpart_on_example1_produces_a_safe_cluster(self):
        cluster = vertical_partition(TransactionDataset(EXAMPLE1_RECORDS), k=3, m=2).cluster
        assert satisfies_lemma2(cluster, k=3, m=2)
        for chunk in cluster.record_chunks:
            assert is_km_anonymous(chunk.subrecords, k=3, m=2)

    def test_reconstruction_of_safe_example1_has_five_records(self):
        from repro.core.clusters import DisassociatedDataset

        cluster = vertical_partition(TransactionDataset(EXAMPLE1_RECORDS), k=3, m=2).cluster
        published = DisassociatedDataset([cluster], k=3, m=2)
        world = reconstruct(published, seed=0)
        assert len(world) == 5
        assert all(record for record in world)


class TestFigure5:
    """Figure 5: unsafe vs safe shared chunks (Property 1)."""

    def _leaf(self, label, records, term_chunk):
        chunks = []
        from collections import Counter

        counts = Counter()
        for record in records:
            counts.update(record)
        frequent = {t for t, c in counts.items() if c >= 3 and t not in term_chunk}
        if frequent:
            chunks.append(RecordChunk(frequent, [set(r) & frequent for r in records]))
        return SimpleCluster(
            len(records), chunks, TermChunk(term_chunk), label=label, original_records=records
        )

    def test_unsafe_shared_chunk_of_figure_5a_violates_property1(self):
        # shared chunk {a,o} with sub-records {a,o},{a,o},{a},{o},... where "a"
        # also lives in the first cluster's record chunk: not k-anonymous.
        shared = SharedChunk(
            {"a", "o"}, [{"a", "o"}, {"a", "o"}, {"a"}, {"o"}], {"1st": 4}
        )
        assert not is_k_anonymous(shared.subrecords, k=3)

    def test_safe_shared_chunk_of_figure_5b_satisfies_property1(self):
        shared = SharedChunk({"a", "o"}, [{"a"}, {"a"}, {"a"}, {"o"}, {"o"}, {"o"}], {"1st": 6})
        assert is_k_anonymous(shared.subrecords, k=3)
        assert is_km_anonymous(shared.subrecords, k=3, m=2)

    def test_audit_flags_the_unsafe_joint_cluster(self):
        first = self._leaf(
            "1st",
            [
                {"e", "a", "x"},
                {"e", "a", "x"},
                {"e", "a", "x"},
                {"a", "o"},
                {"a", "o"},
                {"a"},
                {"o"},
            ],
            term_chunk=set(),
        )
        second = self._leaf("2nd", [{"b"}, {"b"}, {"b"}], term_chunk=set())
        unsafe_shared = SharedChunk(
            {"a", "o"}, [{"a", "o"}, {"a", "o"}, {"a"}, {"o"}], {"1st": 4}
        )
        joint = JointCluster([first, second], [unsafe_shared], label="J-unsafe")
        from repro.core.clusters import DisassociatedDataset

        published = DisassociatedDataset([joint], k=3, m=2)
        report = audit(published)
        assert not report.ok


class TestAdversaryView:
    """Guarantee 1 from the adversary's perspective on the pipeline output.

    The published chunks must never associate an m-term combination with
    fewer than k records: either the combination is not observable inside
    any single chunk (its members were disassociated, lower bound 0) or it
    appears at least k times (Lemma 1).
    """

    def test_every_published_pair_association_is_k_supported(self, paper_published):
        from itertools import combinations

        k = paper_published.k
        for chunk in paper_published.iter_record_chunks():
            pair_counts = {}
            for subrecord in chunk.subrecords:
                for pair in combinations(sorted(subrecord), 2):
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
            for pair, count in pair_counts.items():
                assert count >= k, f"pair {pair} associated only {count} < {k} times"

    def test_identifying_background_knowledge_is_disassociated(
        self, paper_dataset, paper_published
    ):
        """Every pair that uniquely identified a record in the original data
        (support < k) must be unobservable in the published chunks."""
        from itertools import combinations

        k = paper_published.k
        for record in paper_dataset:
            for pair in combinations(sorted(record), 2):
                if paper_dataset.support(pair) < k:
                    bound = paper_published.lower_bound_support(pair)
                    assert bound == 0 or bound >= k

    def test_original_dataset_is_hidden_among_reconstructions(
        self, paper_dataset, paper_published
    ):
        """The published data must not betray the original world: the
        identifying pair is unobservable in the chunks and the sampled
        reconstructions are not copies of the original dataset."""
        rare_pair = {"madonna", "viagra"}
        assert paper_dataset.support(rare_pair) == 1
        assert paper_published.lower_bound_support(rare_pair) == 0
        worlds = [reconstruct(paper_published, seed=seed) for seed in range(5)]
        original_multiset = sorted(map(sorted, paper_dataset))
        differing = sum(
            1 for world in worlds if sorted(map(sorted, world)) != original_multiset
        )
        assert differing >= 1

"""repro -- reproduction of "Privacy Preservation by Disassociation" (VLDB 2012).

The package provides:

* the **disassociation** anonymization transformation for sparse set-valued
  data with a k^m-anonymity guarantee (:class:`Disassociator`),
* **reconstruction** of plausible original datasets
  (:class:`Reconstructor`),
* the paper's **baselines** (generalization-based Apriori anonymization,
  DiffPart differential privacy, global suppression) under
  :mod:`repro.baselines`,
* the **information-loss metrics** tKd, tKd-ML2, re and tlost under
  :mod:`repro.metrics`,
* **dataset generators** (IBM-Quest-style synthetic data and proxies for the
  POS / WV1 / WV2 datasets) under :mod:`repro.datasets`, and
* the **experiment harness** regenerating every figure of the paper under
  :mod:`repro.experiments` (driven by the ``benchmarks/`` suite).

Quickstart::

    from repro import TransactionDataset, anonymize, reconstruct

    data = TransactionDataset([
        {"new york", "air tickets", "hotels"},
        {"new york", "air tickets", "museums"},
        ...
    ])
    published = anonymize(data, k=3, m=2)
    sample_world = reconstruct(published, seed=0)
"""

from repro.core import (
    AnonymizationParams,
    AnonymizationReport,
    AuditReport,
    DisassociatedDataset,
    Disassociator,
    EncodedCluster,
    EncodedDataset,
    JointCluster,
    Pipeline,
    PipelineContext,
    RecordChunk,
    Reconstructor,
    SharedChunk,
    SimpleCluster,
    TermChunk,
    TransactionDataset,
    Vocabulary,
    anonymize,
    audit,
    reconstruct,
    verify_km_anonymity,
)
from repro.stream import (
    ShardedPipeline,
    ShardedReport,
    StreamParams,
    anonymize_stream,
)
from repro.exceptions import (
    AnonymityViolationError,
    DatasetError,
    DatasetFormatError,
    HierarchyError,
    MiningError,
    ParameterError,
    ReconstructionError,
    ReproError,
    RefinementError,
)

__version__ = "1.0.0"

__all__ = [
    "AnonymizationParams",
    "AnonymizationReport",
    "AnonymityViolationError",
    "AuditReport",
    "DatasetError",
    "DatasetFormatError",
    "DisassociatedDataset",
    "Disassociator",
    "EncodedCluster",
    "EncodedDataset",
    "HierarchyError",
    "JointCluster",
    "MiningError",
    "ParameterError",
    "Pipeline",
    "PipelineContext",
    "Vocabulary",
    "ReconstructionError",
    "RecordChunk",
    "Reconstructor",
    "RefinementError",
    "ReproError",
    "SharedChunk",
    "ShardedPipeline",
    "ShardedReport",
    "SimpleCluster",
    "StreamParams",
    "TermChunk",
    "TransactionDataset",
    "anonymize_stream",
    "anonymize",
    "audit",
    "reconstruct",
    "verify_km_anonymity",
    "__version__",
]

"""repro -- reproduction of "Privacy Preservation by Disassociation" (VLDB 2012).

The package provides:

* the **disassociation** anonymization transformation for sparse set-valued
  data with a k^m-anonymity guarantee (:class:`Disassociator`),
* **reconstruction** of plausible original datasets
  (:class:`Reconstructor`),
* the paper's **baselines** (generalization-based Apriori anonymization,
  DiffPart differential privacy, global suppression) under
  :mod:`repro.baselines`,
* the **information-loss metrics** tKd, tKd-ML2, re and tlost under
  :mod:`repro.metrics`,
* **dataset generators** (IBM-Quest-style synthetic data and proxies for the
  POS / WV1 / WV2 datasets) under :mod:`repro.datasets`, and
* the **experiment harness** regenerating every figure of the paper under
  :mod:`repro.experiments` (driven by the ``benchmarks/`` suite).

Quickstart::

    from repro import AnonymizationService, ServiceConfig, TransactionDataset, reconstruct

    data = TransactionDataset([
        {"new york", "air tickets", "hotels"},
        {"new york", "air tickets", "museums"},
        ...
    ])
    with AnonymizationService(ServiceConfig(k=3, m=2)) as service:
        published = service.run(data).publication
    sample_world = reconstruct(published, seed=0)

The long-lived :class:`AnonymizationService` (:mod:`repro.service`) is
the recommended entry point; the one-shot :func:`anonymize` /
:func:`anonymize_stream` helpers remain as deprecation-shimmed wrappers
with bit-for-bit identical output.
"""

from repro.core import (
    AnonymizationParams,
    AnonymizationReport,
    AuditReport,
    DisassociatedDataset,
    Disassociator,
    EncodedCluster,
    EncodedDataset,
    JointCluster,
    Pipeline,
    PipelineContext,
    RecordChunk,
    Reconstructor,
    SharedChunk,
    SimpleCluster,
    TermChunk,
    TransactionDataset,
    Vocabulary,
    anonymize,
    audit,
    reconstruct,
    verify_km_anonymity,
)
from repro.stream import (
    ShardedPipeline,
    ShardedReport,
    StreamParams,
    anonymize_stream,
)
from repro.service import (
    AnonymizationRequest,
    AnonymizationService,
    Job,
    PublicationResult,
    ServiceConfig,
    anonymization_service,
)
from repro.exceptions import (
    AnonymityViolationError,
    DatasetError,
    DatasetFormatError,
    EngineClosedError,
    HierarchyError,
    MiningError,
    ParameterError,
    ReconstructionError,
    ReproError,
    RefinementError,
    ServiceClosedError,
    ServiceError,
    ServiceSaturatedError,
)

__version__ = "1.1.0"

__all__ = [
    "AnonymizationParams",
    "AnonymizationReport",
    "AnonymizationRequest",
    "AnonymizationService",
    "AnonymityViolationError",
    "AuditReport",
    "DatasetError",
    "DatasetFormatError",
    "DisassociatedDataset",
    "Disassociator",
    "EncodedCluster",
    "EncodedDataset",
    "EngineClosedError",
    "HierarchyError",
    "Job",
    "JointCluster",
    "MiningError",
    "ParameterError",
    "Pipeline",
    "PipelineContext",
    "PublicationResult",
    "Vocabulary",
    "ReconstructionError",
    "RecordChunk",
    "Reconstructor",
    "RefinementError",
    "ReproError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "ServiceSaturatedError",
    "SharedChunk",
    "ShardedPipeline",
    "ShardedReport",
    "SimpleCluster",
    "StreamParams",
    "TermChunk",
    "TransactionDataset",
    "anonymization_service",
    "anonymize_stream",
    "anonymize",
    "audit",
    "reconstruct",
    "verify_km_anonymity",
    "__version__",
]

"""Figure 9: anonymization cost (wall-clock seconds) on the real datasets.

* **9a** -- total anonymization time on POS/WV1/WV2 (k=5, m=2).
* **9b** -- anonymization time on POS as k grows from 4 to 20.

The paper reports C++ timings; this harness reports Python timings at the
scaled dataset sizes.  The claims being reproduced are *relative*: time is
roughly proportional to |D| across datasets and is insensitive to k.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.figure07 import DEFAULT_K_SWEEP
from repro.experiments.harness import ExperimentConfig, disassociate, load_dataset


def run_fig9a(config: ExperimentConfig) -> list[dict]:
    """Anonymization time per real-dataset proxy (with phase timings)."""
    rows = []
    for name in config.datasets:
        original = load_dataset(name, config)
        reports: list = []
        _published, seconds = disassociate(original, config, report_sink=reports)
        row = {"dataset": name, "records": len(original), "seconds": seconds}
        row.update(reports[0].phase_timings())
        rows.append(row)
    return rows


def run_fig9b(
    config: ExperimentConfig,
    ks: Sequence[int] = DEFAULT_K_SWEEP,
    dataset: str = "POS",
) -> list[dict]:
    """Anonymization time on the POS proxy as a function of k."""
    original = load_dataset(dataset, config)
    rows = []
    for k in ks:
        reports: list = []
        _published, seconds = disassociate(original, config, k=k, report_sink=reports)
        row = {"k": k, "seconds": seconds}
        row.update(reports[0].phase_timings())
        rows.append(row)
    return rows

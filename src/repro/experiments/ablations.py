"""Ablation experiments (not in the paper, but called out in DESIGN.md).

* **A1** -- effect of the HORPART ``max_cluster_size`` bound on information
  loss and runtime: larger clusters give VERPART more room (lower tlost)
  but cost more time per cluster.
* **A2** -- effect of the REFINE step: with refinement disabled, globally
  frequent but locally rare terms stay stranded in term chunks, which the
  tlost and re metrics expose.
* **A3** -- suppression baseline: how much of the domain survives global
  suppression at the same (k, m), reproducing the ~90% term-loss claim the
  paper cites for suppression-based approaches.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.suppression import GlobalSuppressor
from repro.experiments.harness import ExperimentConfig, disassociate, evaluate, load_dataset

#: Cluster-size bounds swept by ablation A1.
DEFAULT_CLUSTER_SIZES = (12, 30, 60)


def run_cluster_size_ablation(
    config: ExperimentConfig,
    cluster_sizes: Sequence[int] = DEFAULT_CLUSTER_SIZES,
    dataset: str = "POS",
) -> list[dict]:
    """Ablation A1: sweep the maximum cluster size."""
    original = load_dataset(dataset, config)
    rows = []
    for size in cluster_sizes:
        local = config.with_overrides(max_cluster_size=size)
        published, seconds = disassociate(original, local)
        metrics = evaluate(original, published, local)
        row = {"max_cluster_size": size, "seconds": seconds}
        row.update(metrics)
        rows.append(row)
    return rows


def run_refine_ablation(config: ExperimentConfig, dataset: str = "POS") -> list[dict]:
    """Ablation A2: REFINE enabled versus disabled."""
    original = load_dataset(dataset, config)
    rows = []
    for refine_enabled in (True, False):
        published, seconds = disassociate(original, config, refine=refine_enabled)
        metrics = evaluate(original, published, config)
        row = {"refine": refine_enabled, "seconds": seconds}
        row.update(metrics)
        rows.append(row)
    return rows


def run_suppression_comparison(
    config: ExperimentConfig, dataset: str = "WV1", sample_size: int = 800
) -> list[dict]:
    """Ablation A3: term survival under global suppression versus disassociation.

    Suppression is quadratic in practice, so the comparison runs on a sample
    of the proxy dataset; the compared quantity (fraction of the domain that
    keeps any associations) is a ratio and does not depend on the absolute
    sample size.
    """
    original = load_dataset(dataset, config).sample(sample_size, seed=config.seed)
    published, _seconds = disassociate(original, config)
    disassociation_preserved = len(published.record_chunk_terms()) / max(
        1, len(original.domain)
    )

    suppressor = GlobalSuppressor(k=config.k, m=config.m)
    suppressed = suppressor.anonymize(original)
    suppression_preserved = len(suppressed.dataset.domain) / max(1, len(original.domain))

    return [
        {"method": "disassociation", "terms_with_associations": disassociation_preserved},
        {"method": "suppression", "terms_with_associations": suppression_preserved},
    ]

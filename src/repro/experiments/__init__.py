"""Experiment drivers reproducing every figure of the paper's evaluation.

Each ``figureXX`` module exposes ``run_*`` functions returning plain result
rows; the ``benchmarks/`` suite wraps them with pytest-benchmark and prints
the regenerated series next to the paper's reported shapes (see
EXPERIMENTS.md for the side-by-side record).
"""

from repro.experiments.harness import (
    BENCH_CONFIG,
    TEST_CONFIG,
    DisassociationRun,
    ExperimentConfig,
    disassociate,
    evaluate,
    format_table,
    load_dataset,
    run_dataset,
)

__all__ = [
    "BENCH_CONFIG",
    "TEST_CONFIG",
    "DisassociationRun",
    "ExperimentConfig",
    "disassociate",
    "evaluate",
    "format_table",
    "load_dataset",
    "run_dataset",
]

"""Figure 8: information loss of disassociation on synthetic (Quest) data.

* **8a** -- tKd-a, tKd versus dataset size.
* **8b** -- tlost, re-a, re versus dataset size.
* **8c** -- tlost, re, tKd-a, tKd versus domain size.
* **8d** -- tlost, re, tKd-a, tKd versus average record length.

The paper sweeps 1M-10M records and 2k-10k terms.  The scaled sweeps keep
the same *ratios* (record count relative to domain size grows by the same
factor across the sweep) so that the paper's qualitative findings — dataset
size barely matters because anonymization is per-cluster; larger domains
hurt only the distribution tail; longer records increase tKd-a and tlost
but improve re — remain observable.
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.quest import generate_quest
from repro.experiments.harness import ExperimentConfig, disassociate, evaluate

#: Scaled counterparts of the paper's 1M-10M record sweep.
DEFAULT_SIZES = (2_000, 4_000, 8_000)

#: Scaled counterparts of the paper's 2k-10k domain sweep.
DEFAULT_DOMAINS = (500, 1_000, 2_000)

#: Average record lengths swept in Figure 8d (same values as the paper).
DEFAULT_RECORD_LENGTHS = (6, 10, 14)

#: Domain size used for the dataset-size sweep (paper default: 5k terms).
SWEEP_DOMAIN = 1_000

#: Record count used for the domain and record-length sweeps.
SWEEP_RECORDS = 4_000


def _evaluate_synthetic(
    config: ExperimentConfig,
    num_records: int,
    domain_size: int,
    avg_record_length: float,
) -> dict:
    original = generate_quest(
        num_transactions=num_records,
        domain_size=domain_size,
        avg_transaction_size=avg_record_length,
        seed=config.seed,
    )
    published, seconds = disassociate(original, config)
    metrics = evaluate(original, published, config)
    metrics["seconds"] = seconds
    return metrics


def run_fig8a_8b(
    config: ExperimentConfig,
    sizes: Sequence[int] = DEFAULT_SIZES,
    domain_size: int = SWEEP_DOMAIN,
    avg_record_length: float = 10.0,
) -> list[dict]:
    """Sweep the dataset size (Figures 8a and 8b share the same runs)."""
    rows = []
    for size in sizes:
        metrics = _evaluate_synthetic(config, size, domain_size, avg_record_length)
        row = {"records": size}
        row.update(metrics)
        rows.append(row)
    return rows


def run_fig8c(
    config: ExperimentConfig,
    domains: Sequence[int] = DEFAULT_DOMAINS,
    num_records: int = SWEEP_RECORDS,
    avg_record_length: float = 10.0,
) -> list[dict]:
    """Sweep the domain size (Figure 8c)."""
    rows = []
    for domain in domains:
        metrics = _evaluate_synthetic(config, num_records, domain, avg_record_length)
        row = {"domain": domain}
        row.update(metrics)
        rows.append(row)
    return rows


def run_fig8d(
    config: ExperimentConfig,
    record_lengths: Sequence[int] = DEFAULT_RECORD_LENGTHS,
    num_records: int = SWEEP_RECORDS,
    domain_size: int = SWEEP_DOMAIN,
) -> list[dict]:
    """Sweep the average record length (Figure 8d)."""
    rows = []
    for length in record_lengths:
        metrics = _evaluate_synthetic(config, num_records, domain_size, length)
        row = {"record_length": length}
        row.update(metrics)
        rows.append(row)
    return rows

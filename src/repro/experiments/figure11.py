"""Figure 11: disassociation versus the state-of-the-art baselines.

* **11a** -- tKd of disassociation versus DiffPart on POS/WV1/WV2.
* **11b** -- tKd-ML2 of disassociation versus Apriori (generalization).
* **11c** -- re of disassociation versus DiffPart and Apriori.

As in the paper, DiffPart is swept over privacy budgets 0.5-1.25 (step
0.25) and its best result is reported; the generalization baseline shares
the same hierarchy used by the tKd-ML2 metric; and the re comparison probes
the most frequent terms because DiffPart suppresses the mid-frequency range
entirely.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.apriori_anonymization import AprioriAnonymizer
from repro.baselines.diffpart import DiffPart
from repro.core.reconstruct import Reconstructor
from repro.experiments.harness import ExperimentConfig, disassociate, load_dataset
from repro.metrics import (
    relative_error,
    relative_error_generalized,
    relative_error_reconstructed,
    tkd_ml2,
    tkd_ml2_disassociated,
    tkd_reconstructed,
    top_k_deviation,
)
from repro.mining.hierarchy import GeneralizationHierarchy

#: Privacy budgets swept for DiffPart (paper Section 7.1).
DEFAULT_EPSILONS = (0.5, 0.75, 1.0, 1.25)

#: Hierarchy fan-out shared by the generalization baseline and tKd-ML2.
HIERARCHY_FANOUT = 8

#: Frequency-rank window for the re comparison (paper uses the 0-20th most
#: frequent terms because DiffPart suppresses everything less frequent).
COMPARISON_RE_RANGE = (0, 20)


def _best_diffpart(original, config: ExperimentConfig, epsilons: Sequence[float]):
    """Run DiffPart for every budget and keep the publication with the best tKd."""
    best = None
    best_tkd = None
    for epsilon in epsilons:
        result = DiffPart(epsilon=epsilon, seed=config.seed).publish(original)
        deviation = top_k_deviation(
            original, result.dataset, top_k=config.top_k, max_size=config.max_itemset_size
        )
        if best_tkd is None or deviation < best_tkd:
            best, best_tkd = result, deviation
    return best, best_tkd


def run_fig11a(
    config: ExperimentConfig, epsilons: Sequence[float] = DEFAULT_EPSILONS
) -> list[dict]:
    """tKd: disassociation versus DiffPart (lower is better)."""
    rows = []
    for name in config.datasets:
        original = load_dataset(name, config)
        published, _seconds = disassociate(original, config)
        disassociation_tkd = tkd_reconstructed(
            original,
            published,
            top_k=config.top_k,
            max_size=config.max_itemset_size,
            seed=config.seed,
        )
        _best, diffpart_tkd = _best_diffpart(original, config, epsilons)
        rows.append(
            {
                "dataset": name,
                "disassociation": disassociation_tkd,
                "diffpart": diffpart_tkd,
            }
        )
    return rows


def run_fig11b(config: ExperimentConfig) -> list[dict]:
    """tKd-ML2: disassociation versus the Apriori generalization baseline."""
    rows = []
    for name in config.datasets:
        original = load_dataset(name, config)
        hierarchy = GeneralizationHierarchy.balanced(original.domain, fanout=HIERARCHY_FANOUT)

        published, _seconds = disassociate(original, config)
        disassociation_ml2 = tkd_ml2_disassociated(
            original,
            published,
            hierarchy,
            top_k=config.top_k,
            max_size=config.max_itemset_size,
            seed=config.seed,
        )

        generalizer = AprioriAnonymizer(k=config.k, m=config.m, hierarchy=hierarchy)
        generalized = generalizer.anonymize(original)
        apriori_ml2 = tkd_ml2(
            original,
            generalized.dataset,
            hierarchy,
            top_k=config.top_k,
            max_size=config.max_itemset_size,
        )
        rows.append(
            {
                "dataset": name,
                "disassociation": disassociation_ml2,
                "apriori": apriori_ml2,
            }
        )
    return rows


def run_fig11c(
    config: ExperimentConfig, epsilons: Sequence[float] = DEFAULT_EPSILONS
) -> list[dict]:
    """re on the most frequent terms: disassociation vs DiffPart vs Apriori."""
    rows = []
    for name in config.datasets:
        original = load_dataset(name, config)
        hierarchy = GeneralizationHierarchy.balanced(original.domain, fanout=HIERARCHY_FANOUT)

        published, _seconds = disassociate(original, config)
        disassociation_re = relative_error_reconstructed(
            original, published, rank_range=COMPARISON_RE_RANGE, seed=config.seed
        )

        best_diffpart, _tkd = _best_diffpart(original, config, epsilons)
        diffpart_re = relative_error(
            original, best_diffpart.dataset, rank_range=COMPARISON_RE_RANGE
        )

        generalizer = AprioriAnonymizer(k=config.k, m=config.m, hierarchy=hierarchy)
        generalized = generalizer.anonymize(original)
        apriori_re = relative_error_generalized(
            original,
            generalized.dataset,
            generalized.cut,
            hierarchy,
            rank_range=COMPARISON_RE_RANGE,
        )
        rows.append(
            {
                "dataset": name,
                "disassociation": disassociation_re,
                "diffpart": diffpart_re,
                "apriori": apriori_re,
            }
        )
    return rows


def reconstruction_for(published, seed: int = 0):
    """Convenience used by examples/benches: one reconstruction of a publication."""
    return Reconstructor(published, seed=seed).reconstruct()

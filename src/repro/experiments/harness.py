"""Shared infrastructure of the experiment drivers (Figures 7-11).

Every ``figureXX`` module exposes ``run_*`` functions that take an
:class:`ExperimentConfig`, run the corresponding experiment and return plain
rows (lists of dicts) that the benchmark harness prints next to the paper's
reported series.  The configuration controls the *scale* of the runs: the
paper's datasets (hundreds of thousands to millions of records, C++
implementation) are scaled down so that the full grid executes in minutes of
pure Python, while preserving the dataset *shape* (skew, record length,
|D|/|T| ratio) that the paper's conclusions depend on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.datasets.real_proxies import load_proxy
from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig
from repro.metrics import (
    relative_error_chunks,
    relative_error_reconstructed,
    tkd_chunks,
    tkd_reconstructed,
    tlost,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    Attributes:
        k, m: anonymity parameters (paper default: k=5, m=2).
        max_cluster_size: HORPART bound.
        top_k: number of top frequent itemsets compared by tKd (the paper
            uses 1000 on full-size data; the scaled default is 100).
        max_itemset_size: maximum itemset size considered by tKd.
        re_range: frequency-rank window probed by the re metric.
        scale: fraction of the real datasets' record counts to generate.
        domain_scale: fraction of the real datasets' domain sizes to keep;
            scaling the domain along with the record count keeps the
            |D|/|T| ratio (the quantity the paper identifies as the driver
            of the re results) in a realistic regime at laptop scale.
        seed: seed shared by data generation and reconstruction.
        datasets: which real-dataset proxies to use.
        backend: execution core passed to the engine (``encoded``/``string``).
        jobs: worker processes for the per-cluster VERPART fan-out.
        kernels: vectorized-kernel backend passed to the engine
            (``numpy``/``python``/``auto``; ``None`` defers to
            ``$REPRO_KERNELS``, then auto-selection -- see
            :mod:`repro.core.kernels`).
        stream: route runs through the sharded streaming pipeline
            (:class:`~repro.stream.ShardedPipeline`) instead of the
            single-pass engine.
        shards: number of shards in streaming mode.
        max_records_in_memory: streaming memory bound; ``None`` uses the
            subsystem default.
        shard_strategy: record routing in streaming mode (``hash`` /
            ``horpart``).
    """

    k: int = 5
    m: int = 2
    max_cluster_size: int = 30
    top_k: int = 100
    max_itemset_size: int = 3
    re_range: tuple = (60, 80)
    scale: float = 0.01
    domain_scale: float = 0.2
    seed: int = 7
    datasets: tuple = ("POS", "WV1", "WV2")
    backend: str = "encoded"
    jobs: int = 1
    kernels: Optional[str] = None
    stream: bool = False
    shards: int = 4
    max_records_in_memory: Optional[int] = None
    shard_strategy: str = "hash"

    def with_overrides(self, **overrides) -> "ExperimentConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **overrides)

    def to_service_config(self, **overrides) -> "ServiceConfig":
        """Project the anonymization slice onto a :class:`ServiceConfig`.

        The experiment-only knobs (``top_k``, ``scale``, ``seed``, ...)
        stay here; everything the engine or streaming executor consumes is
        forwarded, so the drivers run through the same service facade as
        production callers.
        """
        values = dict(
            k=self.k,
            m=self.m,
            max_cluster_size=self.max_cluster_size,
            backend=self.backend,
            jobs=self.jobs,
            kernels=self.kernels,
            shards=self.shards,
            shard_strategy=self.shard_strategy,
        )
        # A None bound means "subsystem default": leave the key out and
        # let ServiceConfig's own field default supply it.
        if self.max_records_in_memory is not None:
            values["max_records_in_memory"] = self.max_records_in_memory
        values.update(overrides)
        return ServiceConfig(**values)


#: Configuration used by the benchmark suite: small enough for CI, large
#: enough that the paper's qualitative shapes are visible.
BENCH_CONFIG = ExperimentConfig()

#: Even smaller configuration for unit/integration tests.
TEST_CONFIG = ExperimentConfig(
    scale=0.002, domain_scale=0.05, top_k=50, max_cluster_size=20, re_range=(20, 35)
)


@dataclass
class DisassociationRun:
    """One anonymization run and its evaluation."""

    dataset_name: str
    original: TransactionDataset
    published: DisassociatedDataset
    seconds: float
    metrics: dict = field(default_factory=dict)


def load_dataset(name: str, config: ExperimentConfig) -> TransactionDataset:
    """Load the proxy of one of the paper's real datasets at the configured scale."""
    return load_proxy(
        name, scale=config.scale, seed=config.seed, domain_scale=config.domain_scale
    )


def disassociate(
    dataset: TransactionDataset,
    config: ExperimentConfig,
    k: Optional[int] = None,
    refine: bool = True,
    report_sink: Optional[list] = None,
) -> tuple[DisassociatedDataset, float]:
    """Run the disassociation pipeline, returning the publication and wall-clock time.

    When ``report_sink`` is given, the run's
    :class:`~repro.core.engine.AnonymizationReport` (phase timings) is
    appended to it, so perf benchmarks can emit machine-readable timings
    without changing the return contract.
    """
    service_config = config.to_service_config(
        k=config.k if k is None else k, refine=refine, verify=False
    )
    request = AnonymizationRequest(
        dataset, mode="stream" if config.stream else "batch"
    )
    with AnonymizationService(service_config) as service:
        start = time.perf_counter()
        result = service.run(request)
        elapsed = time.perf_counter() - start
    if report_sink is not None:
        report_sink.append(result.report)
    return result.publication, elapsed


def evaluate(
    original: TransactionDataset,
    published: DisassociatedDataset,
    config: ExperimentConfig,
    reconstructions: int = 1,
) -> dict:
    """Compute the paper's information-loss metrics for one publication.

    Returns a dict with keys ``tkd_a``, ``tkd``, ``re_a``, ``re`` and
    ``tlost`` (Figure 7a's five bars).
    """
    return {
        "tkd_a": tkd_chunks(
            original, published, top_k=config.top_k, max_size=config.max_itemset_size
        ),
        "tkd": tkd_reconstructed(
            original,
            published,
            top_k=config.top_k,
            max_size=config.max_itemset_size,
            seed=config.seed,
        ),
        "re_a": relative_error_chunks(original, published, rank_range=config.re_range),
        "re": relative_error_reconstructed(
            original,
            published,
            rank_range=config.re_range,
            reconstructions=reconstructions,
            seed=config.seed,
        ),
        "tlost": tlost(original, published),
    }


def run_dataset(
    name: str, config: ExperimentConfig, k: Optional[int] = None, refine: bool = True
) -> DisassociationRun:
    """Load a proxy dataset, disassociate it and evaluate the publication."""
    original = load_dataset(name, config)
    published, seconds = disassociate(original, config, k=k, refine=refine)
    metrics = evaluate(original, published, config)
    return DisassociationRun(
        dataset_name=name,
        original=original,
        published=published,
        seconds=seconds,
        metrics=metrics,
    )


def format_table(rows: list[dict], columns: Optional[list[str]] = None) -> str:
    """Render result rows as a fixed-width text table (for bench output)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

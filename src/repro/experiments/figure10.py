"""Figure 10: anonymization cost on synthetic data.

* **10a** -- anonymization time versus dataset size (paper: 1M-10M records).
* **10b** -- anonymization time versus domain size (paper: 2k-10k terms).

The reproduced claim is the *shape*: time grows linearly with the number of
records and (sub-)linearly with the domain size.
"""

from __future__ import annotations

from typing import Sequence

from repro.datasets.quest import generate_quest
from repro.experiments.figure08 import DEFAULT_DOMAINS, DEFAULT_SIZES, SWEEP_DOMAIN, SWEEP_RECORDS
from repro.experiments.harness import ExperimentConfig, disassociate


def run_fig10a(
    config: ExperimentConfig,
    sizes: Sequence[int] = DEFAULT_SIZES,
    domain_size: int = SWEEP_DOMAIN,
) -> list[dict]:
    """Anonymization time versus number of records."""
    rows = []
    for size in sizes:
        original = generate_quest(
            num_transactions=size, domain_size=domain_size, seed=config.seed
        )
        reports: list = []
        _published, seconds = disassociate(original, config, report_sink=reports)
        row = {"records": size, "seconds": seconds}
        row.update(reports[0].phase_timings())
        rows.append(row)
    return rows


def run_fig10b(
    config: ExperimentConfig,
    domains: Sequence[int] = DEFAULT_DOMAINS,
    num_records: int = SWEEP_RECORDS,
) -> list[dict]:
    """Anonymization time versus domain size."""
    rows = []
    for domain in domains:
        original = generate_quest(
            num_transactions=num_records, domain_size=domain, seed=config.seed
        )
        reports: list = []
        _published, seconds = disassociate(original, config, report_sink=reports)
        row = {"domain": domain, "seconds": seconds}
        row.update(reports[0].phase_timings())
        rows.append(row)
    return rows


def linearity_ratio(rows: list[dict], x_key: str) -> float:
    """Diagnostic: (time per unit at the largest x) / (time per unit at the smallest x).

    A value close to 1 indicates linear scaling; the paper's Figure 10a is
    linear in the number of records.
    """
    if len(rows) < 2:
        return 1.0
    first, last = rows[0], rows[-1]
    per_unit_first = first["seconds"] / max(1, first[x_key])
    per_unit_last = last["seconds"] / max(1, last[x_key])
    if per_unit_first == 0:
        return 1.0
    return per_unit_last / per_unit_first

"""Figure 7: information loss of disassociation on the real datasets.

* **7a** -- the five metrics (tKd-a, tKd, re-a, re, tlost) on POS/WV1/WV2
  with k=5, m=2.
* **7b** -- tKd-a and tKd on POS for k = 4..20.
* **7c** -- re-a, re and tlost on POS for k = 4..20.
* **7d** -- re on POS for different term-frequency ranges, averaging the
  supports over 1, 2, 5 and 10 reconstructions.

All drivers return plain row dicts; use
:func:`repro.experiments.harness.format_table` to print them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import (
    ExperimentConfig,
    disassociate,
    evaluate,
    load_dataset,
    run_dataset,
)
from repro.metrics import relative_error_chunks, relative_error_reconstructed

#: k values swept in Figures 7b/7c (the paper uses 4..20 in steps of 2).
DEFAULT_K_SWEEP = (4, 8, 12, 16, 20)

#: Frequency-rank windows probed in Figure 7d (paper: 0-20 ... 400-420).
DEFAULT_RANGES = ((0, 20), (100, 120), (200, 220), (300, 320), (400, 420))

#: Reconstruction counts averaged in Figure 7d.
DEFAULT_RECONSTRUCTION_COUNTS = (1, 2, 5, 10)


def run_fig7a(config: ExperimentConfig) -> list[dict]:
    """Information loss of disassociation on every real-dataset proxy."""
    rows = []
    for name in config.datasets:
        run = run_dataset(name, config)
        row = {"dataset": name}
        row.update(run.metrics)
        rows.append(row)
    return rows


def run_fig7b(
    config: ExperimentConfig,
    ks: Sequence[int] = DEFAULT_K_SWEEP,
    dataset: str = "POS",
) -> list[dict]:
    """tKd-a and tKd versus k on the POS proxy."""
    original = load_dataset(dataset, config)
    rows = []
    for k in ks:
        published, _seconds = disassociate(original, config, k=k)
        metrics = evaluate(original, published, config)
        rows.append({"k": k, "tkd_a": metrics["tkd_a"], "tkd": metrics["tkd"]})
    return rows


def run_fig7c(
    config: ExperimentConfig,
    ks: Sequence[int] = DEFAULT_K_SWEEP,
    dataset: str = "POS",
) -> list[dict]:
    """re-a, re and tlost versus k on the POS proxy."""
    original = load_dataset(dataset, config)
    rows = []
    for k in ks:
        published, _seconds = disassociate(original, config, k=k)
        metrics = evaluate(original, published, config)
        rows.append(
            {
                "k": k,
                "re_a": metrics["re_a"],
                "re": metrics["re"],
                "tlost": metrics["tlost"],
            }
        )
    return rows


def run_fig7d(
    config: ExperimentConfig,
    ranges: Sequence[tuple] = DEFAULT_RANGES,
    reconstruction_counts: Sequence[int] = DEFAULT_RECONSTRUCTION_COUNTS,
    dataset: str = "POS",
) -> list[dict]:
    """re versus term-frequency range, averaged over several reconstructions.

    Each row corresponds to one frequency range and contains ``re_a`` plus
    one ``re_r<N>`` column per reconstruction count.
    """
    original = load_dataset(dataset, config)
    published, _seconds = disassociate(original, config)
    domain_size = len(original.domain)
    rows = []
    for rank_range in ranges:
        start, stop = rank_range
        if start >= domain_size:
            continue
        row = {"range_start": start}
        row["re_a"] = relative_error_chunks(original, published, rank_range=rank_range)
        for count in reconstruction_counts:
            row[f"re_r{count}"] = relative_error_reconstructed(
                original,
                published,
                rank_range=rank_range,
                reconstructions=count,
                seed=config.seed,
            )
        rows.append(row)
    return rows


def paper_reference(figure: str) -> Optional[str]:
    """Short textual reminder of what the paper reports for each sub-figure."""
    notes = {
        "7a": "paper: tKd-a similar across datasets; tKd and re improve most on POS "
        "(largest |D|/|T| ratio); tlost modest.",
        "7b": "paper: tKd-a and tKd on POS only slightly affected as k grows 4->20.",
        "7c": "paper: re grows roughly linearly with k but at a low rate; tlost grows slowly.",
        "7d": "paper: for frequent terms averaging adds nothing; for less frequent terms "
        "more reconstructions give sharper estimates (re-10 < re-1).",
    }
    return notes.get(figure)

"""Global verification of a sharded publication, with demotion repair.

**The shard-boundary verification rule.**  Disassociation's k^m-anonymity
guarantee is *per cluster*: each record chunk must be k^m-anonymous on its
own, wherever the cluster came from.  Merging independently anonymized
shards therefore cannot weaken the guarantee of any individual cluster --
but the sharded path introduces boundaries the single-pass engine never
has: records are cut into shards by the planner and into bounded-memory
windows inside each shard, so a cluster is built from a *window's* view of
the data, and a routing or windowing defect (duplicated spill buffer,
truncated window, a planner that is not a partition of the stream) would
surface as a cluster whose chunks are not actually k^m-anonymous.

The global pass therefore re-audits the *merged* dataset from scratch with
the same independent auditor the single-pass engine uses
(:func:`repro.core.verification.audit`) and repairs any violation by
**demotion**: a term implicated in a violating itemset is removed from the
record (or shared) chunks of the offending cluster and moved to the term
chunk of the leaf clusters that actually contain it, hiding its supports
and co-occurrences.  This is exactly VERPART's own fallback (terms whose
combinations cannot be published safely live in the term chunk), applied
post hoc:

* demotion never *adds* information -- a term chunk publishes presence
  only, and the term was already published as present;
* demotion strictly shrinks the set of record-chunk terms, so the
  repair loop terminates (in the worst case every term is demoted and the
  publication is trivially k^m-anonymous);
* the repaired dataset passes the same audit as a single-pass run, so
  downstream consumers (metrics, reconstruction) need no sharding
  awareness.

Clusters that fail the structural conditions (Lemma 2 / Property 1) rather
than a chunk-support condition are repaired coarsely: every record-chunk
term of the offending cluster is demoted.  These conditions cannot be
violated by boundary effects alone and indicate a deeper defect, so the
repair is deliberately maximal (and counted separately in the summary).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clusters import (
    Cluster,
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
)
from repro.core.verification import audit

#: Safety valve: the repair loop shrinks the term set every round, so this
#: is only reachable if demotion itself is buggy.
MAX_REPAIR_ROUNDS = 100


@dataclass
class BoundaryRepairSummary:
    """What the global verification pass did to make the merge auditable.

    Attributes:
        rounds: number of audit-and-demote rounds run (0 = clean first audit).
        demoted_terms: record-chunk terms demoted per offending cluster label.
        structural_repairs: labels of clusters repaired for Lemma-2 /
            Property-1 violations (coarse full demotion).
    """

    rounds: int = 0
    demoted_terms: dict = field(default_factory=dict)
    structural_repairs: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the first global audit already passed."""
        return self.rounds == 0

    def total_demoted(self) -> int:
        """Total number of (cluster, term) demotions applied."""
        return sum(len(terms) for terms in self.demoted_terms.values())


def verify_and_repair(
    published: DisassociatedDataset,
) -> tuple[DisassociatedDataset, BoundaryRepairSummary]:
    """Globally re-audit a merged publication, demoting boundary violators.

    Returns the (possibly rebuilt) dataset and a summary of the repairs.
    The returned dataset always passes :func:`repro.core.verification.audit`.
    """
    summary = BoundaryRepairSummary()
    for _ in range(MAX_REPAIR_ROUNDS):
        report = audit(published)
        if report.ok:
            return published, summary
        summary.rounds += 1
        offenders: dict[str, set] = {}
        for label, itemset, _support in report.chunk_violations:
            offenders.setdefault(label, set()).update(itemset)
        structural = set(report.lemma2_violations) | set(report.property1_violations)
        summary.structural_repairs.extend(sorted(structural))
        clusters = [
            _repair_cluster(cluster, offenders, structural, summary)
            for cluster in published.clusters
        ]
        published = DisassociatedDataset(clusters, k=published.k, m=published.m)
    raise AssertionError(
        "boundary repair did not converge; demotion failed to shrink the domain"
    )


def _repair_cluster(
    cluster: Cluster,
    offenders: dict[str, set],
    structural: set,
    summary: BoundaryRepairSummary,
) -> Cluster:
    if isinstance(cluster, JointCluster):
        return _repair_joint(cluster, offenders, structural, summary)
    return _repair_simple(cluster, offenders, structural, summary)


def _repair_simple(
    cluster: SimpleCluster,
    offenders: dict[str, set],
    structural: set,
    summary: BoundaryRepairSummary,
) -> SimpleCluster:
    demote = set(offenders.get(cluster.label, ()))
    if cluster.label in structural:
        demote.update(cluster.record_chunk_terms())
    if not demote:
        return cluster
    summary.demoted_terms.setdefault(cluster.label, set()).update(demote)
    return demote_terms(cluster, demote)


def _repair_joint(
    cluster: JointCluster,
    offenders: dict[str, set],
    structural: set,
    summary: BoundaryRepairSummary,
) -> JointCluster:
    demote = set(offenders.get(cluster.label, ()))
    if cluster.label in structural:
        for chunk in cluster.shared_chunks:
            demote.update(chunk.domain)
    children = [
        _repair_cluster(child, offenders, structural, summary)
        for child in cluster.children
    ]
    if not demote:
        return JointCluster(children, cluster.shared_chunks, label=cluster.label)
    summary.demoted_terms.setdefault(cluster.label, set()).update(demote)
    # Shrink the shared chunks; the demoted terms fall back to the term
    # chunks of the leaves that actually contain them (presence only).
    shared = []
    for chunk in cluster.shared_chunks:
        kept_domain = chunk.domain - demote
        if not kept_domain:
            continue
        shared.append(_shrink_shared_chunk(chunk, kept_domain))
    children = [_absorb_into_term_chunks(child, demote) for child in children]
    return JointCluster(children, shared, label=cluster.label)


def _shrink_shared_chunk(chunk: SharedChunk, kept_domain: frozenset) -> SharedChunk:
    """Project a shared chunk onto a shrunk domain, keeping contributions exact.

    The chunk's sub-record list is sliced per contributing cluster (in
    contribution order), so when a projection becomes empty and is dropped,
    the contribution of the cluster owning that position must be
    decremented -- otherwise reconstruction sees ``sum(contributions) !=
    len(subrecords)`` and silently loses the per-cluster attribution.
    """
    if not chunk.contributions:
        return SharedChunk(
            kept_domain, (sr & kept_domain for sr in chunk.subrecords), {}
        )
    subrecords: list[frozenset] = []
    contributions: dict = {}
    position = 0
    for label, count in chunk.contributions.items():
        kept = 0
        for subrecord in chunk.subrecords[position : position + count]:
            shrunk = subrecord & kept_domain
            if shrunk:
                subrecords.append(shrunk)
                kept += 1
        position += count
        if kept:
            contributions[label] = kept
    return SharedChunk(kept_domain, subrecords, contributions)


def demote_terms(cluster: SimpleCluster, demote: set) -> SimpleCluster:
    """Move ``demote`` terms from a cluster's record chunks to its term chunk.

    Chunks left with an empty domain disappear; sub-records are re-projected
    onto the shrunk domain (empty projections are dropped by
    :class:`~repro.core.clusters.RecordChunk` itself).
    """
    new_chunks = []
    present = set()
    for chunk in cluster.record_chunks:
        overlap = chunk.domain & demote
        if not overlap:
            new_chunks.append(chunk)
            continue
        present.update(overlap)
        kept = chunk.domain - overlap
        if kept:
            new_chunks.append(
                RecordChunk(kept, (sr - overlap for sr in chunk.subrecords))
            )
    return SimpleCluster(
        size=cluster.size,
        record_chunks=new_chunks,
        term_chunk=TermChunk(cluster.term_chunk.terms | present),
        label=cluster.label,
        original_records=cluster.original_records,
    )


def _absorb_into_term_chunks(cluster: Cluster, demoted: set) -> Cluster:
    """Add demoted shared-chunk terms to the term chunks of containing leaves.

    Membership is decided from the leaf's private original records when
    available (the in-process pipeline always attaches them); a leaf whose
    records are unknown conservatively absorbs every demoted term, keeping
    the repair sound (the term *was* published as present in the joint
    cluster) at a small utility cost.
    """
    if isinstance(cluster, JointCluster):
        return JointCluster(
            [_absorb_into_term_chunks(child, demoted) for child in cluster.children],
            cluster.shared_chunks,
            label=cluster.label,
        )
    originals = cluster.original_records
    if originals is None:
        absorbed = set(demoted)
    else:
        absorbed = {t for t in demoted if any(t in record for record in originals)}
    if not absorbed:
        return cluster
    return SimpleCluster(
        size=cluster.size,
        record_chunks=cluster.record_chunks,
        term_chunk=TermChunk(cluster.term_chunk.terms | absorbed),
        label=cluster.label,
        original_records=originals,
    )

"""Persistent shard store and incremental (delta) re-anonymization.

The sharded streaming executor (:mod:`repro.stream.executor`) recomputes
every shard from throwaway spill files on each run, even when one record
changed.  This module upgrades PR 8's one-shot checkpoints into a
long-lived incremental substrate:

* :class:`ShardStore` -- a single-file SQLite database (stdlib
  :mod:`sqlite3`, no extra dependencies) under ``store_dir`` holding the
  run's identity (parameter fingerprint + shard plan), every routed record
  in arrival order, one relabeled cluster snapshot per *engine window*,
  and the merged publication;
* :class:`IncrementalPipeline` -- accepts record appends/deletes, routes
  them with the stored plan, re-anonymizes **only the windows whose
  content changed**, re-runs the global boundary repair, and publishes a
  dataset **bit-for-bit identical** to a cold
  :class:`~repro.stream.executor.ShardedPipeline` run over the mutated
  dataset.

Why per-*window* (not per-shard) granularity: a shard's windows are
consecutive batches of ``max_records_in_memory`` records in arrival
order, so an append only ever changes the shard's *last* (partial)
window, while hash routing would scatter a 1% append across *all* shards
and dirty every one of them.  Keying reuse on the window's record
content keeps the recompute set proportional to the delta, not to the
shard fan-out.

Bit-for-bit identity argument (each step is individually covered by the
existing equivalence suites):

1. the mutated logical sequence is the original arrival order minus each
   deleted record's earliest occurrence, plus appends at the end --
   exactly the dataset a cold run would consume;
2. routing is stable: hash routing is content-based, and ``horpart``
   routing re-validates the stored plan against the mutated sequence's
   sample prefix on every delta (a changed plan is *rejected* with
   :class:`~repro.exceptions.StoreError` rather than silently diverging);
3. per-shard arrival order of surviving records is preserved, so window
   boundaries and contents match the cold run's spill batches; a window
   with unchanged content produces unchanged clusters (vocabulary reuse
   is output-invariant, so re-running an isolated window with a fresh
   vocabulary is equivalent -- the kernel suite's reuse-equivalence
   test);
4. window labels (``S<shard>W<window>.``) depend only on shard and
   window index, and merge + global boundary repair + private-record
   stripping are deterministic functions of the per-window cluster
   lists (the crash/resume suite's identity property).

Durability: every mutation is one atomic SQLite transaction (records,
plan, generation and the delta's idempotency token commit together), each
recomputed window commits independently, and the publication commits
last with the generation it was computed from.  A crash at any instant
leaves a consistent store; the next :meth:`IncrementalPipeline.run` --
with the same ``delta_id`` or with no delta at all -- reconciles the
stale windows by fingerprint and completes the publication.  Faults and
deadlines are honored at every phase boundary (``store.open``,
``store.validate``, ``store.mutate``, ``store.compact``, plus the
streaming ``stream.window`` / ``stream.merge`` / ``stream.verify``
points), so the fault-injection harness drives delta runs exactly like
cold ones.

Concurrency: incremental runs are mutually exclusive per store.  Every
:meth:`IncrementalPipeline.run` (and :meth:`~IncrementalPipeline.compact`)
holds an advisory lock -- a write transaction on the sibling
``store.lock`` SQLite file -- for its whole duration, which serializes
concurrent deltas both across threads of one process (a multi-worker
service) and across processes (two services sharing a ``store_dir``).
SQLite releases the lock automatically when its holder exits or crashes,
so there are no stale locks to clean up.  A run that cannot acquire the
lock within its timeout fails with :class:`~repro.exceptions.StoreError`
and the store unmutated; idempotency tokens live in their own table
(``applied_deltas``), so interleaved deltas can never clobber each
other's tokens.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Optional, Union

from repro import faults
from repro.core import deadline, kernels
from repro.core.clusters import Cluster, DisassociatedDataset, paused_gc
from repro.core.dataset import TransactionDataset, ensure_record, normalize_record
from repro.core.engine import AnonymizationParams, Disassociator, _fill_report
from repro.core.vocab import Vocabulary
from repro.exceptions import ParameterError, StoreError
from repro.stream.boundary import BoundaryRepairSummary, verify_and_repair
from repro.stream.checkpoint import (
    cluster_from_payload,
    cluster_to_payload,
    run_fingerprint,
)
from repro.stream.executor import StreamParams, _without_private_records, relabel_cluster
from repro.stream.planner import HashShardPlanner, HorpartShardPlanner, build_planner

PathLike = Union[str, Path]

#: File name of the SQLite database inside ``store_dir``.
STORE_NAME = "store.sqlite"

#: File name of the advisory lock database next to the store.  Exclusive
#: opens hold a write transaction on it for the store's whole lifetime;
#: SQLite's file locking makes that exclusion work across threads and
#: processes alike, and drops it automatically if the holder crashes.
LOCK_NAME = "store.lock"

#: Default seconds an exclusive open waits for the store lock before
#: failing with :class:`~repro.exceptions.StoreError`.
LOCK_TIMEOUT = 30.0

#: Store schema version; bump on any incompatible change.
STORE_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    seq    INTEGER PRIMARY KEY,
    shard  INTEGER NOT NULL,
    record TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_shard ON records (shard, seq);
CREATE INDEX IF NOT EXISTS idx_records_content ON records (record);
CREATE TABLE IF NOT EXISTS windows (
    shard       INTEGER NOT NULL,
    win         INTEGER NOT NULL,
    fingerprint TEXT NOT NULL,
    num_records INTEGER NOT NULL,
    clusters    TEXT NOT NULL,
    PRIMARY KEY (shard, win)
);
CREATE TABLE IF NOT EXISTS publication (
    id         INTEGER PRIMARY KEY CHECK (id = 0),
    generation INTEGER NOT NULL,
    payload    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS applied_deltas (
    delta_id   TEXT PRIMARY KEY,
    generation INTEGER NOT NULL,
    digest     TEXT NOT NULL
);
"""


def record_text(record: Iterable) -> str:
    """The store's canonical text of one record.

    Identical to the streaming spill's JSONL line
    (:func:`repro.datasets.io.write_jsonl`: the sorted term list as JSON),
    so the windows an incremental run batches from the store hold exactly
    the records a cold run would read back from its spill files.
    """
    return json.dumps(sorted(str(t) for t in record))


def window_fingerprint(texts: list) -> str:
    """Content fingerprint of one window (ordered record texts)."""
    digest = hashlib.blake2b(digest_size=16)
    for text in texts:
        digest.update(text.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def delta_digest(append: list, delete: list) -> str:
    """Content fingerprint of one delta (ordered appends, then deletes).

    Stored with the delta's idempotency token so a replay is recognized
    only when it carries the *same* mutation -- reusing a ``delta_id``
    for a different delta is a caller bug and is refused instead of
    silently dropping the new mutation.
    """
    digest = hashlib.blake2b(digest_size=16)
    for record in append:
        digest.update(record_text(record).encode("utf-8"))
        digest.update(b"\n")
    digest.update(b"--\n")
    for record in delete:
        digest.update(record_text(record).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def store_path(store_dir: PathLike) -> Path:
    """Location of the store database inside ``store_dir``."""
    return Path(store_dir) / STORE_NAME


class ShardStore:
    """The persistent substrate of incremental anonymization runs.

    One SQLite file per store directory, holding four tables:

    ======================  ================================================
    ``meta``                schema version, parameter fingerprint, shard
                            plan, mutation generation, last applied
                            ``delta_id``
    ``records``             every routed record: global arrival order
                            (``seq``), owning shard, canonical text
    ``windows``             one relabeled cluster snapshot per engine
                            window, keyed by ``(shard, window)`` with the
                            window's content fingerprint
    ``publication``         the merged + repaired publication and the
                            generation it was computed from
    ======================  ================================================

    All methods raise :class:`~repro.exceptions.StoreError` on an
    unusable database.  Use as a context manager (or call :meth:`close`).

    ``exclusive=True`` additionally acquires the store's advisory lock
    (a write transaction on the sibling ``store.lock`` file) and holds it
    until :meth:`close`, serializing whole runs against every other
    exclusive opener -- other threads and other processes alike.  All
    mutating entry points (:class:`IncrementalPipeline` runs, compaction)
    open exclusively; plain opens are for read-only inspection.
    """

    def __init__(
        self,
        store_dir: PathLike,
        *,
        exclusive: bool = False,
        lock_timeout: float = LOCK_TIMEOUT,
    ):
        faults.check("store.open")
        deadline.check("store.open")
        self.directory = Path(store_dir)
        self._lock_db: Optional[sqlite3.Connection] = None
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create store directory {store_dir}: {exc}") from exc
        self.path = store_path(self.directory)
        if exclusive:
            self._acquire_lock(lock_timeout)
        try:
            # Autocommit mode: transaction boundaries are explicit (BEGIN
            # IMMEDIATE/COMMIT), so every commit in this module is a
            # deliberate durability point, never a driver side effect.
            self._db = sqlite3.connect(self.path, isolation_level=None)
        except sqlite3.Error as exc:
            self._release_lock()
            raise StoreError(f"cannot open shard store {self.path}: {exc}") from exc
        try:
            # WAL + synchronous=NORMAL: commits stay atomic but no longer
            # fsync individually -- a power loss may roll the store back
            # to an earlier committed generation, which the delta protocol
            # absorbs by design (re-running the delta re-applies a lost
            # mutation, or no-ops via its delta_id when it survived).  An
            # application crash loses nothing.  The alternative (a full
            # fsync per window snapshot) costs more than the windows'
            # recompute saves on small deltas.
            self._db.execute("PRAGMA journal_mode=WAL").fetchone()
            self._db.execute("PRAGMA synchronous=NORMAL")
            self._db.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            # Never abandon a half-opened connection: a leaked handle also
            # pins the WAL lock, and store.open sits in fault-injection
            # retry loops that would leak one per failed attempt.
            self._db.close()
            self._release_lock()
            raise StoreError(f"cannot open shard store {self.path}: {exc}") from exc

    def _acquire_lock(self, timeout: float) -> None:
        """Take the store's advisory lock, waiting up to ``timeout`` seconds.

        The lock is ``BEGIN IMMEDIATE`` on the (otherwise empty)
        ``store.lock`` database: SQLite allows exactly one pending write
        transaction per database file, tracked correctly across threads
        and processes, and abandons it with the holder's process.  The
        wait loop honors the ambient deadline so a deadlined request
        fails fast instead of burning its budget queueing on the lock.
        """
        try:
            self._lock_db = sqlite3.connect(
                self.directory / LOCK_NAME, isolation_level=None
            )
            self._lock_db.execute("PRAGMA busy_timeout=100")
            give_up = time.monotonic() + timeout
            while True:
                try:
                    self._lock_db.execute("BEGIN IMMEDIATE")
                    return
                except sqlite3.OperationalError as exc:
                    if "lock" not in str(exc) and "busy" not in str(exc):
                        raise
                    deadline.check("store.open")
                    if time.monotonic() >= give_up:
                        raise StoreError(
                            f"another run holds the lock on shard store "
                            f"{self.path} (waited {timeout:.1f}s); incremental "
                            "runs serialize per store -- retry once the "
                            "other delta finishes"
                        ) from None
        except sqlite3.Error as exc:
            self._release_lock()
            raise StoreError(
                f"cannot lock shard store {self.path}: {exc}"
            ) from exc
        except BaseException:
            self._release_lock()
            raise

    def _release_lock(self) -> None:
        """Drop the advisory lock (no-op for non-exclusive opens)."""
        if self._lock_db is None:
            return
        try:
            self._lock_db.close()  # closing rolls back the open transaction
        except sqlite3.Error:  # pragma: no cover - defensive
            pass
        self._lock_db = None

    # -- lifecycle ------------------------------------------------------- #
    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the database connection and release the advisory lock."""
        self._db.close()
        self._release_lock()

    # -- meta ------------------------------------------------------------- #
    def _meta(self, key: str) -> Optional[str]:
        row = self._db.execute("SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._db.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)", (key, value)
        )

    @property
    def initialized(self) -> bool:
        """Whether the store has been initialized (version + fingerprint)."""
        return self._meta("version") is not None

    def initialize(self, fingerprint: dict) -> None:
        """Record the store's identity; one atomic commit."""
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._set_meta("version", str(STORE_VERSION))
            self._set_meta("fingerprint", json.dumps(fingerprint, sort_keys=True))
            self._set_meta("generation", "0")
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    def validate(self, fingerprint: dict) -> None:
        """Refuse a store written under a different identity.

        Version and parameter-fingerprint mismatches raise
        :class:`StoreError`: splicing snapshots computed under different
        output-affecting parameters into one publication would corrupt it.
        """
        faults.check("store.validate")
        deadline.check("store.validate")
        version = self._meta("version")
        if version != str(STORE_VERSION):
            raise StoreError(
                f"shard store {self.path} has version {version!r}, "
                f"this library reads version {STORE_VERSION}"
            )
        stored = self._meta("fingerprint")
        try:
            stored = json.loads(stored) if stored is not None else None
        except ValueError as exc:
            raise StoreError(f"malformed fingerprint in {self.path}: {exc}") from exc
        if stored != fingerprint:
            raise StoreError(
                f"shard store {self.path} was created under different "
                "output-affecting parameters; refusing the delta (use a fresh "
                "store_dir, or restore the original parameters)"
            )

    @property
    def generation(self) -> int:
        """Mutation counter: bumped by every committed delta."""
        value = self._meta("generation")
        return 0 if value is None else int(value)

    @property
    def applied_delta(self) -> Optional[str]:
        """The ``delta_id`` of the most recent committed mutation (reporting).

        Idempotency checks go through :meth:`applied_digest` (the
        ``applied_deltas`` table keeps *every* token, so interleaved
        deltas cannot clobber each other's); this meta slot only names
        the latest one for operators.
        """
        return self._meta("applied_delta")

    def applied_digest(self, delta_id: str) -> Optional[str]:
        """The content digest committed under ``delta_id``, or ``None``.

        ``None`` means no mutation with this token has ever committed;
        a digest means the token's delta is already durable (compare it
        against the replay's own digest before skipping the mutation).
        """
        row = self._db.execute(
            "SELECT digest FROM applied_deltas WHERE delta_id = ?", (delta_id,)
        ).fetchone()
        return None if row is None else row[0]

    def plan(self) -> Optional[dict]:
        """The stored shard plan (``planner.describe()`` form), or ``None``."""
        raw = self._meta("plan")
        if raw is None:
            return None
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise StoreError(f"malformed shard plan in {self.path}: {exc}") from exc

    # -- records ----------------------------------------------------------- #
    def num_records(self) -> int:
        """Total records currently held."""
        return int(self._db.execute("SELECT COUNT(*) FROM records").fetchone()[0])

    def shard_counts(self, shards: int) -> list:
        """Per-shard record counts (length ``shards``)."""
        counts = [0] * shards
        for shard, count in self._db.execute(
            "SELECT shard, COUNT(*) FROM records GROUP BY shard"
        ):
            counts[shard] = count
        return counts

    def window_texts(self, shard: int, after_seq: int, limit: int) -> list:
        """Up to ``limit`` of the shard's record ``(seq, text)`` rows after ``after_seq``.

        Fetched eagerly (one bounded batch) so no read cursor stays open
        across the window commits interleaved with the scan.
        """
        return self._db.execute(
            "SELECT seq, record FROM records WHERE shard = ? AND seq > ? "
            "ORDER BY seq LIMIT ?",
            (shard, after_seq, limit),
        ).fetchall()

    def sample_texts(self, limit: int) -> list:
        """The first ``limit`` record texts in global arrival order.

        This is the prefix a cold run's planner would sample, used to
        re-validate a ``horpart`` plan after every mutation.
        """
        return [
            row[0]
            for row in self._db.execute(
                "SELECT record FROM records ORDER BY seq LIMIT ?", (limit,)
            )
        ]

    # -- mutation ----------------------------------------------------------- #
    def apply_delta(
        self,
        append: list,
        delete: list,
        planner,
        *,
        stream: StreamParams,
        delta_id: Optional[str] = None,
        digest: Optional[str] = None,
    ):
        """Apply one delta atomically; returns the planner in effect.

        ``append``/``delete`` are lists of normalized records.  Deletes
        remove the *earliest* surviving occurrence of each record (a
        record the store does not hold raises :class:`StoreError` and the
        whole delta rolls back).  Appends are routed with ``planner`` (the
        stored plan) and land after every existing record, preserving
        arrival order.  For sample-based strategies the plan is
        re-derived from the mutated sequence's sample prefix inside the
        same transaction -- a delta that would change the plan rolls back
        with :class:`StoreError`, because re-anonymizing only dirty
        windows under a different routing would diverge from a cold run.

        On a fresh store the plan is derived from the appended records'
        prefix and recorded; ``delta_id`` (when given, with the delta's
        ``digest``) is recorded in the ``applied_deltas`` table in the
        same commit, making retries of the same delta idempotent.
        """
        faults.check("store.mutate")
        deadline.check("store.mutate")
        self._db.execute("BEGIN IMMEDIATE")
        try:
            for record in delete:
                text = record_text(record)
                row = self._db.execute(
                    "SELECT seq FROM records WHERE record = ? ORDER BY seq LIMIT 1",
                    (text,),
                ).fetchone()
                if row is None:
                    raise StoreError(
                        f"delta deletes a record the store does not hold: {text}"
                    )
                self._db.execute("DELETE FROM records WHERE seq = ?", (row[0],))
            if stream.strategy != "hash" and self._meta("plan") is None:
                # Fresh store: no plan can exist without records (sample-based
                # plans are recorded in the same commit as the first records),
                # so the sequence prefix a cold run would sample is exactly
                # the append prefix.  Derive the routing plan from it before
                # any record is placed.
                planner = build_planner(
                    stream.strategy,
                    stream.shards,
                    append[: stream.max_records_in_memory],
                )
            for record in append:
                self._db.execute(
                    "INSERT INTO records (shard, record) VALUES (?, ?)",
                    (planner.shard_of(record), record_text(record)),
                )
            planner = self._reconcile_plan(planner, stream)
            generation = self.generation + 1
            self._set_meta("generation", str(generation))
            if delta_id is not None:
                self._set_meta("applied_delta", delta_id)
                self._db.execute(
                    "INSERT OR REPLACE INTO applied_deltas "
                    "(delta_id, generation, digest) VALUES (?, ?, ?)",
                    (delta_id, generation, digest if digest is not None else ""),
                )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise
        return planner

    def _reconcile_plan(self, planner, stream: StreamParams):
        """Validate (or first record) the plan against the mutated sequence."""
        if stream.strategy == "hash":
            # Data-oblivious: the plan can never drift; record it once.
            if self._meta("plan") is None:
                self._set_meta("plan", json.dumps(planner.describe(), sort_keys=True))
            return planner
        sample = [
            normalize_record(json.loads(text))
            for text in self.sample_texts(stream.max_records_in_memory)
        ]
        derived = build_planner(stream.strategy, stream.shards, sample)
        stored = self._meta("plan")
        if stored is None:
            self._set_meta("plan", json.dumps(derived.describe(), sort_keys=True))
            return derived
        if json.loads(stored) != derived.describe():
            raise StoreError(
                "delta would change the shard plan fingerprint (the sample "
                "prefix now yields different split terms); incremental "
                "re-anonymization under a drifted plan would diverge from a "
                "cold run -- rebuild the store from scratch in a fresh "
                "store_dir instead"
            )
        return derived

    # -- windows ------------------------------------------------------------ #
    def get_window(self, shard: int, win: int) -> Optional[tuple]:
        """The stored ``(fingerprint, clusters_json)`` of a window, or ``None``."""
        return self._db.execute(
            "SELECT fingerprint, clusters FROM windows WHERE shard = ? AND win = ?",
            (shard, win),
        ).fetchone()

    def put_window(
        self, shard: int, win: int, fingerprint: str, num_records: int, clusters: str
    ) -> None:
        """Durably replace one window snapshot (its own commit)."""
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._db.execute(
                "INSERT OR REPLACE INTO windows "
                "(shard, win, fingerprint, num_records, clusters) "
                "VALUES (?, ?, ?, ?, ?)",
                (shard, win, fingerprint, num_records, clusters),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    def drop_windows_from(self, shard: int, win: int) -> int:
        """Delete the shard's window snapshots at indices ``>= win``.

        Deletes shrink a shard's record sequence, so trailing windows of
        an earlier run can outlive the records that produced them; the
        reconcile pass prunes them the moment the true window count is
        known.  Returns the number of rows dropped.
        """
        cursor = self._db.execute(
            "DELETE FROM windows WHERE shard = ? AND win >= ?", (shard, win)
        )
        return cursor.rowcount

    # -- publication --------------------------------------------------------- #
    def get_publication(self) -> Optional[tuple]:
        """The stored ``(generation, payload_json)`` publication, or ``None``."""
        return self._db.execute(
            "SELECT generation, payload FROM publication WHERE id = 0"
        ).fetchone()

    def put_publication(self, generation: int, payload: str) -> None:
        """Durably replace the merged publication (its own commit)."""
        self._db.execute("BEGIN IMMEDIATE")
        try:
            self._db.execute(
                "INSERT OR REPLACE INTO publication (id, generation, payload) "
                "VALUES (0, ?, ?)",
                (generation, payload),
            )
            self._db.execute("COMMIT")
        except BaseException:
            self._db.execute("ROLLBACK")
            raise

    # -- maintenance ---------------------------------------------------------- #
    def compact(self) -> None:
        """Reclaim the space of deleted rows (SQLite ``VACUUM``).

        Deletes and window rewrites leave free pages in the database file;
        compaction rewrites it tight.  Safe at any point between runs --
        it changes the file layout, never the contents.
        """
        faults.check("store.compact")
        deadline.check("store.compact")
        try:
            self._db.execute("VACUUM")
        except sqlite3.Error as exc:
            raise StoreError(f"cannot compact shard store {self.path}: {exc}") from exc


@dataclass
class IncrementalReport:
    """Timings and structural statistics of one incremental run.

    Mirrors :class:`~repro.stream.executor.ShardedReport` (same cluster
    statistics, filled by the same helper) and adds the delta-specific
    quantities: how many records the delta appended/deleted, how many
    windows were reused from the store versus re-anonymized, and whether
    the run was a no-op served straight from the stored publication.
    """

    num_records: int = 0
    num_shards: int = 0
    shard_records: list = field(default_factory=list)
    shard_windows: list = field(default_factory=list)
    max_records_in_memory: int = 0
    strategy: str = "hash"
    initialized: bool = False
    noop: bool = False
    delta_replayed: bool = False
    appended: int = 0
    deleted: int = 0
    windows_reused: int = 0
    windows_recomputed: int = 0
    planner: dict = field(default_factory=dict)
    num_clusters: int = 0
    num_joint_clusters: int = 0
    num_record_chunks: int = 0
    num_shared_chunks: int = 0
    term_chunk_terms: int = 0
    repair: BoundaryRepairSummary = field(default_factory=BoundaryRepairSummary)
    open_seconds: float = 0.0
    validate_seconds: float = 0.0
    mutate_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    store_seconds: float = 0.0
    merge_seconds: float = 0.0
    verify_seconds: float = 0.0
    pubstore_seconds: float = 0.0
    pubstore_refreshed: bool = False

    @property
    def total_seconds(self) -> float:
        """Total wall time across the incremental phases."""
        return (
            self.open_seconds
            + self.validate_seconds
            + self.mutate_seconds
            + self.anonymize_seconds
            + self.store_seconds
            + self.merge_seconds
            + self.verify_seconds
            + self.pubstore_seconds
        )

    def phase_timings(self) -> dict:
        """Phase timings as a plain dict (machine-readable perf output)."""
        return {
            "open_seconds": self.open_seconds,
            "validate_seconds": self.validate_seconds,
            "mutate_seconds": self.mutate_seconds,
            "anonymize_seconds": self.anonymize_seconds,
            "store_seconds": self.store_seconds,
            "merge_seconds": self.merge_seconds,
            "verify_seconds": self.verify_seconds,
            "pubstore_seconds": self.pubstore_seconds,
            "total_seconds": self.total_seconds,
        }

    def counters(self) -> dict:
        """Work counters of the run (gated by the perf-regression suite)."""
        return {
            "appended": self.appended,
            "deleted": self.deleted,
            "windows_reused": self.windows_reused,
            "windows_recomputed": self.windows_recomputed,
        }

    def summary(self) -> str:
        """One-line human readable summary of the run."""
        if self.noop:
            return (
                f"incremental run: no-op, publication of {self.num_records} "
                f"record(s) served from the store "
                f"({self.num_clusters} clusters) in {self.total_seconds:.2f}s"
            )
        kind = "initialized" if self.initialized else "delta"
        return (
            f"incremental run ({kind}): {self.num_records} records over "
            f"{self.num_shards} shard(s) ({self.strategy}), "
            f"+{self.appended}/-{self.deleted} record(s), "
            f"{self.windows_recomputed} window(s) recomputed / "
            f"{self.windows_reused} reused, {self.num_clusters} clusters, "
            f"{self.repair.total_demoted()} boundary demotion(s) "
            f"in {self.total_seconds:.2f}s"
        )


class IncrementalPipeline:
    """Delta-aware counterpart of :class:`~repro.stream.executor.ShardedPipeline`.

    Args:
        params: the anonymization parameters applied inside every window
            (``verify`` is handled globally by the boundary pass).
        stream: the sharding/memory parameters; ``stream.store_dir`` is
            required -- it names the persistent store this pipeline
            maintains.
        window_engine: optionally a caller-owned (typically warm)
            :class:`~repro.core.engine.Disassociator` to run recomputed
            windows on; the service layer passes its long-lived engine.
            Borrowed engines get their parameters/vocabulary restored and
            are never closed.

    :meth:`run` handles both the initial build (an empty store appends the
    whole dataset) and every later delta uniformly, and always returns the
    full publication of the mutated dataset -- bit-for-bit what a cold
    :class:`ShardedPipeline` run over it would publish.
    """

    def __init__(
        self,
        params: Optional[AnonymizationParams] = None,
        stream: Optional[StreamParams] = None,
        *,
        window_engine: Optional[Disassociator] = None,
    ):
        self.params = params if params is not None else AnonymizationParams()
        self.stream = stream if stream is not None else StreamParams()
        if self.stream.store_dir is None:
            raise ParameterError(
                "IncrementalPipeline requires StreamParams.store_dir: the "
                "persistent shard store is what delta runs are incremental over"
            )
        if self.stream.max_records_in_memory < self.params.max_cluster_size:
            raise ParameterError(
                "max_records_in_memory must be at least max_cluster_size "
                f"(got {self.stream.max_records_in_memory} < "
                f"{self.params.max_cluster_size})"
            )
        self.window_engine = window_engine
        self.last_report: Optional[IncrementalReport] = None
        # In-process cluster cache: (shard, win) -> (fingerprint, clusters).
        # A long-lived pipeline skips re-deserializing the snapshots of
        # windows whose fingerprint is unchanged since its last run; safe
        # because the merge / boundary-repair / strip pipeline never
        # mutates a cluster in place (repairs rebuild).  The store stays
        # the source of truth -- a fresh pipeline starts cold and reads
        # the same snapshots.
        self._window_cache: dict = {}

    # -- public entry points ------------------------------------------- #
    def run(
        self,
        append: Iterable[Iterable] = (),
        delete: Iterable[Iterable] = (),
        *,
        delta_id: Optional[str] = None,
    ) -> DisassociatedDataset:
        """Apply a delta and return the full (mutated) publication.

        ``append`` records land after every existing record; ``delete``
        removes the earliest surviving occurrence of each given record
        (a record the store does not hold raises
        :class:`~repro.exceptions.StoreError` and nothing is mutated).
        An empty delta on an up-to-date store is a no-op fast path served
        straight from the stored publication.

        ``delta_id`` is an optional idempotency token: a mutation is
        committed at most once per token, so the service layer (or an
        operator re-running a crashed CLI delta with ``--delta-id``) can
        retry a failed delta without double-applying it -- the retry
        skips the (already durable) mutation and finishes the window
        reconciliation and publication instead.  Tokens must be unique
        per logical delta: replaying a known token with *different*
        append/delete contents raises :class:`StoreError`.

        The run holds the store's advisory lock for its whole duration;
        concurrent runs over the same store serialize behind it (one
        that waits longer than the lock timeout fails with
        :class:`StoreError` and can simply be retried).
        """
        report = IncrementalReport(
            num_shards=self.stream.shards,
            max_records_in_memory=self.stream.max_records_in_memory,
            strategy=self.stream.strategy,
        )
        self.last_report = report
        # One consistent kernel backend for the whole run, exactly like the
        # cold streaming executor (windows, merge and boundary audit all see
        # the configured backend).
        with kernels.use(kernels.resolve(self.params.kernels)):
            start = time.perf_counter()
            # Exclusive: one run per store at a time.  Concurrent deltas
            # (other service workers, other processes on the same
            # store_dir) queue on the advisory lock instead of tearing
            # each other's reconcile scans.
            store = ShardStore(self.stream.store_dir, exclusive=True)
            report.open_seconds = time.perf_counter() - start
            try:
                return self._run(store, list(append), list(delete), delta_id, report)
            finally:
                store.close()

    def compact(self) -> None:
        """Compact the pipeline's store (see :meth:`ShardStore.compact`)."""
        with ShardStore(self.stream.store_dir, exclusive=True) as store:
            store.compact()

    # -- phases --------------------------------------------------------- #
    def _run(
        self,
        store: ShardStore,
        append: list,
        delete: list,
        delta_id: Optional[str],
        report: IncrementalReport,
    ) -> DisassociatedDataset:
        fingerprint = run_fingerprint(self.params, self.stream)
        start = time.perf_counter()
        if store.initialized:
            store.validate(fingerprint)
        else:
            if delete:
                raise StoreError(
                    "cannot delete from an uninitialized store: nothing has "
                    "been appended yet"
                )
            store.initialize(fingerprint)
            report.initialized = True
        report.validate_seconds = time.perf_counter() - start

        append = [ensure_record(record) for record in append]
        delete = [ensure_record(record) for record in delete]
        planner = self._planner(store)
        start = time.perf_counter()
        applied = None
        if (append or delete) and delta_id is not None:
            applied = store.applied_digest(delta_id)
        if applied is not None:
            # A previous attempt committed this exact delta before dying;
            # re-applying it would double-mutate.  Fall through to the
            # reconcile pass, which finishes whatever that attempt left.
            # A token reused for *different* content is a caller bug --
            # refuse it rather than silently dropping the new mutation.
            if applied != delta_digest(append, delete):
                raise StoreError(
                    f"delta_id {delta_id!r} was already applied to "
                    f"{store.path} with different contents; idempotency "
                    "tokens must be unique per logical delta"
                )
            report.delta_replayed = True
        elif append or delete:
            planner = store.apply_delta(
                append,
                delete,
                planner,
                stream=self.stream,
                delta_id=delta_id,
                digest=delta_digest(append, delete) if delta_id is not None else None,
            )
            report.appended, report.deleted = len(append), len(delete)
        report.planner = planner.describe()
        report.mutate_seconds = time.perf_counter() - start

        report.num_records = store.num_records()
        report.shard_records = store.shard_counts(self.stream.shards)

        generation = store.generation
        stored = store.get_publication()
        if stored is not None and stored[0] == generation:
            # No-op fast path: the stored publication is current (covers
            # both an empty delta and the idempotent replay of a fully
            # completed one).  No engine, no merge, no repair.
            report.noop = True
            published = DisassociatedDataset.from_dict(json.loads(stored[1]))
            report.shard_windows = [0] * self.stream.shards
            _fill_report(report, published)
            # A crash between the publication commit and the pubstore
            # refresh leaves the pubstore one generation behind; the
            # no-op path heals it (and is itself a no-op when fresh).
            self._refresh_pubstore(published, generation, fingerprint, report)
            return published

        clusters = self._reconcile_windows(store, report)

        faults.check("stream.merge")
        deadline.check("stream.merge")
        start = time.perf_counter()
        merged = DisassociatedDataset(clusters, k=self.params.k, m=self.params.m)
        report.merge_seconds = time.perf_counter() - start

        faults.check("stream.verify")
        deadline.check("stream.verify")
        start = time.perf_counter()
        merged, report.repair = verify_and_repair(merged)
        merged = DisassociatedDataset(
            [_without_private_records(cluster) for cluster in merged.clusters],
            k=merged.k,
            m=merged.m,
        )
        report.verify_seconds = time.perf_counter() - start

        start = time.perf_counter()
        payload = merged.to_dict()
        store.put_publication(generation, json.dumps(payload, separators=(",", ":")))
        report.store_seconds += time.perf_counter() - start

        _fill_report(report, merged)
        self._refresh_pubstore(merged, generation, fingerprint, report, payload=payload)
        return merged

    def _refresh_pubstore(
        self,
        published: DisassociatedDataset,
        generation: int,
        fingerprint: dict,
        report: IncrementalReport,
        payload: Optional[dict] = None,
    ) -> None:
        """Bring the queryable publication store in step with this run.

        No-op unless ``stream.pubstore_dir`` is configured.  The pubstore
        snapshot is stamped with the shard store's generation and this
        run's parameter fingerprint; a snapshot that already carries both
        is current and is left untouched (the common no-op delta), while
        any mismatch -- a fresh delta, a crash between the publication
        commit and the previous refresh, or a directory that belonged to
        a different run -- triggers one atomic rebuild.  The shard
        store's advisory lock is still held here, so refreshes serialize
        with the runs that produce them.
        """
        if self.stream.pubstore_dir is None:
            return
        from repro.pubstore import PublicationStore

        start = time.perf_counter()
        with PublicationStore(self.stream.pubstore_dir, exclusive=True) as pub:
            if not (
                pub.initialized
                and pub.generation == generation
                and pub.source == fingerprint
            ):
                pub.build(
                    published,
                    generation=generation,
                    payload=payload,
                    source=fingerprint,
                )
                report.pubstore_refreshed = True
        report.pubstore_seconds += time.perf_counter() - start

    def _planner(self, store: ShardStore):
        """The routing planner in effect for this run."""
        if self.stream.strategy == "hash":
            return HashShardPlanner(self.stream.shards)
        plan = store.plan()
        if plan is None:
            # Fresh store: derived from the appended prefix inside the
            # mutation transaction; route with an empty-sample planner
            # until then (apply_delta replaces it before any record of a
            # sample-based strategy is inserted).
            return _PrefixRoutingPlanner(self.stream)
        if plan.get("strategy") != self.stream.strategy:
            raise StoreError(
                f"store plan strategy {plan.get('strategy')!r} does not match "
                f"the configured {self.stream.strategy!r}"
            )
        return HorpartShardPlanner(self.stream.shards, plan.get("split_terms", []))

    def _reconcile_windows(
        self, store: ShardStore, report: IncrementalReport
    ) -> list[Cluster]:
        """Rebuild the per-window cluster lists, reusing unchanged windows.

        Walks every shard's records in arrival order in bounded batches of
        ``max_records_in_memory`` (the exact batches a cold run's spill
        reader would produce), fingerprints each batch, and only runs the
        engine on windows whose fingerprint is absent or stale.  Each
        recomputed window commits its snapshot independently, so a crash
        mid-reconcile repeats at most one window.
        """
        bound = self.stream.max_records_in_memory
        window_params = replace(self.params, verify=False)
        reuse_vocab = (
            self.stream.reuse_vocabulary and window_params.backend == "encoded"
        )
        clusters: list[Cluster] = []
        report.shard_windows = [0] * self.stream.shards
        start = time.perf_counter()
        store_seconds = 0.0
        borrowed = self.window_engine
        if borrowed is not None:
            engine = borrowed
            saved_params, saved_vocabulary = engine.params, engine.vocabulary
            engine.params = window_params
        else:
            engine = Disassociator(window_params, keep_pool=True)
        try:
            # GC pauses are scoped to the snapshot (de)serialization
            # bursts -- the allocation storms whose garbage is all
            # retained anyway -- never across engine.anonymize, whose
            # cyclic garbage must stay collectable on large builds.
            for shard in range(self.stream.shards):
                # One interning table per shard (lazy: only shards that
                # actually recompute a window pay for it); reuse across
                # the shard's recomputed windows mirrors the cold
                # executor and is output-invariant either way.
                shard_vocab: Optional[Vocabulary] = None
                after_seq, win = -1, 0
                while True:
                    rows = store.window_texts(shard, after_seq, bound)
                    if not rows:
                        break
                    after_seq = rows[-1][0]
                    texts = [row[1] for row in rows]
                    fingerprint = window_fingerprint(texts)
                    stored = store.get_window(shard, win)
                    if stored is not None and stored[0] == fingerprint:
                        cached = self._window_cache.get((shard, win))
                        if cached is not None and cached[0] == fingerprint:
                            window_clusters = cached[1]
                        else:
                            with paused_gc():
                                window_clusters = [
                                    cluster_from_payload(payload)
                                    for payload in json.loads(stored[1])
                                ]
                            self._window_cache[(shard, win)] = (
                                fingerprint,
                                window_clusters,
                            )
                        clusters.extend(window_clusters)
                        report.windows_reused += 1
                    else:
                        faults.check("stream.window")
                        deadline.check("stream.window")
                        if reuse_vocab and shard_vocab is None:
                            shard_vocab = Vocabulary()
                        engine.vocabulary = shard_vocab
                        batch = [
                            normalize_record(json.loads(t)) for t in texts
                        ]
                        published = engine.anonymize(
                            TransactionDataset(batch)
                        )
                        prefix = f"S{shard}W{win}."
                        relabeled = [
                            relabel_cluster(cluster, prefix)
                            for cluster in published.clusters
                        ]
                        store_start = time.perf_counter()
                        with paused_gc():
                            snapshot = json.dumps(
                                [cluster_to_payload(c) for c in relabeled],
                                separators=(",", ":"),
                            )
                        store.put_window(
                            shard, win, fingerprint, len(texts), snapshot
                        )
                        store_seconds += time.perf_counter() - store_start
                        self._window_cache[(shard, win)] = (
                            fingerprint,
                            relabeled,
                        )
                        clusters.extend(relabeled)
                        report.windows_recomputed += 1
                    win += 1
                    if len(rows) < bound:
                        break
                report.shard_windows[shard] = win
                store.drop_windows_from(shard, win)
                for key in [
                    k
                    for k in self._window_cache
                    if k[0] == shard and k[1] >= win
                ]:
                    del self._window_cache[key]
        finally:
            if borrowed is None:
                engine.close()
            else:
                borrowed.params = saved_params
                borrowed.vocabulary = saved_vocabulary
        report.store_seconds += store_seconds
        report.anonymize_seconds = time.perf_counter() - start - store_seconds
        return clusters


class _PrefixRoutingPlanner:
    """Placeholder planner for a fresh sample-based store.

    Never routes a record: on a fresh store :meth:`ShardStore.apply_delta`
    derives the real planner from the appended prefix *before* inserting
    any record (sample-based strategies only).  Reaching :meth:`shard_of`
    would mean a record was routed before the plan existed -- a logic
    error, surfaced loudly.
    """

    def __init__(self, stream: StreamParams):
        self.stream = stream

    def shard_of(self, record):  # pragma: no cover - defensive
        """Refuse to route: the plan must be derived first."""
        raise StoreError(
            "internal error: record routed before the shard plan was derived"
        )

    def describe(self) -> dict:
        """Describe the not-yet-derived plan."""
        return {"strategy": self.stream.strategy, "shards": self.stream.shards}

"""Sharded streaming anonymization: bounded-memory disassociation at scale.

The disassociation transform is embarrassingly partitionable after HORPART
(each cluster is anonymized independently), so datasets too large for one
:class:`~repro.core.engine.Pipeline` pass are handled by sharding the
stream and anonymizing each shard in bounded-memory windows:

* :mod:`repro.stream.planner`  -- record-to-shard routing (content hash or
  HORPART-guided split-term bitmask);
* :mod:`repro.stream.executor` -- :class:`ShardedPipeline`: spill, window,
  anonymize, merge;
* :mod:`repro.stream.boundary` -- the global verification pass that
  re-audits the merged publication across shard boundaries and demotes
  boundary-violating terms (the shard-boundary verification rule is
  documented in that module's docstring);
* :mod:`repro.stream.checkpoint` -- the durable :class:`RunManifest` and
  per-shard publication snapshots behind checkpointed runs, so
  ``ShardedPipeline.run(resume=True)`` restarts only the shard a crash
  interrupted and still publishes bit-for-bit identical output;
* :mod:`repro.stream.store` -- the persistent :class:`ShardStore` (one
  SQLite file) and :class:`IncrementalPipeline`: long-lived delta runs
  that append/delete records and re-anonymize only the windows whose
  content changed, publishing bit-for-bit what a cold run over the
  mutated dataset would.

Typical usage::

    from repro.stream import ShardedPipeline, StreamParams
    from repro import AnonymizationParams

    pipeline = ShardedPipeline(
        AnonymizationParams(k=5, m=2, jobs=4),
        StreamParams(shards=8, max_records_in_memory=10_000),
    )
    published = pipeline.anonymize_file("huge.jsonl")
    print(pipeline.last_report.summary())
"""

from repro.stream.boundary import (
    BoundaryRepairSummary,
    demote_terms,
    verify_and_repair,
)
from repro.stream.checkpoint import (
    MANIFEST_VERSION,
    RunManifest,
    load_shard_snapshot,
    run_fingerprint,
    save_shard_snapshot,
    snapshot_path,
)
from repro.stream.executor import (
    DEFAULT_MAX_RECORDS_IN_MEMORY,
    DEFAULT_SHARDS,
    ShardedPipeline,
    ShardedReport,
    StreamParams,
    anonymize_stream,
    relabel_cluster,
)
from repro.stream.planner import (
    STRATEGIES,
    HashShardPlanner,
    HorpartShardPlanner,
    ShardPlanner,
    build_planner,
    record_fingerprint,
)
from repro.stream.store import (
    STORE_VERSION,
    IncrementalPipeline,
    IncrementalReport,
    ShardStore,
    store_path,
)

__all__ = [
    "DEFAULT_MAX_RECORDS_IN_MEMORY",
    "DEFAULT_SHARDS",
    "MANIFEST_VERSION",
    "STORE_VERSION",
    "STRATEGIES",
    "BoundaryRepairSummary",
    "HashShardPlanner",
    "HorpartShardPlanner",
    "IncrementalPipeline",
    "IncrementalReport",
    "RunManifest",
    "ShardPlanner",
    "ShardStore",
    "ShardedPipeline",
    "ShardedReport",
    "StreamParams",
    "anonymize_stream",
    "build_planner",
    "demote_terms",
    "load_shard_snapshot",
    "record_fingerprint",
    "relabel_cluster",
    "run_fingerprint",
    "save_shard_snapshot",
    "snapshot_path",
    "store_path",
    "verify_and_repair",
]

"""Sharded streaming execution of the disassociation pipeline.

:class:`ShardedPipeline` anonymizes datasets too large for one
:class:`~repro.core.engine.Pipeline` pass, under a hard bound on resident
records (``max_records_in_memory``).  One streaming pass over the input:

1. **plan**   -- buffer the first ``max_records_in_memory`` records as a
   sample and build the shard planner from it (:mod:`repro.stream.planner`);
2. **shard**  -- route every record (sample first, then the rest of the
   stream) to its shard's JSONL spill file, through write buffers that are
   flushed whenever the total buffered count reaches the memory bound;
3. **anonymize** -- for each shard in order, read the spill file back in
   windows of at most ``max_records_in_memory`` records and run the
   existing engine on each window (``backend=encoded`` and the ``jobs=N``
   per-cluster VERPART fan-out apply unchanged inside the window);
4. **merge**  -- concatenate the per-window cluster lists with
   deterministic relabeling (``S<shard>W<window>.<label>``), so the merged
   publication is identical for any interleaving and shared-chunk
   contribution keys stay consistent for reconstruction;
5. **verify** -- run the global boundary pass
   (:mod:`repro.stream.boundary`): re-audit the merged dataset across shard
   boundaries and demote boundary-violating terms until the independent
   audit passes.

Shards are processed *sequentially* by design: running shards concurrently
would multiply resident records by the number of shards and void the memory
bound.  Intra-window parallelism (``jobs``) is where the cores go; multi-
host sharding (one shard per host) is the natural next step and only needs
the spill files shipped.

**Scope of the memory bound.**  ``max_records_in_memory`` bounds the
*original-record working set*: the planner sample, the spill buffers and
the window each engine run operates on.  That is where disassociation's
superlinear costs live (HORPART/VERPART/REFINE over a window), so it is
the bound that makes window size -- not dataset size -- the complexity
driver.  The *output* (published clusters accumulated by merge and walked
by the global verify) necessarily grows with the dataset, as it does for
any API that returns the publication; private per-record data is stripped
from the returned clusters so they hold only what would be serialized.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro.core.clusters import (
    Cluster,
    DisassociatedDataset,
    JointCluster,
    SharedChunk,
    SimpleCluster,
)
from repro.core import kernels
from repro.core.dataset import Record, TransactionDataset, ensure_record
from repro.core.engine import AnonymizationParams, Disassociator, _fill_report
from repro.core.vocab import Vocabulary
from repro.datasets.io import append_jsonl, iter_batches, iter_jsonl, iter_records
from repro.exceptions import ParameterError
from repro.stream.boundary import BoundaryRepairSummary, verify_and_repair
from repro.stream.planner import STRATEGIES, build_planner

PathLike = Union[str, Path]

#: Default number of shards; matches the acceptance benchmark.
DEFAULT_SHARDS = 4

#: Default bound on resident records; small enough that even the benchmark
#: datasets need several windows per shard.
DEFAULT_MAX_RECORDS_IN_MEMORY = 2000


@dataclass(frozen=True)
class StreamParams:
    """Parameters of the sharded streaming execution.

    Attributes:
        shards: number of shards records are routed into.
        max_records_in_memory: hard bound on the original-record working
            set (planner sample, spill buffers and per-window datasets all
            respect it); the accumulated output clusters are proportional
            to the dataset, like any returned publication (see the module
            docstring).
        strategy: shard routing strategy (``hash`` or ``horpart``).
        spill_dir: directory for the shard spill files.  ``None`` (default)
            uses a temporary directory removed after the run; an explicit
            path is created if needed and the spill files are left in place
            for inspection.
        reuse_vocabulary: share one shard-lifetime
            :class:`~repro.core.vocab.Vocabulary` across a shard's windows
            (encoded backend), so later windows only intern terms they have
            not seen yet instead of re-interning from scratch.  Interning
            is append-only and id-insensitive decisions tie-break on the
            decoded string, so the published output is identical with and
            without reuse (covered by the kernel test suite); disable only
            to bound the interning table by window instead of by shard.
    """

    shards: int = DEFAULT_SHARDS
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY
    strategy: str = "hash"
    spill_dir: Optional[PathLike] = None
    reuse_vocabulary: bool = True

    def __post_init__(self):
        if self.shards < 1:
            raise ParameterError(f"shards must be >= 1, got {self.shards}")
        if self.max_records_in_memory < 2:
            raise ParameterError(
                f"max_records_in_memory must be >= 2, got {self.max_records_in_memory}"
            )
        if self.strategy not in STRATEGIES:
            raise ParameterError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )


@dataclass
class ShardedReport:
    """Timings and structural statistics of one sharded streaming run.

    Mirrors :class:`~repro.core.engine.AnonymizationReport` (same cluster
    statistics, filled by the same helper) and adds the streaming-specific
    quantities: per-shard record counts, window counts, the observed peak
    of the original-record working set (always <=
    ``max_records_in_memory``; output clusters are accounted separately --
    see the module docstring) and what the global boundary pass had to
    repair.
    """

    num_records: int = 0
    num_shards: int = 0
    shard_records: list = field(default_factory=list)
    shard_windows: list = field(default_factory=list)
    peak_resident_records: int = 0
    max_records_in_memory: int = 0
    strategy: str = "hash"
    planner: dict = field(default_factory=dict)
    num_clusters: int = 0
    num_joint_clusters: int = 0
    num_record_chunks: int = 0
    num_shared_chunks: int = 0
    term_chunk_terms: int = 0
    repair: BoundaryRepairSummary = field(default_factory=BoundaryRepairSummary)
    plan_seconds: float = 0.0
    shard_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    merge_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total wall time across the streaming phases."""
        return (
            self.plan_seconds
            + self.shard_seconds
            + self.anonymize_seconds
            + self.merge_seconds
            + self.verify_seconds
        )

    def phase_timings(self) -> dict:
        """Phase timings as a plain dict (machine-readable perf output)."""
        return {
            "plan_seconds": self.plan_seconds,
            "shard_seconds": self.shard_seconds,
            "anonymize_seconds": self.anonymize_seconds,
            "merge_seconds": self.merge_seconds,
            "verify_seconds": self.verify_seconds,
            "total_seconds": self.total_seconds,
        }

    def summary(self) -> str:
        """One-line human readable summary of the run."""
        return (
            f"sharded run: {self.num_records} records over {self.num_shards} shard(s) "
            f"({self.strategy}), {sum(self.shard_windows)} window(s), "
            f"peak resident {self.peak_resident_records}/{self.max_records_in_memory} "
            f"records, {self.num_clusters} clusters, "
            f"{self.repair.total_demoted()} boundary demotion(s) "
            f"in {self.total_seconds:.2f}s"
        )


class _ShardSpiller:
    """Buffered writer of per-shard JSONL spill files.

    Records accumulate in per-shard buffers; whenever the total buffered
    count reaches ``buffer_bound`` every buffer is flushed (appended to its
    shard file), so resident records never exceed the bound regardless of
    routing skew.
    """

    def __init__(self, directory: Path, shards: int, buffer_bound: int):
        self.paths = [directory / f"shard-{index:04d}.jsonl" for index in range(shards)]
        # Start from empty files: append_jsonl would otherwise extend stale
        # spills of a previous run in a user-provided spill_dir.
        for path in self.paths:
            path.write_text("", encoding="utf-8")
        self.buffers: list[list[Record]] = [[] for _ in range(shards)]
        self.buffer_bound = buffer_bound
        self.buffered = 0
        self.counts = [0] * shards
        self.peak_buffered = 0

    def add(self, shard: int, record: Record) -> None:
        self.buffers[shard].append(record)
        self.buffered += 1
        self.peak_buffered = max(self.peak_buffered, self.buffered)
        if self.buffered >= self.buffer_bound:
            self.flush()

    def flush(self) -> None:
        for shard, buffer in enumerate(self.buffers):
            if buffer:
                self.counts[shard] += append_jsonl(buffer, self.paths[shard])
                buffer.clear()
        self.buffered = 0


class ShardedPipeline:
    """Bounded-memory sharded counterpart of :class:`~repro.core.engine.Pipeline`.

    Args:
        params: the anonymization parameters applied inside every window
            (``verify`` is handled globally by the boundary pass, not per
            window).
        stream: the sharding/memory parameters.

    ``max_records_in_memory`` must be at least ``params.max_cluster_size``:
    a window smaller than the HORPART bound would silently tighten the
    clustering and change the output semantics.

    ``window_engine`` optionally injects a caller-owned (typically warm)
    :class:`~repro.core.engine.Disassociator` to run the windows on --- the
    service layer passes its long-lived engine so streamed requests inherit
    the already-spawned worker pool.  The pipeline temporarily swaps the
    engine's parameters/vocabulary for the run and restores them; it never
    closes an injected engine.  Without it, the pipeline owns a private
    engine per run (the historical behavior).
    """

    def __init__(
        self,
        params: Optional[AnonymizationParams] = None,
        stream: Optional[StreamParams] = None,
        *,
        window_engine: Optional[Disassociator] = None,
    ):
        self.params = params if params is not None else AnonymizationParams()
        self.stream = stream if stream is not None else StreamParams()
        if self.stream.max_records_in_memory < self.params.max_cluster_size:
            raise ParameterError(
                "max_records_in_memory must be at least max_cluster_size "
                f"(got {self.stream.max_records_in_memory} < "
                f"{self.params.max_cluster_size})"
            )
        self.window_engine = window_engine
        self.last_report: Optional[ShardedReport] = None

    # -- public entry points ------------------------------------------- #
    def anonymize_file(
        self, path: PathLike, format: str = "auto", delimiter: Optional[str] = None
    ) -> DisassociatedDataset:
        """Stream a dataset file through the sharded pipeline."""
        return self.run(iter_records(path, format=format, delimiter=delimiter))

    def anonymize(self, dataset: TransactionDataset) -> DisassociatedDataset:
        """Anonymize an in-memory dataset through the sharded path.

        Mostly useful for equivalence testing and benchmarks; the point of
        the subsystem is :meth:`anonymize_file` / :meth:`run` on streams
        that never fit in memory.
        """
        return self.run(iter(dataset))

    def run(self, records: Iterator[Iterable]) -> DisassociatedDataset:
        """Run the five streaming phases over an iterator of records."""
        report = ShardedReport(
            num_shards=self.stream.shards,
            max_records_in_memory=self.stream.max_records_in_memory,
            strategy=self.stream.strategy,
        )
        self.last_report = report
        # One consistent kernel backend for the whole streaming run: the
        # windows re-enter the same scope through the engine, and the
        # global boundary audit (which runs outside any engine call) sees
        # the configured backend instead of re-consulting the environment.
        with kernels.use(kernels.resolve(self.params.kernels)):
            if self.stream.spill_dir is None:
                with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                    published = self._run(records, Path(tmp), report)
            else:
                spill_dir = Path(self.stream.spill_dir)
                spill_dir.mkdir(parents=True, exist_ok=True)
                published = self._run(records, spill_dir, report)
        return published

    # -- phases --------------------------------------------------------- #
    def _run(
        self, records: Iterator[Iterable], spill_dir: Path, report: ShardedReport
    ) -> DisassociatedDataset:
        bound = self.stream.max_records_in_memory
        records = iter(records)

        # plan: sample the stream head (only when the strategy needs one;
        # hash routing is data-oblivious and streams straight through).
        start = time.perf_counter()
        sample: list[Record] = []
        if self.stream.strategy != "hash":
            for record in records:
                sample.append(ensure_record(record))
                if len(sample) >= bound:
                    break
        planner = build_planner(self.stream.strategy, self.stream.shards, sample)
        report.planner = planner.describe()
        report.peak_resident_records = max(report.peak_resident_records, len(sample))
        report.plan_seconds = time.perf_counter() - start

        # shard: route the sample, then the rest of the stream, to spills.
        # The sample is drained record-by-record as it is routed, so sample
        # remainder + spill buffers together never exceed the memory bound.
        start = time.perf_counter()
        spiller = _ShardSpiller(spill_dir, self.stream.shards, bound)
        sample.reverse()
        while sample:
            record = sample.pop()
            spiller.add(planner.shard_of(record), record)
        for record in records:
            record = ensure_record(record)
            spiller.add(planner.shard_of(record), record)
        spiller.flush()
        report.shard_records = list(spiller.counts)
        report.num_records = sum(spiller.counts)
        report.peak_resident_records = max(
            report.peak_resident_records, spiller.peak_buffered
        )
        report.shard_seconds = time.perf_counter() - start

        # anonymize: windows of at most `bound` records per shard, through
        # the standard engine (encoded backend, jobs fan-out).  One engine
        # serves every window with `keep_pool`, so later windows inherit the
        # already-spawned worker pool instead of paying process startup per
        # window; per-window state (mask caches, merge memos) is scoped to
        # each `anonymize` call by construction.
        start = time.perf_counter()
        window_params = replace(self.params, verify=False)
        clusters: list[Cluster] = []
        report.shard_windows = [0] * self.stream.shards
        reuse_vocab = (
            self.stream.reuse_vocabulary and window_params.backend == "encoded"
        )
        borrowed = self.window_engine
        if borrowed is not None:
            # Caller-owned warm engine: borrow it for the run (inheriting
            # its live worker pool), restore its parameters and vocabulary
            # afterwards, and never close it.
            engine = borrowed
            saved_params, saved_vocabulary = engine.params, engine.vocabulary
            engine.params = window_params
        else:
            engine = Disassociator(window_params, keep_pool=True)
        try:
            for shard, path in enumerate(spiller.paths):
                # One interning table per shard: every window of the shard
                # encodes onto it, so only first-seen terms pay the intern
                # cost (ids are append-only; relabeling keys are untouched).
                engine.vocabulary = Vocabulary() if reuse_vocab else None
                for window, batch in enumerate(iter_batches(iter_jsonl(path), bound)):
                    report.peak_resident_records = max(
                        report.peak_resident_records, len(batch)
                    )
                    report.shard_windows[shard] += 1
                    published = engine.anonymize(TransactionDataset(batch))
                    prefix = f"S{shard}W{window}."
                    clusters.extend(
                        relabel_cluster(cluster, prefix) for cluster in published.clusters
                    )
        finally:
            if borrowed is None:
                engine.close()
            else:
                borrowed.params = saved_params
                borrowed.vocabulary = saved_vocabulary
        report.anonymize_seconds = time.perf_counter() - start

        # merge: one publication; relabeling already made labels unique.
        start = time.perf_counter()
        merged = DisassociatedDataset(clusters, k=self.params.k, m=self.params.m)
        report.merge_seconds = time.perf_counter() - start

        # verify: global audit across shard boundaries, demotion repair.
        # Private original records (needed by the repair's demotion
        # decisions) are dropped afterwards: the returned publication holds
        # only what would be serialized.
        start = time.perf_counter()
        merged, report.repair = verify_and_repair(merged)
        merged = DisassociatedDataset(
            [_without_private_records(cluster) for cluster in merged.clusters],
            k=merged.k,
            m=merged.m,
        )
        report.verify_seconds = time.perf_counter() - start

        _fill_report(report, merged)
        return merged


def _without_private_records(cluster: Cluster) -> Cluster:
    """A copy of the cluster tree without the private original records."""
    if isinstance(cluster, JointCluster):
        return JointCluster(
            [_without_private_records(child) for child in cluster.children],
            cluster.shared_chunks,
            label=cluster.label,
        )
    if cluster.original_records is None:
        return cluster
    return SimpleCluster(
        size=cluster.size,
        record_chunks=cluster.record_chunks,
        term_chunk=cluster.term_chunk,
        label=cluster.label,
    )


def relabel_cluster(cluster: Cluster, prefix: str) -> Cluster:
    """Prefix every label in a cluster tree (deterministic merge identity).

    Shared-chunk contribution keys reference member-cluster labels, so they
    are rewritten with the same prefix -- reconstruction keeps slicing the
    shared sub-records per contributing cluster correctly after the merge.
    """
    if isinstance(cluster, JointCluster):
        children = [relabel_cluster(child, prefix) for child in cluster.children]
        shared = [
            SharedChunk(
                chunk.domain,
                chunk.subrecords,
                {f"{prefix}{label}": count for label, count in chunk.contributions.items()},
            )
            for chunk in cluster.shared_chunks
        ]
        return JointCluster(children, shared, label=f"{prefix}{cluster.label}")
    return SimpleCluster(
        size=cluster.size,
        record_chunks=cluster.record_chunks,
        term_chunk=cluster.term_chunk,
        label=f"{prefix}{cluster.label}",
        original_records=cluster.original_records,
    )


def anonymize_stream(
    source: Union[PathLike, TransactionDataset, Iterable[Iterable]],
    k: int = 5,
    m: int = 2,
    shards: int = DEFAULT_SHARDS,
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY,
    strategy: str = "hash",
    **engine_params,
) -> DisassociatedDataset:
    """Functional one-call interface to the sharded streaming pipeline.

    ``source`` may be a dataset file path (format sniffed from the
    extension), a :class:`TransactionDataset` or any iterable of records.
    Extra keyword arguments go to :class:`AnonymizationParams`.

    .. deprecated:: 1.1
        Compatibility shim over :class:`repro.service.AnonymizationService`
        (a ``mode="stream"`` request); output is bit-for-bit identical.
    """
    import warnings

    warnings.warn(
        "anonymize_stream() is a one-shot compatibility shim; use "
        "repro.service.AnonymizationService with a mode='stream' request",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: the service layer builds on this module.
    from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig

    config = ServiceConfig(
        k=k,
        m=m,
        shards=shards,
        max_records_in_memory=max_records_in_memory,
        shard_strategy=strategy,
        **engine_params,
    )
    with AnonymizationService(config) as service:
        return service.run(AnonymizationRequest(source, mode="stream")).publication

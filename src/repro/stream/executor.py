"""Sharded streaming execution of the disassociation pipeline.

:class:`ShardedPipeline` anonymizes datasets too large for one
:class:`~repro.core.engine.Pipeline` pass, under a hard bound on resident
records (``max_records_in_memory``).  One streaming pass over the input:

1. **plan**   -- buffer the first ``max_records_in_memory`` records as a
   sample and build the shard planner from it (:mod:`repro.stream.planner`);
2. **shard**  -- route every record (sample first, then the rest of the
   stream) to its shard's JSONL spill file, through write buffers that are
   flushed whenever the total buffered count reaches the memory bound;
3. **anonymize** -- for each shard in order, read the spill file back in
   windows of at most ``max_records_in_memory`` records and run the
   existing engine on each window (``backend=encoded`` and the ``jobs=N``
   per-cluster VERPART fan-out apply unchanged inside the window);
4. **merge**  -- concatenate the per-window cluster lists with
   deterministic relabeling (``S<shard>W<window>.<label>``), so the merged
   publication is identical for any interleaving and shared-chunk
   contribution keys stay consistent for reconstruction;
5. **verify** -- run the global boundary pass
   (:mod:`repro.stream.boundary`): re-audit the merged dataset across shard
   boundaries and demote boundary-violating terms until the independent
   audit passes.

Shards are processed *sequentially* by design: running shards concurrently
would multiply resident records by the number of shards and void the memory
bound.  Intra-window parallelism (``jobs``) is where the cores go; multi-
host sharding (one shard per host) is the natural next step and only needs
the spill files shipped.

**Checkpointed runs.**  With an explicit ``spill_dir`` the run is
checkpointed by default (see :mod:`repro.stream.checkpoint`): a durable
``manifest.json`` records the plan and the spill completion, and each
shard's relabeled cluster list is snapshotted once the shard finishes.
After a crash, ``run(resume=True)`` (or ``repro anonymize --resume``)
skips every completed shard, re-runs only the interrupted one from its
spill file, and re-merges -- producing a publication bit-for-bit identical
to an uninterrupted run, because shards share no state (each gets a fresh
vocabulary) and merge/verify are deterministic functions of the per-shard
cluster lists.  The streaming phases double as cooperative cancellation
points: each visits a :mod:`repro.faults` injection point and checks the
ambient request deadline (:mod:`repro.core.deadline`).

**Scope of the memory bound.**  ``max_records_in_memory`` bounds the
*original-record working set*: the planner sample, the spill buffers and
the window each engine run operates on.  That is where disassociation's
superlinear costs live (HORPART/VERPART/REFINE over a window), so it is
the bound that makes window size -- not dataset size -- the complexity
driver.  The *output* (published clusters accumulated by merge and walked
by the global verify) necessarily grows with the dataset, as it does for
any API that returns the publication; private per-record data is stripped
from the returned clusters so they hold only what would be serialized.
"""

from __future__ import annotations

import gc
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Union

from repro import faults
from repro.core.clusters import (
    Cluster,
    DisassociatedDataset,
    JointCluster,
    SharedChunk,
    SimpleCluster,
)
from repro.core import deadline, kernels
from repro.core.dataset import Record, TransactionDataset, ensure_record
from repro.core.engine import AnonymizationParams, Disassociator, _fill_report
from repro.core.vocab import Vocabulary
from repro.datasets.io import append_jsonl, iter_batches, iter_jsonl, iter_records
from repro.exceptions import CheckpointError, ParameterError
from repro.stream.boundary import BoundaryRepairSummary, verify_and_repair
from repro.stream.checkpoint import (
    RunManifest,
    load_shard_snapshot,
    run_fingerprint,
    serialize_shard_snapshot,
    snapshot_path,
    spill_path,
    write_atomic_blob,
)
from repro.stream.planner import STRATEGIES, build_planner

PathLike = Union[str, Path]

#: Default number of shards; matches the acceptance benchmark.
DEFAULT_SHARDS = 4

#: Default bound on resident records; small enough that even the benchmark
#: datasets need several windows per shard.
DEFAULT_MAX_RECORDS_IN_MEMORY = 2000


@dataclass(frozen=True)
class StreamParams:
    """Parameters of the sharded streaming execution.

    Attributes:
        shards: number of shards records are routed into.
        max_records_in_memory: hard bound on the original-record working
            set (planner sample, spill buffers and per-window datasets all
            respect it); the accumulated output clusters are proportional
            to the dataset, like any returned publication (see the module
            docstring).
        strategy: shard routing strategy (``hash`` or ``horpart``).
        spill_dir: directory for the shard spill files.  ``None`` (default)
            uses a temporary directory removed after the run; an explicit
            path is created if needed and the spill files are left in place
            for inspection.
        reuse_vocabulary: share one shard-lifetime
            :class:`~repro.core.vocab.Vocabulary` across a shard's windows
            (encoded backend), so later windows only intern terms they have
            not seen yet instead of re-interning from scratch.  Interning
            is append-only and id-insensitive decisions tie-break on the
            decoded string, so the published output is identical with and
            without reuse (covered by the kernel test suite); disable only
            to bound the interning table by window instead of by shard.
        checkpoint: whether the run writes the durable manifest and
            per-shard snapshots that make ``resume=True`` possible
            (:mod:`repro.stream.checkpoint`).  ``None`` (default) enables
            checkpointing exactly when ``spill_dir`` is set -- durable
            spills imply a durable run.  ``False`` keeps an explicit
            ``spill_dir`` manifest-free (e.g. to measure checkpoint
            overhead); ``True`` without a ``spill_dir`` is rejected, since
            a checkpoint inside an auto-removed temporary directory could
            never be resumed.
        store_dir: directory of the persistent incremental shard store
            (:mod:`repro.stream.store`).  Ignored by :class:`ShardedPipeline`
            itself; it configures where
            :class:`~repro.stream.store.IncrementalPipeline` keeps the
            long-lived store that delta runs (record appends/deletes)
            re-anonymize incrementally.  Like ``spill_dir``, the location
            is the store's identity, not part of its parameter fingerprint.
        pubstore_dir: directory of the indexed publication store
            (:mod:`repro.pubstore`).  When set,
            :class:`~repro.stream.store.IncrementalPipeline` refreshes the
            store's indexes on every delta publish, stamped with the shard
            store's generation so the queryable snapshot is never ahead of
            or behind the publication it serves.  Like ``store_dir``, the
            location is the store's identity, not part of its parameter
            fingerprint.
    """

    shards: int = DEFAULT_SHARDS
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY
    strategy: str = "hash"
    spill_dir: Optional[PathLike] = None
    reuse_vocabulary: bool = True
    checkpoint: Optional[bool] = None
    store_dir: Optional[PathLike] = None
    pubstore_dir: Optional[PathLike] = None

    def __post_init__(self):
        if self.shards < 1:
            raise ParameterError(f"shards must be >= 1, got {self.shards}")
        if self.max_records_in_memory < 2:
            raise ParameterError(
                f"max_records_in_memory must be >= 2, got {self.max_records_in_memory}"
            )
        if self.strategy not in STRATEGIES:
            raise ParameterError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.checkpoint and self.spill_dir is None:
            raise ParameterError(
                "checkpoint=True requires an explicit spill_dir: a manifest "
                "in an auto-removed temporary directory cannot be resumed"
            )

    @property
    def checkpoint_enabled(self) -> bool:
        """Effective checkpoint switch (``None`` means 'iff spill_dir set')."""
        if self.checkpoint is None:
            return self.spill_dir is not None
        return bool(self.checkpoint)


@dataclass
class ShardedReport:
    """Timings and structural statistics of one sharded streaming run.

    Mirrors :class:`~repro.core.engine.AnonymizationReport` (same cluster
    statistics, filled by the same helper) and adds the streaming-specific
    quantities: per-shard record counts, window counts, the observed peak
    of the original-record working set (always <=
    ``max_records_in_memory``; output clusters are accounted separately --
    see the module docstring) and what the global boundary pass had to
    repair.
    """

    num_records: int = 0
    num_shards: int = 0
    shard_records: list = field(default_factory=list)
    shard_windows: list = field(default_factory=list)
    peak_resident_records: int = 0
    max_records_in_memory: int = 0
    strategy: str = "hash"
    checkpoint: bool = False
    resumed: bool = False
    shards_skipped: int = 0
    planner: dict = field(default_factory=dict)
    num_clusters: int = 0
    num_joint_clusters: int = 0
    num_record_chunks: int = 0
    num_shared_chunks: int = 0
    term_chunk_terms: int = 0
    repair: BoundaryRepairSummary = field(default_factory=BoundaryRepairSummary)
    plan_seconds: float = 0.0
    shard_seconds: float = 0.0
    anonymize_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    merge_seconds: float = 0.0
    verify_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total wall time across the streaming phases."""
        return (
            self.plan_seconds
            + self.shard_seconds
            + self.anonymize_seconds
            + self.checkpoint_seconds
            + self.merge_seconds
            + self.verify_seconds
        )

    def phase_timings(self) -> dict:
        """Phase timings as a plain dict (machine-readable perf output)."""
        return {
            "plan_seconds": self.plan_seconds,
            "shard_seconds": self.shard_seconds,
            "anonymize_seconds": self.anonymize_seconds,
            "checkpoint_seconds": self.checkpoint_seconds,
            "merge_seconds": self.merge_seconds,
            "verify_seconds": self.verify_seconds,
            "total_seconds": self.total_seconds,
        }

    def summary(self) -> str:
        """One-line human readable summary of the run."""
        resumed = (
            f", resumed ({self.shards_skipped} shard(s) from checkpoint)"
            if self.resumed
            else ""
        )
        return (
            f"sharded run: {self.num_records} records over {self.num_shards} shard(s) "
            f"({self.strategy}), {sum(self.shard_windows)} window(s), "
            f"peak resident {self.peak_resident_records}/{self.max_records_in_memory} "
            f"records, {self.num_clusters} clusters, "
            f"{self.repair.total_demoted()} boundary demotion(s) "
            f"in {self.total_seconds:.2f}s{resumed}"
        )


class _ShardSpiller:
    """Buffered writer of per-shard JSONL spill files.

    Records accumulate in per-shard buffers; whenever the total buffered
    count reaches ``buffer_bound`` every buffer is flushed (appended to its
    shard file), so resident records never exceed the bound regardless of
    routing skew.
    """

    def __init__(self, directory: Path, shards: int, buffer_bound: int):
        self.paths = [spill_path(directory, index) for index in range(shards)]
        # Start from empty files: append_jsonl would otherwise extend stale
        # spills of a previous run in a user-provided spill_dir.
        for path in self.paths:
            path.write_text("", encoding="utf-8")
        self.buffers: list[list[Record]] = [[] for _ in range(shards)]
        self.buffer_bound = buffer_bound
        self.buffered = 0
        self.counts = [0] * shards
        self.peak_buffered = 0

    def add(self, shard: int, record: Record) -> None:
        self.buffers[shard].append(record)
        self.buffered += 1
        self.peak_buffered = max(self.peak_buffered, self.buffered)
        if self.buffered >= self.buffer_bound:
            self.flush()

    def flush(self) -> None:
        faults.check("stream.spill")
        deadline.check("stream.spill")
        for shard, buffer in enumerate(self.buffers):
            if buffer:
                self.counts[shard] += append_jsonl(buffer, self.paths[shard])
                buffer.clear()
        self.buffered = 0


class ShardedPipeline:
    """Bounded-memory sharded counterpart of :class:`~repro.core.engine.Pipeline`.

    Args:
        params: the anonymization parameters applied inside every window
            (``verify`` is handled globally by the boundary pass, not per
            window).
        stream: the sharding/memory parameters.

    ``max_records_in_memory`` must be at least ``params.max_cluster_size``:
    a window smaller than the HORPART bound would silently tighten the
    clustering and change the output semantics.

    ``window_engine`` optionally injects a caller-owned (typically warm)
    :class:`~repro.core.engine.Disassociator` to run the windows on --- the
    service layer passes its long-lived engine so streamed requests inherit
    the already-spawned worker pool.  The pipeline temporarily swaps the
    engine's parameters/vocabulary for the run and restores them; it never
    closes an injected engine.  Without it, the pipeline owns a private
    engine per run (the historical behavior).
    """

    def __init__(
        self,
        params: Optional[AnonymizationParams] = None,
        stream: Optional[StreamParams] = None,
        *,
        window_engine: Optional[Disassociator] = None,
    ):
        self.params = params if params is not None else AnonymizationParams()
        self.stream = stream if stream is not None else StreamParams()
        if self.stream.max_records_in_memory < self.params.max_cluster_size:
            raise ParameterError(
                "max_records_in_memory must be at least max_cluster_size "
                f"(got {self.stream.max_records_in_memory} < "
                f"{self.params.max_cluster_size})"
            )
        self.window_engine = window_engine
        self.last_report: Optional[ShardedReport] = None

    # -- public entry points ------------------------------------------- #
    def anonymize_file(
        self,
        path: PathLike,
        format: str = "auto",
        delimiter: Optional[str] = None,
        *,
        resume: bool = False,
    ) -> DisassociatedDataset:
        """Stream a dataset file through the sharded pipeline.

        With ``resume=True`` (checkpointed runs only) a usable manifest in
        ``spill_dir`` takes over and the file is not re-read; without one
        the run transparently restarts from the file.
        """
        return self.run(iter_records(path, format=format, delimiter=delimiter), resume=resume)

    def anonymize(self, dataset: TransactionDataset) -> DisassociatedDataset:
        """Anonymize an in-memory dataset through the sharded path.

        Mostly useful for equivalence testing and benchmarks; the point of
        the subsystem is :meth:`anonymize_file` / :meth:`run` on streams
        that never fit in memory.
        """
        return self.run(iter(dataset))

    def run(
        self,
        records: Optional[Iterator[Iterable]] = None,
        *,
        resume: bool = False,
    ) -> DisassociatedDataset:
        """Run the five streaming phases over an iterator of records.

        ``resume=True`` (requires a checkpointed run: explicit ``spill_dir``
        with checkpointing enabled) picks up after a crash: completed
        shards load from their snapshots, the interrupted shard re-runs
        from its spill file, and merge + global verification re-execute, so
        the result is identical to an uninterrupted run.  ``records`` is
        then optional -- it is consumed only if the manifest shows the
        spill phase never completed (the run restarts from scratch); with
        no manifest at all and no ``records``, :class:`CheckpointError` is
        raised.
        """
        if resume and not self.stream.checkpoint_enabled:
            raise ParameterError(
                "resume=True requires a checkpointed run: set "
                "StreamParams.spill_dir (and leave checkpointing enabled)"
            )
        if records is None and not resume:
            raise ParameterError("records are required when not resuming")
        report = ShardedReport(
            num_shards=self.stream.shards,
            max_records_in_memory=self.stream.max_records_in_memory,
            strategy=self.stream.strategy,
            checkpoint=self.stream.checkpoint_enabled,
        )
        self.last_report = report
        # One consistent kernel backend for the whole streaming run: the
        # windows re-enter the same scope through the engine, and the
        # global boundary audit (which runs outside any engine call) sees
        # the configured backend instead of re-consulting the environment.
        with kernels.use(kernels.resolve(self.params.kernels)):
            if self.stream.spill_dir is None:
                with tempfile.TemporaryDirectory(prefix="repro-shards-") as tmp:
                    published = self._run(records, Path(tmp), report, resume=False)
            else:
                spill_dir = Path(self.stream.spill_dir)
                spill_dir.mkdir(parents=True, exist_ok=True)
                published = self._run(records, spill_dir, report, resume=resume)
        return published

    # -- phases --------------------------------------------------------- #
    def _load_resume_manifest(
        self, spill_dir: Path, fingerprint: dict, records_available: bool
    ) -> Optional[RunManifest]:
        """The manifest to resume from, or ``None`` to restart from records.

        A missing manifest or an incomplete spill phase means the durable
        state cannot seed a run: with the original records at hand the run
        transparently restarts from scratch; without them resuming is
        impossible and :class:`CheckpointError` says so.  A manifest written
        under different output-affecting parameters is always an error --
        silently splicing its snapshots into this run would publish a
        Frankenstein dataset.
        """
        manifest = RunManifest.load(spill_dir)
        if manifest is not None:
            if manifest.num_shards != self.stream.shards or not manifest.matches(
                fingerprint
            ):
                raise CheckpointError(
                    f"run manifest in {spill_dir} was written under different "
                    "parameters; refusing to resume (rerun without --resume, "
                    "or restore the original parameters)"
                )
            if not manifest.spill_complete:
                manifest = None
        if manifest is None and not records_available:
            raise CheckpointError(
                f"no resumable run in {spill_dir}: no complete spill manifest "
                "found and no input records were provided"
            )
        return manifest

    def _run(
        self,
        records: Optional[Iterator[Iterable]],
        spill_dir: Path,
        report: ShardedReport,
        *,
        resume: bool,
    ) -> DisassociatedDataset:
        bound = self.stream.max_records_in_memory
        checkpointing = self.stream.checkpoint_enabled
        fingerprint = run_fingerprint(self.params, self.stream) if checkpointing else {}

        manifest: Optional[RunManifest] = None
        if resume:
            manifest = self._load_resume_manifest(
                spill_dir, fingerprint, records_available=records is not None
            )
        report.resumed = manifest is not None

        if manifest is None:
            manifest = self._plan_and_spill(records, spill_dir, report, fingerprint)
        else:
            # Plan + spill already durable: adopt their recorded outcome.
            report.planner = dict(manifest.planner)
            report.shard_records = list(manifest.shard_records)
            report.num_records = manifest.num_records

        clusters = self._anonymize_shards(spill_dir, report, manifest)

        # merge: one publication; relabeling already made labels unique.
        faults.check("stream.merge")
        deadline.check("stream.merge")
        start = time.perf_counter()
        merged = DisassociatedDataset(clusters, k=self.params.k, m=self.params.m)
        report.merge_seconds = time.perf_counter() - start

        # verify: global audit across shard boundaries, demotion repair.
        # Private original records (needed by the repair's demotion
        # decisions) are dropped afterwards: the returned publication holds
        # only what would be serialized.
        faults.check("stream.verify")
        deadline.check("stream.verify")
        start = time.perf_counter()
        merged, report.repair = verify_and_repair(merged)
        merged = DisassociatedDataset(
            [_without_private_records(cluster) for cluster in merged.clusters],
            k=merged.k,
            m=merged.m,
        )
        report.verify_seconds = time.perf_counter() - start

        _fill_report(report, merged)
        return merged

    def _plan_and_spill(
        self,
        records: Iterator[Iterable],
        spill_dir: Path,
        report: ShardedReport,
        fingerprint: dict,
    ) -> Optional[RunManifest]:
        """Phases 1+2 (plan, shard); returns the durable manifest if any.

        On checkpointed runs any stale manifest is removed *before* the
        spill files are truncated, and the new manifest (with
        ``spill_complete=True``) is written only after the final flush --
        so a crash anywhere in between leaves no manifest and a resume
        restarts from the original records instead of trusting half-written
        spills (or a previous run's snapshots).
        """
        checkpointing = self.stream.checkpoint_enabled
        if checkpointing:
            RunManifest.invalidate(spill_dir)

        # plan: sample the stream head (only when the strategy needs one;
        # hash routing is data-oblivious and streams straight through).
        faults.check("stream.plan")
        deadline.check("stream.plan")
        start = time.perf_counter()
        records = iter(records)
        sample: list[Record] = []
        if self.stream.strategy != "hash":
            for record in records:
                sample.append(ensure_record(record))
                if len(sample) >= self.stream.max_records_in_memory:
                    break
        planner = build_planner(self.stream.strategy, self.stream.shards, sample)
        report.planner = planner.describe()
        report.peak_resident_records = max(report.peak_resident_records, len(sample))
        report.plan_seconds = time.perf_counter() - start

        # shard: route the sample, then the rest of the stream, to spills.
        # The sample is drained record-by-record as it is routed, so sample
        # remainder + spill buffers together never exceed the memory bound.
        start = time.perf_counter()
        spiller = _ShardSpiller(
            spill_dir, self.stream.shards, self.stream.max_records_in_memory
        )
        sample.reverse()
        while sample:
            record = sample.pop()
            spiller.add(planner.shard_of(record), record)
        for record in records:
            record = ensure_record(record)
            spiller.add(planner.shard_of(record), record)
        spiller.flush()
        report.shard_records = list(spiller.counts)
        report.num_records = sum(spiller.counts)
        report.peak_resident_records = max(
            report.peak_resident_records, spiller.peak_buffered
        )
        report.shard_seconds = time.perf_counter() - start

        if not checkpointing:
            return None
        manifest = RunManifest(
            fingerprint=fingerprint,
            num_shards=self.stream.shards,
            planner=report.planner,
            num_records=report.num_records,
            shard_records=report.shard_records,
            spill_complete=True,
        )
        start = time.perf_counter()
        manifest.save(spill_dir)
        report.checkpoint_seconds += time.perf_counter() - start
        return manifest

    def _anonymize_shards(
        self,
        spill_dir: Path,
        report: ShardedReport,
        manifest: Optional[RunManifest],
    ) -> list[Cluster]:
        """Phase 3: per-shard windowed engine runs (+ snapshots/skip).

        With a manifest, shards whose snapshot already exists load it
        instead of re-running, and every live shard publishes its own
        snapshot the moment it finishes -- the atomic rename that makes
        the snapshot visible *is* the durable completion marker, so no
        per-shard manifest rewrite is needed and a crash mid-checkpoint
        only repeats that one shard's work.  The writes are synchronous
        on purpose: a background
        writer thread was measured *slower* end-to-end (serialization is
        pure Python and fights the window compute for the GIL, and the
        fsyncs it could overlap cost ~1-2 ms each), while the synchronous
        cost is tracked in ``report.checkpoint_seconds`` and the
        resilience benchmark gates the end-to-end overhead.
        """
        bound = self.stream.max_records_in_memory
        start = time.perf_counter()
        checkpoint_seconds = 0.0
        window_params = replace(self.params, verify=False)
        clusters: list[Cluster] = []
        report.shard_windows = [0] * self.stream.shards
        reuse_vocab = (
            self.stream.reuse_vocabulary and window_params.backend == "encoded"
        )
        spill_paths = [
            spill_path(spill_dir, index) for index in range(self.stream.shards)
        ]
        borrowed = self.window_engine
        if borrowed is not None:
            # Caller-owned warm engine: borrow it for the run (inheriting
            # its live worker pool), restore its parameters and vocabulary
            # afterwards, and never close it.
            engine = borrowed
            saved_params, saved_vocabulary = engine.params, engine.vocabulary
            engine.params = window_params
        else:
            engine = Disassociator(window_params, keep_pool=True)
        try:
            for shard, path in enumerate(spill_paths):
                if manifest is not None and snapshot_path(spill_dir, shard).exists():
                    # Completed before the crash: the atomically published
                    # snapshot *is* the durable completion marker.
                    snapshot, windows = load_shard_snapshot(spill_dir, shard)
                    clusters.extend(snapshot)
                    report.shard_windows[shard] = windows
                    report.shards_skipped += 1
                    continue
                # One interning table per shard: every window of the shard
                # encodes onto it, so only first-seen terms pay the intern
                # cost (ids are append-only; relabeling keys are untouched).
                engine.vocabulary = Vocabulary() if reuse_vocab else None
                shard_clusters: list[Cluster] = []
                # Spill-order positions of each distinct record, so the
                # snapshot can reference original records by index instead
                # of re-serializing them (they are already durable in the
                # spill file).
                record_index: dict = {}
                records_seen = 0
                for window, batch in enumerate(iter_batches(iter_jsonl(path), bound)):
                    faults.check("stream.window")
                    deadline.check("stream.window")
                    report.peak_resident_records = max(
                        report.peak_resident_records, len(batch)
                    )
                    report.shard_windows[shard] += 1
                    dataset = TransactionDataset(batch)
                    published = engine.anonymize(dataset)
                    if manifest is not None:
                        index_start = time.perf_counter()
                        for record in dataset:
                            record_index.setdefault(record, []).append(records_seen)
                            records_seen += 1
                        checkpoint_seconds += time.perf_counter() - index_start
                    prefix = f"S{shard}W{window}."
                    shard_clusters.extend(
                        relabel_cluster(cluster, prefix)
                        for cluster in published.clusters
                    )
                if manifest is not None:
                    faults.check("stream.checkpoint")
                    deadline.check("stream.checkpoint")
                    checkpoint_start = time.perf_counter()
                    # Snapshot serialization allocates one short burst of
                    # containers that all die by refcount; pausing the
                    # cyclic collector keeps that burst from triggering
                    # full-heap collections mid-checkpoint (measured at
                    # 2-3x the serialization cost itself).
                    gc_was_enabled = gc.isenabled()
                    gc.disable()
                    try:
                        write_atomic_blob(
                            snapshot_path(spill_dir, shard),
                            serialize_shard_snapshot(
                                shard,
                                shard_clusters,
                                record_index,
                                report.shard_windows[shard],
                            ),
                        )
                    finally:
                        if gc_was_enabled:
                            gc.enable()
                    checkpoint_seconds += time.perf_counter() - checkpoint_start
                clusters.extend(shard_clusters)
        finally:
            if borrowed is None:
                engine.close()
            else:
                borrowed.params = saved_params
                borrowed.vocabulary = saved_vocabulary
        report.checkpoint_seconds += checkpoint_seconds
        report.anonymize_seconds = time.perf_counter() - start - checkpoint_seconds
        return clusters


def _without_private_records(cluster: Cluster) -> Cluster:
    """A copy of the cluster tree without the private original records."""
    if isinstance(cluster, JointCluster):
        return JointCluster(
            [_without_private_records(child) for child in cluster.children],
            cluster.shared_chunks,
            label=cluster.label,
        )
    if cluster.original_records is None:
        return cluster
    return SimpleCluster(
        size=cluster.size,
        record_chunks=cluster.record_chunks,
        term_chunk=cluster.term_chunk,
        label=cluster.label,
    )


def relabel_cluster(cluster: Cluster, prefix: str) -> Cluster:
    """Prefix every label in a cluster tree (deterministic merge identity).

    Shared-chunk contribution keys reference member-cluster labels, so they
    are rewritten with the same prefix -- reconstruction keeps slicing the
    shared sub-records per contributing cluster correctly after the merge.
    """
    if isinstance(cluster, JointCluster):
        children = [relabel_cluster(child, prefix) for child in cluster.children]
        shared = [
            SharedChunk(
                chunk.domain,
                chunk.subrecords,
                {f"{prefix}{label}": count for label, count in chunk.contributions.items()},
            )
            for chunk in cluster.shared_chunks
        ]
        return JointCluster(children, shared, label=f"{prefix}{cluster.label}")
    return SimpleCluster(
        size=cluster.size,
        record_chunks=cluster.record_chunks,
        term_chunk=cluster.term_chunk,
        label=f"{prefix}{cluster.label}",
        original_records=cluster.original_records,
    )


def anonymize_stream(
    source: Union[PathLike, TransactionDataset, Iterable[Iterable]],
    k: int = 5,
    m: int = 2,
    shards: int = DEFAULT_SHARDS,
    max_records_in_memory: int = DEFAULT_MAX_RECORDS_IN_MEMORY,
    strategy: str = "hash",
    **engine_params,
) -> DisassociatedDataset:
    """Functional one-call interface to the sharded streaming pipeline.

    ``source`` may be a dataset file path (format sniffed from the
    extension), a :class:`TransactionDataset` or any iterable of records.
    Extra keyword arguments go to :class:`AnonymizationParams`.

    .. deprecated:: 1.1
        Compatibility shim over :class:`repro.service.AnonymizationService`
        (a ``mode="stream"`` request); output is bit-for-bit identical.
    """
    import warnings

    warnings.warn(
        "anonymize_stream() is a one-shot compatibility shim; use "
        "repro.service.AnonymizationService with a mode='stream' request",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: the service layer builds on this module.
    from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig

    config = ServiceConfig(
        k=k,
        m=m,
        shards=shards,
        max_records_in_memory=max_records_in_memory,
        shard_strategy=strategy,
        **engine_params,
    )
    with AnonymizationService(config) as service:
        return service.run(AnonymizationRequest(source, mode="stream")).publication

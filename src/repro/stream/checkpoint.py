"""Durable run state for checkpointed sharded streaming runs.

A checkpointed :class:`~repro.stream.executor.ShardedPipeline` run keeps,
next to its shard spill files in ``spill_dir``:

* ``manifest.json`` -- the :class:`RunManifest`: format version, a
  fingerprint of the output-affecting parameters, the planner description,
  per-shard record counts and whether the spill phase completed;
* ``shard-NNNN.clusters.json`` -- one snapshot per completed shard: the
  shard's relabeled cluster list, serialized by :func:`cluster_to_payload`.

Every write is atomic and durable (temp file + flush + fsync +
``os.replace``, then a directory fsync), so a crash at any instant leaves
either the previous file or the new one -- never a torn one.  Because the
snapshot only appears under its final name once fully durable, its very
*existence* is the per-shard completion marker: a resume re-runs exactly
the shards whose snapshot is absent, and no separate progress record has
to be kept in sync with it.  A fresh (non-resume) run deletes the
manifest and every snapshot before touching the spills, so stale
snapshots can never be adopted by a later run.

Snapshots extend the public cluster serialization
(:meth:`~repro.core.clusters.SimpleCluster.to_dict`) with each simple
cluster's private original records.  The global boundary repair that
runs after the merge consults those records to decide which demoted terms
each leaf absorbs; dropping them (as the public form deliberately does)
would make a resumed run repair more conservatively than an uninterrupted
one and break bit-for-bit output identity.  Because those records are
already durable in the shard's spill file, the snapshot normally stores
only their spill-order *indices* (``original_record_indices``) and the
loader re-reads the spill to resolve them; term sets are compacted to
joined strings.  Both are snapshot-internal encodings -- snapshots live
only in the operator's ``spill_dir`` and are not part of the published
output.

The parameter fingerprint covers every field of
:class:`~repro.core.engine.AnonymizationParams` and
:class:`~repro.stream.executor.StreamParams` that can change the published
output.  Execution-only knobs -- ``jobs``, ``kernels`` (output equivalence
across both is covered by the kernel/parallelism test suites), the
checkpoint switch and the spill directory itself -- are excluded, so an
operator may resume with fewer workers or a different kernel after a
crash.  Anything else differing raises
:class:`~repro.exceptions.CheckpointError` instead of silently splicing
incompatible partial results into one publication.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.core.clusters import (
    Cluster,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
    paused_gc,
)
from repro.datasets.io import iter_jsonl
from repro.exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.engine import AnonymizationParams
    from repro.stream.executor import StreamParams

#: Manifest file name inside ``spill_dir``.
MANIFEST_NAME = "manifest.json"

#: Manifest format version; bump on any incompatible schema change.
MANIFEST_VERSION = 1

#: Parameter fields excluded from the fingerprint (execution-only knobs
#: proven output-neutral by the equivalence suites).
_EXCLUDED_PARAM_FIELDS = frozenset({"jobs", "kernels"})

#: Stream fields excluded from the fingerprint (the directories are the
#: checkpoint's/store's identity, not part of it; the switch toggles
#: durability).
_EXCLUDED_STREAM_FIELDS = frozenset(
    {"spill_dir", "checkpoint", "store_dir", "pubstore_dir"}
)


def _json_safe(value):
    """Coerce a parameter value to its JSON round-trip form."""
    if isinstance(value, (frozenset, set)):
        return sorted(_json_safe(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    return value


def run_fingerprint(params: "AnonymizationParams", stream: "StreamParams") -> dict:
    """Fingerprint of the output-affecting run parameters (JSON-safe)."""
    fingerprint = {}
    for fld in dataclasses.fields(params):
        if fld.name not in _EXCLUDED_PARAM_FIELDS:
            fingerprint[f"params.{fld.name}"] = _json_safe(getattr(params, fld.name))
    for fld in dataclasses.fields(stream):
        if fld.name not in _EXCLUDED_STREAM_FIELDS:
            fingerprint[f"stream.{fld.name}"] = _json_safe(getattr(stream, fld.name))
    return fingerprint


def _write_atomic(path: Path, payload: dict) -> None:
    """Durably replace ``path`` with ``payload`` as JSON (atomic rename).

    Serializes to one bytes blob first: a single ``write()`` is several
    times faster than ``json.dump``'s many small writes through the text
    layer, and checkpoint writes sit on the critical path of every shard.
    """
    write_atomic_blob(path, json.dumps(payload, separators=(",", ":")).encode("utf-8"))


def write_atomic_blob(path: Path, blob: bytes) -> None:
    """Durably replace ``path`` with ``blob`` (atomic rename + fsyncs).

    Split out from :func:`_write_atomic` so pre-serialized payloads can be
    written off the compute thread: everything in here releases the GIL
    (plain syscalls), unlike the serialization.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(dir_fd)


@dataclass
class RunManifest:
    """Durable identity + spill state of one checkpointed sharded run.

    ``spill_complete`` guards the spill files: until the full input stream
    has been routed, the per-shard JSONL files are partial and a resume
    must restart from the original records.  Per-shard completion is not
    recorded here -- a shard is done exactly when its (atomically
    published) snapshot file exists, see the module docstring.
    """

    fingerprint: dict
    num_shards: int
    version: int = MANIFEST_VERSION
    planner: dict = field(default_factory=dict)
    num_records: int = 0
    shard_records: list = field(default_factory=list)
    spill_complete: bool = False

    # -- persistence ----------------------------------------------------- #
    @staticmethod
    def path(spill_dir: Path) -> Path:
        """Location of the manifest inside ``spill_dir``."""
        return Path(spill_dir) / MANIFEST_NAME

    def to_payload(self) -> dict:
        """JSON payload of the manifest's current state."""
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "num_shards": self.num_shards,
            "planner": self.planner,
            "num_records": self.num_records,
            "shard_records": list(self.shard_records),
            "spill_complete": self.spill_complete,
        }

    def save(self, spill_dir: Path) -> None:
        """Durably write the manifest (atomic replace + fsync)."""
        _write_atomic(self.path(spill_dir), self.to_payload())

    @classmethod
    def load(cls, spill_dir: Path) -> Optional["RunManifest"]:
        """Read the manifest from ``spill_dir``.

        Returns ``None`` when no manifest exists (nothing was checkpointed
        there); raises :class:`CheckpointError` for a manifest that exists
        but cannot be trusted (unparseable, wrong schema version, or
        malformed fields) -- resuming over it would corrupt the output.
        """
        path = cls.path(spill_dir)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointError(f"cannot read run manifest {path}: {exc}") from exc
        try:
            payload = json.loads(text)
            version = int(payload["version"])
            if version != MANIFEST_VERSION:
                raise CheckpointError(
                    f"run manifest {path} has version {version}, "
                    f"this library reads version {MANIFEST_VERSION}"
                )
            manifest = cls(
                fingerprint=dict(payload["fingerprint"]),
                num_shards=int(payload["num_shards"]),
                version=version,
                planner=dict(payload.get("planner") or {}),
                num_records=int(payload.get("num_records", 0)),
                shard_records=[int(n) for n in payload.get("shard_records", [])],
                spill_complete=bool(payload.get("spill_complete", False)),
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed run manifest {path}: {exc}") from exc
        return manifest

    @classmethod
    def invalidate(cls, spill_dir: Path) -> None:
        """Remove the manifest and every snapshot (start of a fresh run).

        A fresh run truncates the spill files, so checkpoint state from an
        earlier run would otherwise describe snapshots that no longer
        match the spills.  The manifest goes first: a crash mid-cleanup
        then resumes from the original records (no manifest), never from
        the leftover snapshots -- which are ignored without a manifest and
        removed here before the new one is written.
        """
        spill_dir = Path(spill_dir)
        try:
            cls.path(spill_dir).unlink()
        except FileNotFoundError:
            pass
        for snapshot in spill_dir.glob("shard-*.clusters.json"):
            try:
                snapshot.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                pass

    # -- queries --------------------------------------------------------- #
    def matches(self, fingerprint: dict) -> bool:
        """Whether this manifest was written under the same parameters."""
        return self.fingerprint == fingerprint


# -- shard publication snapshots ----------------------------------------- #
def snapshot_path(spill_dir: Path, shard: int) -> Path:
    """Location of one shard's cluster snapshot inside ``spill_dir``."""
    return Path(spill_dir) / f"shard-{shard:04d}.clusters.json"


def spill_path(spill_dir: Path, shard: int) -> Path:
    """Location of one shard's spilled records inside ``spill_dir``."""
    return Path(spill_dir) / f"shard-{shard:04d}.jsonl"


#: Separator for the compact term-set form in snapshots.  A term set is
#: written as one joined string instead of a JSON list: far fewer objects
#: to build and encode on the per-shard checkpoint critical path, and a
#: plain space needs no JSON escaping.  A set whose terms themselves
#: contain the separator falls back to the list form (detected by a
#: separator count mismatch), so the format is never ambiguous.
_TERMS_SEP = " "


def _terms_payload(terms):
    """One term set as a joined string (or a list when unrepresentable)."""
    joined = _TERMS_SEP.join(terms)
    if joined.count(_TERMS_SEP) != len(terms) - 1:
        return list(terms)  # a term contains the separator (or the set is empty)
    return joined


def _terms_from_payload(value):
    """Invert :func:`_terms_payload` (accepts both forms)."""
    return value.split(_TERMS_SEP) if isinstance(value, str) else value


def _chunk_payload(chunk) -> dict:
    """Snapshot form of a record/shared chunk, without the sorted lists.

    The public :meth:`to_dict` sorts every term list for stable published
    output, but chunk contents are ``frozenset``s -- deserialization
    normalizes them straight back into sets, erasing their order -- so
    for a snapshot (private to ``spill_dir``, read only by
    :func:`cluster_from_payload`) the sorting is pure CPU on the
    per-shard checkpoint critical path.  Only *list* order survives the
    round trip (sub-record sequence, contribution slices), and that is
    preserved verbatim here exactly as in :meth:`to_dict`.
    """
    payload = {
        "domain": _terms_payload(chunk.domain),
        "subrecords": [_terms_payload(subrecord) for subrecord in chunk.subrecords],
    }
    if isinstance(chunk, SharedChunk):
        payload["contributions"] = [
            [str(label), int(count)] for label, count in chunk.contributions.items()
        ]
    return payload


def _chunk_from_payload(payload: dict):
    """Rebuild a record/shared chunk from its :func:`_chunk_payload` form."""
    domain = _terms_from_payload(payload["domain"])
    subrecords = [_terms_from_payload(sr) for sr in payload["subrecords"]]
    raw = payload.get("contributions")
    if raw is None:
        return RecordChunk(domain, subrecords)
    return SharedChunk(
        domain, subrecords, {str(label): int(count) for label, count in raw}
    )


def cluster_to_payload(cluster: Cluster, record_index: Optional[dict] = None) -> dict:
    """Serialize a cluster tree for a checkpoint snapshot.

    Extends the public :meth:`to_dict` schema with each simple cluster's
    private ``original_records`` (when present): the post-merge boundary
    repair needs them, so a snapshot without them would change the output
    of a resumed run (see the module docstring).  Term lists are written
    unsorted (see :func:`_chunk_payload`); the reconstructed clusters are
    identical either way.

    ``record_index`` (term set -> unconsumed positions in the shard's
    spill file) enables the compact form: the original records are
    already durable in the spill, so each cluster stores only its
    records' *indices* (``original_record_indices``) instead of
    re-serializing the term sets.  Equal records are interchangeable --
    which copy's index a cluster takes cannot matter, they are the same
    term set.  A record missing from the index falls back to the inline
    form for that cluster, so the snapshot is always self-consistent.
    """
    if isinstance(cluster, JointCluster):
        return {
            "type": "joint",
            "label": cluster.label,
            "children": [
                cluster_to_payload(child, record_index) for child in cluster.children
            ],
            "shared_chunks": [
                _chunk_payload(chunk) for chunk in cluster.shared_chunks
            ],
        }
    payload = {
        "type": "simple",
        "label": cluster.label,
        "size": cluster.size,
        "record_chunks": [_chunk_payload(chunk) for chunk in cluster.record_chunks],
        "term_chunk": {"terms": _terms_payload(cluster.term_chunk.terms)},
    }
    originals = cluster.original_records
    if originals is not None:
        if record_index is not None:
            try:
                payload["original_record_indices"] = [
                    record_index[record].pop() for record in originals
                ]
                return payload
            except (KeyError, IndexError):
                pass  # record not spilled as-is: store this cluster inline
        payload["original_records"] = [_terms_payload(record) for record in originals]
    return payload


def cluster_from_payload(payload: dict, records: Optional[list] = None) -> Cluster:
    """Rebuild a cluster tree from its :func:`cluster_to_payload` form.

    ``records`` is the shard's spill content in file order, required to
    resolve the compact ``original_record_indices`` form.
    """
    try:
        kind = payload["type"]
        if kind == "joint":
            return JointCluster(
                [cluster_from_payload(child, records) for child in payload["children"]],
                [_chunk_from_payload(c) for c in payload.get("shared_chunks", [])],
                label=payload.get("label"),
            )
        if kind != "simple":
            raise CheckpointError(f"unknown cluster type in snapshot: {kind!r}")
        indices = payload.get("original_record_indices")
        if indices is not None:
            if records is None:
                raise CheckpointError(
                    "cluster snapshot references spill records by index "
                    "but no spill records were provided"
                )
            originals = [records[index] for index in indices]
        else:
            raw = payload.get("original_records")
            originals = (
                None
                if raw is None
                else [_terms_from_payload(record) for record in raw]
            )
        return SimpleCluster(
            size=payload["size"],
            record_chunks=[_chunk_from_payload(c) for c in payload["record_chunks"]],
            term_chunk=TermChunk(_terms_from_payload(payload["term_chunk"]["terms"])),
            label=payload.get("label"),
            original_records=originals,
        )
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(f"malformed cluster snapshot payload: {exc}") from exc


def serialize_shard_snapshot(
    shard: int,
    clusters: list,
    record_index: Optional[dict] = None,
    windows: int = 0,
) -> bytes:
    """One shard's snapshot as a single JSON blob.

    With a ``record_index`` (see :func:`cluster_to_payload`) the snapshot
    stores spill-file indices instead of the original term sets and marks
    itself ``records_from_spill`` so the loader knows to read them back.
    ``windows`` records how many engine windows produced the shard (pure
    reporting; it travels with the snapshot because the manifest is not
    rewritten per shard).
    """
    with paused_gc():
        payload = {
            "shard": shard,
            "windows": windows,
            "records_from_spill": record_index is not None,
            "clusters": [
                cluster_to_payload(cluster, record_index) for cluster in clusters
            ],
        }
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def save_shard_snapshot(
    spill_dir: Path,
    shard: int,
    clusters: list,
    record_index: Optional[dict] = None,
    windows: int = 0,
) -> Path:
    """Durably write one shard's relabeled publication snapshot."""
    path = snapshot_path(spill_dir, shard)
    write_atomic_blob(
        path, serialize_shard_snapshot(shard, clusters, record_index, windows)
    )
    return path


def load_shard_snapshot(spill_dir: Path, shard: int) -> tuple[list, int]:
    """Read one shard's snapshot back as ``(clusters, window count)``.

    A snapshot marked ``records_from_spill`` re-reads the shard's spill
    file (guaranteed complete by ``spill_complete`` before any shard
    runs) to resolve its original-record indices.
    """
    path = snapshot_path(spill_dir, shard)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        if int(payload["shard"]) != shard:
            raise CheckpointError(
                f"snapshot {path} records shard {payload['shard']}, expected {shard}"
            )
        records = None
        if payload.get("records_from_spill"):
            records = list(iter_jsonl(spill_path(spill_dir, shard)))
        with paused_gc():
            clusters = [
                cluster_from_payload(entry, records) for entry in payload["clusters"]
            ]
        return clusters, int(payload.get("windows", 0))
    except CheckpointError:
        raise
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed shard snapshot {path}: {exc}") from exc

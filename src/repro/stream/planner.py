"""Shard planning: assigning streamed records to bounded-memory shards.

A :class:`ShardPlanner` maps each record to a shard id in ``[0, shards)``.
Routing must be

* **stateless and deterministic** -- the same record always lands on the
  same shard, across runs, processes and hosts (so a re-run of a crashed
  job reproduces the same spill files), and
* **cheap** -- it sits on the hot path of the single streaming pass.

Two strategies are provided:

* :class:`HashShardPlanner` -- a content hash of the (sorted) record.
  Perfectly balanced in expectation and needs no knowledge of the data,
  but scatters similar records across shards, which costs utility: HORPART
  inside each shard sees a uniform slice of the dataset instead of a
  neighbourhood.

* :class:`HorpartShardPlanner` -- mirrors HORPART's split decisions using
  a bounded sample of the stream.  HORPART recursively splits on the most
  frequent unused term; the top levels of that recursion tree are decided
  by the globally most frequent terms.  The planner takes the ``B`` most
  frequent terms of the sample (``B ~ log2(shards) + 1``) and routes each
  record by the bitmask of which of those terms it contains -- records
  agreeing on all top split terms (i.e. records HORPART would keep
  together longest) land on the same shard.  Records containing none of
  the split terms fall back to hash routing so the tail of the
  distribution still spreads across shards.
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.core.dataset import ensure_record
from repro.exceptions import ParameterError

#: Shard-routing strategies understood by :func:`build_planner`.
STRATEGIES = ("hash", "horpart")


def record_fingerprint(record: Iterable) -> int:
    """Stable content hash of a record (independent of ``PYTHONHASHSEED``).

    Terms are sorted and joined with an unlikely separator before hashing,
    so logically equal records always fingerprint identically.
    """
    canonical = "\x1f".join(sorted(str(t) for t in record))
    return int.from_bytes(
        hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashShardPlanner:
    """Route records by a stable content hash: balanced, data-oblivious."""

    name = "hash"

    def __init__(self, shards: int):
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def shard_of(self, record: Iterable) -> int:
        """The shard id of ``record`` in ``[0, shards)``."""
        return record_fingerprint(record) % self.shards

    def describe(self) -> dict:
        """Machine-readable description (for reports and benchmarks)."""
        return {"strategy": self.name, "shards": self.shards}


class HorpartShardPlanner:
    """Route records by their membership pattern over HORPART's top split terms.

    Built from a bounded sample of the stream (the planner never sees more
    records than the streaming memory budget allows).  See the module
    docstring for the rationale.
    """

    name = "horpart"

    def __init__(self, shards: int, split_terms: Sequence[str]):
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.split_terms: tuple[str, ...] = tuple(str(t) for t in split_terms)
        self._fallback = HashShardPlanner(shards)

    @classmethod
    def from_sample(
        cls, shards: int, sample: Iterable[Iterable], num_terms: Optional[int] = None
    ) -> "HorpartShardPlanner":
        """Build the planner from a sample of records.

        ``num_terms`` defaults to ``ceil(log2(shards)) + 1`` -- one more
        level than strictly needed to address ``shards`` leaves, so the
        bitmask space is at least twice the shard count and the modulo
        folds fine-grained neighbourhoods instead of splitting coarse ones.
        """
        supports: Counter = Counter()
        for record in sample:
            supports.update(str(t) for t in record)
        if num_terms is None:
            num_terms = max(1, math.ceil(math.log2(max(2, shards))) + 1)
        # Ties broken lexicographically so the planner is deterministic.
        top = sorted(supports.items(), key=lambda item: (-item[1], item[0]))
        return cls(shards, [term for term, _ in top[:num_terms]])

    def shard_of(self, record: Iterable) -> int:
        """The shard id of ``record`` in ``[0, shards)``.

        Records are normalized first (a no-op for reader output), so the
        same logical record always routes the same way regardless of its
        container or term types.
        """
        terms = ensure_record(record)
        mask = 0
        for bit, term in enumerate(self.split_terms):
            if term in terms:
                mask |= 1 << bit
        if mask == 0:
            # None of the split terms: the record carries no routing signal,
            # spread the tail uniformly instead of piling it onto shard 0.
            return self._fallback.shard_of(terms)
        return mask % self.shards

    def describe(self) -> dict:
        """Machine-readable description (for reports and benchmarks)."""
        return {
            "strategy": self.name,
            "shards": self.shards,
            "split_terms": list(self.split_terms),
        }


def build_planner(
    strategy: str, shards: int, sample: Iterable[Iterable] = ()
) -> "ShardPlanner":
    """Build the planner for ``strategy`` (``hash`` needs no sample)."""
    if strategy == "hash":
        return HashShardPlanner(shards)
    if strategy == "horpart":
        return HorpartShardPlanner.from_sample(shards, sample)
    raise ParameterError(
        f"unknown shard strategy {strategy!r}; expected one of {STRATEGIES}"
    )


# Structural alias: anything with shard_of/describe and a ``shards`` attribute.
ShardPlanner = HashShardPlanner | HorpartShardPlanner

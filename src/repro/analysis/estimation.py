"""Support estimation on disassociated data (paper, Section 6).

An analyst receiving a disassociated publication has three options:

1. work on **guaranteed lower bounds** computed directly from the chunks
   (an itemset contained in one record/shared chunk certainly existed that
   many times; a term-chunk term certainly existed at least once),
2. work on a **probabilistic model** where each record-chunk sub-record is
   attributed to each of the cluster's records with probability
   ``1/|P|`` (the paper's pointer to probabilistic databases), or
3. work on one or more **reconstructed datasets** and average query
   results.

:class:`SupportEstimator` implements all three so the experiments (and
users) can compare them.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.core.clusters import DisassociatedDataset, JointCluster, SimpleCluster
from repro.core.reconstruct import Reconstructor


class SupportEstimator:
    """Estimates itemset supports from a disassociated publication.

    Args:
        published: the disassociated dataset.
        seed: seed used by reconstruction-based estimates.
    """

    def __init__(self, published: DisassociatedDataset, seed: Optional[int] = None):
        self._published = published
        self._seed = seed

    # ------------------------------------------------------------------ #
    def lower_bound(self, itemset: Iterable) -> int:
        """Guaranteed lower bound of the itemset's original support."""
        return self._published.lower_bound_support(itemset)

    def expected_support(self, itemset: Iterable) -> float:
        """Expected support under the independent-chunk probabilistic model.

        Within each cluster the sub-records of different chunks are combined
        independently and uniformly at random; the expected number of
        records of a cluster of size ``s`` containing the full itemset is
        ``s * prod_i (count_i / s)`` where ``count_i`` is the number of
        sub-records of chunk ``i`` containing the part of the itemset that
        falls in that chunk's domain.  Terms left in the term chunk
        contribute their minimum possible support, ``1/s``.
        """
        items = frozenset(str(t) for t in itemset)
        if not items:
            return float(self._published.total_records())
        total = 0.0
        for cluster in self._published.clusters:
            total += self._expected_in_cluster(cluster, items)
        return total

    def reconstructed_support(self, itemset: Iterable, reconstructions: int = 5) -> float:
        """Average support over ``reconstructions`` random reconstructions."""
        items = frozenset(str(t) for t in itemset)
        reconstructor = Reconstructor(self._published, seed=self._seed)
        counts = [
            reconstructor.reconstruct().support(items) for _ in range(max(1, reconstructions))
        ]
        return sum(counts) / len(counts)

    # ------------------------------------------------------------------ #
    def _expected_in_cluster(self, cluster, items: frozenset) -> float:
        if isinstance(cluster, JointCluster):
            leaves = cluster.leaves()
            chunks = list(cluster.iter_shared_chunks())
            size = cluster.size
            term_chunk_terms = cluster.term_chunk_terms()
            # leaf record chunks participate too
            for leaf in leaves:
                chunks.extend(leaf.record_chunks)
            domain = cluster.domain()
        else:
            leaf: SimpleCluster = cluster
            chunks = list(leaf.record_chunks)
            size = leaf.size
            term_chunk_terms = frozenset(leaf.term_chunk.terms)
            domain = leaf.domain()

        if size == 0 or not items <= domain:
            return 0.0

        probability = 1.0
        covered: set = set()
        for chunk in chunks:
            part = items & chunk.domain
            if not part:
                continue
            covered.update(part)
            matching = sum(1 for sr in chunk.subrecords if part <= sr)
            probability *= matching / size
            if probability == 0.0:
                return 0.0
        uncovered = items - covered
        for term in uncovered:
            if term in term_chunk_terms:
                # the only certainty about a term-chunk term is one appearance
                probability *= 1.0 / size
            else:
                return 0.0
        return probability * size

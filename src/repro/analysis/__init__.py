"""Analysis toolkit for disassociated publications.

* :mod:`repro.analysis.estimation` -- lower-bound, probabilistic and
  reconstruction-based support estimation.
* :mod:`repro.analysis.queries` -- analyst-facing query helpers used by the
  examples and the experiments.
* :mod:`repro.analysis.attack` -- adversary simulation (identity-disclosure
  risk before and after publication).
"""

from repro.analysis.attack import (
    AttackReport,
    original_risk,
    published_candidates,
    published_risk,
    simulate_attack,
    vulnerable_combinations,
)
from repro.analysis.estimation import SupportEstimator
from repro.analysis.queries import (
    containment_ratio,
    cooccurrence_count,
    frequent_pairs,
    rule_confidence,
    top_terms,
)

__all__ = [
    "AttackReport",
    "SupportEstimator",
    "containment_ratio",
    "cooccurrence_count",
    "frequent_pairs",
    "original_risk",
    "published_candidates",
    "published_risk",
    "rule_confidence",
    "simulate_attack",
    "top_terms",
    "vulnerable_combinations",
]

"""Adversary simulation: identity-disclosure risk before and after publishing.

Section 2 of the paper defines the attack model: an adversary knows up to
``m`` terms of a target's record and tries to locate that record in the
published data.  This module operationalizes the model so users can *measure*
the risk reduction disassociation buys on their own data:

* :func:`original_risk` — on the raw dataset, the fraction of records that
  contain at least one combination of up to ``m`` terms matching fewer than
  ``k`` records (i.e. records an adversary could pin down).
* :func:`published_candidates` — for one piece of background knowledge, how
  many candidate records the published (disassociated) data still admits,
  following the reconstruction semantics of Lemma 1: the combination is
  either unobservable (any record of a covering cluster could hold it) or
  reconstructable at least ``k`` times.
* :func:`published_risk` — sweeps the actually-occurring combinations of the
  original records and reports how many would still identify fewer than
  ``k`` candidates in the published data (0 for a correct publication).
* :class:`AttackReport` — the summary returned by :func:`simulate_attack`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from itertools import combinations

from repro.core.anonymity import validate_km_parameters
from repro.core.clusters import Cluster, DisassociatedDataset, JointCluster
from repro.core.dataset import TransactionDataset
from repro.mining.itemsets import itemset_supports


# --------------------------------------------------------------------------- #
# risk on the raw (unprotected) dataset
# --------------------------------------------------------------------------- #
def vulnerable_combinations(dataset: TransactionDataset, k: int, m: int) -> dict:
    """All combinations of up to ``m`` terms with support below ``k``.

    These are exactly the pieces of background knowledge that would let an
    adversary narrow a target down to fewer than ``k`` records if the data
    were published unprotected.
    """
    validate_km_parameters(k, m)
    counts = itemset_supports(dataset, max_size=m)
    return {itemset: support for itemset, support in counts.items() if support < k}


def original_risk(dataset: TransactionDataset, k: int, m: int) -> float:
    """Fraction of records containing at least one identifying combination."""
    vulnerable = vulnerable_combinations(dataset, k, m)
    if not vulnerable or len(dataset) == 0:
        return 0.0
    at_risk = 0
    for record in dataset:
        exposed = False
        terms = sorted(record)
        for size in range(1, min(m, len(terms)) + 1):
            for combo in combinations(terms, size):
                if combo in vulnerable:
                    exposed = True
                    break
            if exposed:
                break
        at_risk += int(exposed)
    return at_risk / len(dataset)


# --------------------------------------------------------------------------- #
# risk on the published (disassociated) dataset
# --------------------------------------------------------------------------- #
def _cluster_candidates(cluster: Cluster, background: frozenset) -> int:
    """Candidate records for ``background`` within one published cluster.

    Following Lemma 1 / Lemma 3: split the background terms over the
    cluster's record and shared chunks; terms falling in term chunks impose
    no constraint (any record may hold them).  If some chunk shows the terms
    it owns never co-occurring, no record of this cluster can match;
    otherwise the adversary can reconstruct at least ``min_i count_i``
    matching records, bounded by the cluster size.
    """
    size = cluster.size
    domain = cluster.domain()
    if not background <= domain:
        return 0

    if isinstance(cluster, JointCluster):
        chunks = list(cluster.iter_shared_chunks())
        for leaf in cluster.leaves():
            chunks.extend(leaf.record_chunks)
    else:
        chunks = list(cluster.record_chunks)

    candidates = size
    for chunk in chunks:
        part = background & chunk.domain
        if not part:
            continue
        matching = sum(1 for subrecord in chunk.subrecords if part <= subrecord)
        if matching == 0:
            return 0
        candidates = min(candidates, matching)
    return candidates


def published_candidates(published: DisassociatedDataset, background: Iterable) -> int:
    """Total candidate records the published data admits for ``background``.

    A value of 0 means the combination cannot be reconstructed anywhere (the
    adversary learns only that it did not exist, which is permitted by
    k^m-anonymity); any positive value is at least ``k`` for a correct
    publication.
    """
    terms = frozenset(str(t) for t in background)
    return sum(_cluster_candidates(cluster, terms) for cluster in published.clusters)


def published_risk(
    original: TransactionDataset, published: DisassociatedDataset, m: int = None
) -> float:
    """Fraction of occurring combinations still identifying < k candidates.

    Sweeps every combination of up to ``m`` terms that occurs in some
    original record and checks the candidate count the published data
    admits.  For a correct disassociation this is 0.0 by construction; the
    function exists so users can audit third-party publications and so the
    tests can tie the attack model back to Guarantee 1.
    """
    m = published.m if m is None else m
    k = published.k
    validate_km_parameters(k, m)
    counts = itemset_supports(original, max_size=m)
    if not counts:
        return 0.0
    exposed = 0
    for itemset in counts:
        candidates = published_candidates(published, itemset)
        if 0 < candidates < k:
            exposed += 1
    return exposed / len(counts)


# --------------------------------------------------------------------------- #
# end-to-end simulation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AttackReport:
    """Summary of one attack simulation.

    Attributes:
        k, m: the guarantee parameters used.
        original_at_risk: fraction of original records exposed by at least
            one identifying combination if published unprotected.
        vulnerable_combinations: number of identifying combinations in the
            raw data.
        published_exposed_combinations: fraction of occurring combinations
            that still pin down fewer than k candidates after disassociation
            (0.0 for a correct publication).
    """

    k: int
    m: int
    original_at_risk: float
    vulnerable_combinations: int
    published_exposed_combinations: float

    def summary(self) -> str:
        """One-line human-readable comparison of the two releases."""
        return (
            f"unprotected release: {self.original_at_risk:.0%} of records identifiable "
            f"via {self.vulnerable_combinations} rare combination(s); disassociated "
            f"release: {self.published_exposed_combinations:.0%} of combinations still "
            f"identifying (< k candidates)"
        )


def simulate_attack(
    original: TransactionDataset, published: DisassociatedDataset, m: int = None
) -> AttackReport:
    """Run the full adversary simulation and return an :class:`AttackReport`."""
    m = published.m if m is None else m
    k = published.k
    return AttackReport(
        k=k,
        m=m,
        original_at_risk=original_risk(original, k, m),
        vulnerable_combinations=len(vulnerable_combinations(original, k, m)),
        published_exposed_combinations=published_risk(original, published, m),
    )

"""Analyst-facing query helpers over original or published data.

Small, composable query operations used by the examples and the experiment
harness: top terms, co-occurrence queries, record-containment counts and a
simple association-rule confidence estimator.  Every function accepts either
an original :class:`~repro.core.dataset.TransactionDataset` or a
reconstruction, so analysts can run the same workload on both sides and
compare answers (which is precisely what the paper's utility evaluation
does).

Each helper also accepts a :class:`~repro.pubstore.QueryEngine`, which
answers from the indexed :class:`~repro.pubstore.PublicationStore` (or its
in-memory equivalent) instead of scanning -- same signature, bit-for-bit
the same answer.  Dispatch is duck-typed on the engine's matching method,
so this module never imports :mod:`repro.pubstore` (which sits above it in
the dependency order).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

from repro.core.dataset import TransactionDataset
from repro.mining.itemsets import itemset_supports


def top_terms(dataset: TransactionDataset, count: int = 10) -> list[tuple[str, int]]:
    """The ``count`` most frequent terms with their supports."""
    handler = getattr(dataset, "top_terms", None)
    if callable(handler):
        return handler(count)
    supports = dataset.term_supports()
    ordered = sorted(supports.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:count]


def cooccurrence_count(dataset: TransactionDataset, terms: Iterable) -> int:
    """Number of records containing *all* the given terms."""
    handler = getattr(dataset, "cooccurrence_count", None)
    if callable(handler):
        return handler(terms)
    return dataset.support(terms)


def containment_ratio(dataset: TransactionDataset, terms: Iterable) -> float:
    """Fraction of records containing all the given terms."""
    handler = getattr(dataset, "containment_ratio", None)
    if callable(handler):
        return handler(terms)
    if len(dataset) == 0:
        return 0.0
    return dataset.support(terms) / len(dataset)


def rule_confidence(
    dataset: TransactionDataset, antecedent: Iterable, consequent: Iterable
) -> Optional[float]:
    """Confidence of the association rule ``antecedent -> consequent``.

    Returns ``None`` when the antecedent never occurs (undefined confidence).
    """
    handler = getattr(dataset, "rule_confidence", None)
    if callable(handler):
        return handler(antecedent, consequent)
    antecedent = frozenset(str(t) for t in antecedent)
    consequent = frozenset(str(t) for t in consequent)
    base = dataset.support(antecedent)
    if base == 0:
        return None
    return dataset.support(antecedent | consequent) / base


def frequent_pairs(
    dataset: TransactionDataset, min_support: int
) -> list[tuple[tuple, int]]:
    """All term pairs with support at least ``min_support`` (most frequent first)."""
    handler = getattr(dataset, "frequent_pairs", None)
    if callable(handler):
        return handler(min_support)
    counts = itemset_supports(dataset, max_size=2)
    pairs = [
        (itemset, support)
        for itemset, support in counts.items()
        if len(itemset) == 2 and support >= min_support
    ]
    pairs.sort(key=lambda pair: (-pair[1], pair[0]))
    return pairs

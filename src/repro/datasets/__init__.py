"""Dataset substrate: file I/O, synthetic generation and real-data proxies.

* :mod:`repro.datasets.io` -- transaction-file, JSONL and JSON
  readers/writers, plus the streaming ``iter_*`` variants used by
  :mod:`repro.stream`.
* :mod:`repro.datasets.quest` -- IBM Quest-style synthetic generator.
* :mod:`repro.datasets.scenarios` -- Zipf market-basket and session
  click-stream scenario generators.
* :mod:`repro.datasets.real_proxies` -- statistical proxies of the POS /
  WV1 / WV2 datasets used in the paper's evaluation.
"""

from repro.datasets.io import (
    append_jsonl,
    iter_batches,
    iter_jsonl,
    iter_records,
    iter_transactions,
    read_dataset_json,
    read_disassociated_json,
    read_jsonl,
    read_records,
    read_transactions,
    sniff_format,
    write_dataset_json,
    write_disassociated_json,
    write_jsonl,
    write_transactions,
)
from repro.datasets.quest import QuestConfig, QuestGenerator, generate_quest
from repro.datasets.real_proxies import (
    DEFAULT_SCALE,
    PROFILES,
    RealDatasetProfile,
    available_datasets,
    load_proxy,
    profile_of,
)
from repro.datasets.scenarios import (
    SCENARIOS,
    ClickstreamConfig,
    ZipfBasketConfig,
    generate_clickstream,
    generate_zipf_basket,
)

__all__ = [
    "DEFAULT_SCALE",
    "PROFILES",
    "SCENARIOS",
    "ClickstreamConfig",
    "QuestConfig",
    "QuestGenerator",
    "RealDatasetProfile",
    "ZipfBasketConfig",
    "append_jsonl",
    "available_datasets",
    "generate_clickstream",
    "generate_quest",
    "generate_zipf_basket",
    "iter_batches",
    "iter_jsonl",
    "iter_records",
    "iter_transactions",
    "load_proxy",
    "profile_of",
    "read_dataset_json",
    "read_disassociated_json",
    "read_jsonl",
    "read_records",
    "read_transactions",
    "sniff_format",
    "write_dataset_json",
    "write_disassociated_json",
    "write_jsonl",
    "write_transactions",
]

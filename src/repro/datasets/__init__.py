"""Dataset substrate: file I/O, synthetic generation and real-data proxies.

* :mod:`repro.datasets.io` -- transaction-file and JSON readers/writers.
* :mod:`repro.datasets.quest` -- IBM Quest-style synthetic generator.
* :mod:`repro.datasets.real_proxies` -- statistical proxies of the POS /
  WV1 / WV2 datasets used in the paper's evaluation.
"""

from repro.datasets.io import (
    read_dataset_json,
    read_disassociated_json,
    read_transactions,
    write_dataset_json,
    write_disassociated_json,
    write_transactions,
)
from repro.datasets.quest import QuestConfig, QuestGenerator, generate_quest
from repro.datasets.real_proxies import (
    DEFAULT_SCALE,
    PROFILES,
    RealDatasetProfile,
    available_datasets,
    load_proxy,
    profile_of,
)

__all__ = [
    "DEFAULT_SCALE",
    "PROFILES",
    "QuestConfig",
    "QuestGenerator",
    "RealDatasetProfile",
    "available_datasets",
    "generate_quest",
    "load_proxy",
    "profile_of",
    "read_dataset_json",
    "read_disassociated_json",
    "read_transactions",
    "write_dataset_json",
    "write_disassociated_json",
    "write_transactions",
]

"""Synthetic proxies for the paper's real datasets (POS, WV1, WV2).

The paper evaluates on three real datasets introduced by Zheng, Kohavi &
Mason (KDD 2001) whose published summary statistics are (Figure 6):

============ ========= ======= ============= =============
 dataset        |D|      |T|    max rec. size  avg rec. size
============ ========= ======= ============= =============
 POS          515,597    1,657      164           6.5
 WV1           59,602      497      267           2.5
 WV2           77,512    3,340      161           5.0
============ ========= ======= ============= =============

The original files are not redistributable and the build environment has no
network access, so this module generates synthetic datasets that match those
statistics: Zipf-distributed term popularity (retail and click-stream logs
are strongly skewed), truncated-geometric record lengths calibrated to the
published mean and maximum, and the published domain size.  A ``scale``
parameter shrinks |D| (default 1/20) so that the full experiment grid runs
on a laptop; the domain is kept at its original size because the |D|/|T|
ratio is exactly what drives the differences the paper observes between the
three datasets (Section 7.2).

The substitution is recorded in DESIGN.md: every conclusion we draw depends
on the *shape* of the data (sparsity, skew, record length, |D|/|T| ratio),
not on the identity of individual SKUs or URLs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class RealDatasetProfile:
    """Published statistics of one of the paper's real datasets."""

    name: str
    num_records: int
    domain_size: int
    max_record_size: int
    avg_record_size: float
    zipf_exponent: float


#: Profiles copied from Figure 6 of the paper.  The Zipf exponents were
#: chosen so the generated support distributions exhibit the long tail the
#: paper relies on (WV1 is the densest, WV2 the sparsest).
PROFILES: dict[str, RealDatasetProfile] = {
    "POS": RealDatasetProfile("POS", 515_597, 1_657, 164, 6.5, 1.05),
    "WV1": RealDatasetProfile("WV1", 59_602, 497, 267, 2.5, 1.0),
    "WV2": RealDatasetProfile("WV2", 77_512, 3_340, 161, 5.0, 1.1),
}

#: Default down-scaling of |D| so the whole experiment grid runs in minutes.
DEFAULT_SCALE = 1 / 20


def available_datasets() -> list[str]:
    """Names of the real-dataset proxies that can be generated."""
    return sorted(PROFILES)


def load_proxy(
    name: str,
    scale: float = DEFAULT_SCALE,
    seed: Optional[int] = 0,
    domain_scale: Optional[float] = None,
) -> TransactionDataset:
    """Generate the synthetic proxy of one of the paper's real datasets.

    Args:
        name: ``"POS"``, ``"WV1"`` or ``"WV2"`` (case-insensitive).
        scale: fraction of the original record count to generate (default
            1/20; pass 1.0 for full size).
        seed: PRNG seed.
        domain_scale: optional fraction of the original domain size; by
            default the full domain is kept so the |D|/|T| ratio scales with
            ``scale`` exactly as the record count does.

    Returns:
        A :class:`TransactionDataset` whose record-length distribution,
        domain size and skew match the published statistics.
    """
    profile = PROFILES.get(str(name).upper())
    if profile is None:
        raise ParameterError(
            f"unknown real dataset {name!r}; available: {available_datasets()}"
        )
    if not 0 < scale <= 1:
        raise ParameterError(f"scale must be in (0, 1], got {scale}")
    num_records = max(100, int(round(profile.num_records * scale)))
    domain_size = profile.domain_size
    if domain_scale is not None:
        if not 0 < domain_scale <= 1:
            raise ParameterError(f"domain_scale must be in (0, 1], got {domain_scale}")
        domain_size = max(10, int(round(profile.domain_size * domain_scale)))
    return _generate(profile, num_records, domain_size, seed)


def _generate(
    profile: RealDatasetProfile,
    num_records: int,
    domain_size: int,
    seed: Optional[int],
) -> TransactionDataset:
    rng = np.random.default_rng(seed)

    # Zipf-like item popularity over the (scaled) domain.
    ranks = np.arange(1, domain_size + 1, dtype=float)
    popularity = 1.0 / np.power(ranks, profile.zipf_exponent)
    popularity /= popularity.sum()
    items = np.array([f"{profile.name.lower()}_t{i}" for i in range(domain_size)])

    # Record lengths: geometric distribution calibrated to the published mean,
    # truncated at the published maximum, and at least 1.
    mean_length = profile.avg_record_size
    p = 1.0 / mean_length
    lengths = rng.geometric(p, size=num_records)
    lengths = np.clip(lengths, 1, profile.max_record_size)

    records = []
    for length in lengths:
        # Sampling without replacement from a skewed distribution: draw a
        # slightly larger batch with replacement and deduplicate, which is
        # much faster than np.random.choice(replace=False) with probabilities.
        want = int(length)
        draw = rng.choice(domain_size, size=min(domain_size, want * 3), p=popularity)
        unique = list(dict.fromkeys(draw.tolist()))[:want]
        if not unique:
            unique = [int(rng.integers(domain_size))]
        records.append(frozenset(items[i] for i in unique))
    return TransactionDataset(records)


def profile_of(name: str) -> RealDatasetProfile:
    """The published statistics of a real dataset (raises for unknown names)."""
    profile = PROFILES.get(str(name).upper())
    if profile is None:
        raise ParameterError(
            f"unknown real dataset {name!r}; available: {available_datasets()}"
        )
    return profile

"""Synthetic scenario generators beyond the paper's QUEST workload.

Two workload shapes the streaming/sharded path must handle well:

* **Zipf market-basket** (:func:`generate_zipf_basket`) -- independent item
  draws from a heavily skewed (Zipf) catalogue, the classic e-commerce
  basket shape: a tiny head of items in almost every basket, a huge tail of
  items bought once.  Unlike QUEST there is no planted itemset structure,
  so co-occurrence above the head is essentially random -- the adversarial
  case for VERPART (rare combinations everywhere).

* **Session click-stream** (:func:`generate_clickstream`) -- each record is
  one user session over a site of ``num_pages`` pages organised into
  sections.  A session picks a home section, walks mostly within it
  (locality) and occasionally jumps to another section.  Sessions from the
  same section are near-duplicates of each other while sessions from
  different sections are nearly disjoint -- the best case for HORPART-style
  routing and the workload where hash sharding visibly loses utility.

Both generators are fully deterministic given the seed and return plain
:class:`~repro.core.dataset.TransactionDataset` objects, so they slot into
the CLI (``repro generate --profile ZIPF|CLICKSTREAM``), the experiment
harness and the benchmarks exactly like QUEST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class ZipfBasketConfig:
    """Parameters of the Zipf market-basket generator.

    Attributes:
        num_transactions: number of baskets to generate (|D|).
        domain_size: catalogue size (|T|).
        avg_basket_size: mean basket length (Poisson mean, min 1).
        zipf_exponent: skew of item popularity; 1.0-1.5 covers the range
            observed in retail data (higher = heavier head).
        seed: PRNG seed.
    """

    num_transactions: int = 10_000
    domain_size: int = 2_000
    avg_basket_size: float = 8.0
    zipf_exponent: float = 1.2
    seed: Optional[int] = 0

    def __post_init__(self):
        if self.num_transactions < 1:
            raise ParameterError("num_transactions must be positive")
        if self.domain_size < 2:
            raise ParameterError("domain_size must be at least 2")
        if self.avg_basket_size < 1:
            raise ParameterError("avg_basket_size must be at least 1")
        if self.zipf_exponent <= 0:
            raise ParameterError("zipf_exponent must be positive")


def generate_zipf_basket(
    num_transactions: int = 10_000,
    domain_size: int = 2_000,
    avg_basket_size: float = 8.0,
    zipf_exponent: float = 1.2,
    seed: Optional[int] = 0,
) -> TransactionDataset:
    """Generate a skewed market-basket dataset with independent item draws."""
    config = ZipfBasketConfig(
        num_transactions=num_transactions,
        domain_size=domain_size,
        avg_basket_size=avg_basket_size,
        zipf_exponent=zipf_exponent,
        seed=seed,
    )
    rng = np.random.default_rng(config.seed)
    ranks = np.arange(1, config.domain_size + 1, dtype=float)
    popularity = 1.0 / np.power(ranks, config.zipf_exponent)
    popularity /= popularity.sum()

    records = []
    for _ in range(config.num_transactions):
        target = max(1, rng.poisson(config.avg_basket_size))
        # Draw with replacement and dedupe: cheaper than replace=False on a
        # large catalogue, and duplicate draws (head items) collapse exactly
        # like repeat purchases of the same SKU in one basket.
        draws = rng.choice(config.domain_size, size=2 * target, p=popularity)
        basket = {f"sku{int(item)}" for item in draws[:target]}
        for item in draws[target:]:
            if len(basket) >= target:
                break
            basket.add(f"sku{int(item)}")
        records.append(frozenset(basket))
    return TransactionDataset(records)


@dataclass(frozen=True)
class ClickstreamConfig:
    """Parameters of the session click-stream generator.

    Attributes:
        num_sessions: number of sessions (records) to generate.
        num_pages: number of distinct pages on the site (|T|).
        num_sections: number of site sections the pages are split into;
            sessions have strong locality within one section.
        avg_session_length: mean number of distinct pages per session.
        jump_probability: per-click probability of leaving the home section.
        zipf_exponent: within-section page-popularity skew (landing pages
            dominate).
        seed: PRNG seed.
    """

    num_sessions: int = 10_000
    num_pages: int = 2_000
    num_sections: int = 20
    avg_session_length: float = 6.0
    jump_probability: float = 0.15
    zipf_exponent: float = 1.3
    seed: Optional[int] = 0

    def __post_init__(self):
        if self.num_sessions < 1:
            raise ParameterError("num_sessions must be positive")
        if self.num_pages < 2:
            raise ParameterError("num_pages must be at least 2")
        if not 1 <= self.num_sections <= self.num_pages:
            raise ParameterError("num_sections must be in [1, num_pages]")
        if self.avg_session_length < 1:
            raise ParameterError("avg_session_length must be at least 1")
        if not 0.0 <= self.jump_probability <= 1.0:
            raise ParameterError("jump_probability must be in [0, 1]")
        if self.zipf_exponent <= 0:
            raise ParameterError("zipf_exponent must be positive")


def generate_clickstream(
    num_sessions: int = 10_000,
    num_pages: int = 2_000,
    num_sections: int = 20,
    avg_session_length: float = 6.0,
    jump_probability: float = 0.15,
    seed: Optional[int] = 0,
    **extra,
) -> TransactionDataset:
    """Generate a session click-stream dataset with per-section locality."""
    config = ClickstreamConfig(
        num_sessions=num_sessions,
        num_pages=num_pages,
        num_sections=num_sections,
        avg_session_length=avg_session_length,
        jump_probability=jump_probability,
        seed=seed,
        **extra,
    )
    rng = np.random.default_rng(config.seed)
    pages_per_section = config.num_pages // config.num_sections

    # Within-section popularity: the section's landing pages dominate.
    ranks = np.arange(1, pages_per_section + 1, dtype=float)
    in_section = 1.0 / np.power(ranks, config.zipf_exponent)
    in_section /= in_section.sum()

    # Section traffic itself is skewed: a few sections get most sessions.
    section_ranks = np.arange(1, config.num_sections + 1, dtype=float)
    section_popularity = 1.0 / section_ranks
    section_popularity /= section_popularity.sum()

    records = []
    for _ in range(config.num_sessions):
        home = int(rng.choice(config.num_sections, p=section_popularity))
        target = max(1, rng.poisson(config.avg_session_length))
        session: set = set()
        attempts = 0
        while len(session) < target and attempts < 10 * target:
            attempts += 1
            if config.num_sections > 1 and rng.random() < config.jump_probability:
                section = int(rng.integers(config.num_sections))
            else:
                section = home
            offset = int(rng.choice(pages_per_section, p=in_section))
            session.add(f"page{section * pages_per_section + offset}")
        if not session:
            session.add(f"page{home * pages_per_section}")
        records.append(frozenset(session))
    return TransactionDataset(records)


#: Scenario name -> generator, for the CLI and the benchmarks.
SCENARIOS = {
    "ZIPF": generate_zipf_basket,
    "CLICKSTREAM": generate_clickstream,
}

"""IBM Quest-style synthetic market-basket data generator.

The paper's synthetic experiments use IBM's Quest generator (the classic
``T10I4D100K``-family tool), which is distributed as a binary and is not
available offline.  This module re-implements its generative model:

1. a pool of *potential frequent itemsets* is drawn — itemset sizes follow
   a Poisson distribution around ``avg_pattern_size``, successive itemsets
   share a fraction of their items (correlation), and itemset weights follow
   an exponential distribution;
2. each transaction picks patterns by weight until its (Poisson-distributed)
   target length is reached, *corrupting* each pattern by dropping items
   with a per-pattern corruption level;
3. item identifiers are assigned with a skewed (Zipf-like) popularity so the
   marginal term-support distribution has the long tail typical of real
   transactional data.

The defaults match the paper's synthetic workloads: 5k-term domain and an
average record length of 10; the dataset size is a parameter of each
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.dataset import TransactionDataset
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class QuestConfig:
    """Parameters of the Quest-style generator.

    Attributes:
        num_transactions: number of records to generate (|D|).
        domain_size: number of distinct items (|T|).
        avg_transaction_size: average record length (Poisson mean).
        avg_pattern_size: average size of the potential frequent itemsets.
        num_patterns: size of the potential-frequent-itemset pool.
        correlation: fraction of items a pattern inherits from its
            predecessor in the pool.
        corruption_mean: mean per-pattern corruption level (items dropped).
        zipf_exponent: skew of the item-popularity distribution.
        seed: PRNG seed (generation is fully deterministic given the seed).
    """

    num_transactions: int = 10_000
    domain_size: int = 5_000
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    num_patterns: int = 2_000
    correlation: float = 0.25
    corruption_mean: float = 0.5
    zipf_exponent: float = 1.1
    seed: Optional[int] = 0

    def __post_init__(self):
        if self.num_transactions < 1:
            raise ParameterError("num_transactions must be positive")
        if self.domain_size < 2:
            raise ParameterError("domain_size must be at least 2")
        if self.avg_transaction_size < 1:
            raise ParameterError("avg_transaction_size must be at least 1")
        if self.avg_pattern_size < 1:
            raise ParameterError("avg_pattern_size must be at least 1")
        if self.num_patterns < 1:
            raise ParameterError("num_patterns must be positive")
        if not 0.0 <= self.correlation <= 1.0:
            raise ParameterError("correlation must be in [0, 1]")
        if not 0.0 <= self.corruption_mean < 1.0:
            raise ParameterError("corruption_mean must be in [0, 1)")


class QuestGenerator:
    """Generates synthetic transactional datasets with the Quest model."""

    def __init__(self, config: Optional[QuestConfig] = None, **overrides):
        if config is None:
            config = QuestConfig(**overrides)
        elif overrides:
            raise ParameterError("pass either a QuestConfig or keyword overrides, not both")
        self.config = config

    def generate(self) -> TransactionDataset:
        """Generate the dataset described by the configuration."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        # Skewed item popularity: item 0 is the most popular.
        ranks = np.arange(1, cfg.domain_size + 1, dtype=float)
        popularity = 1.0 / np.power(ranks, cfg.zipf_exponent)
        popularity /= popularity.sum()

        patterns = self._build_patterns(rng, popularity)
        pattern_weights = rng.exponential(scale=1.0, size=len(patterns))
        pattern_weights /= pattern_weights.sum()
        corruption = np.clip(
            rng.normal(cfg.corruption_mean, 0.1, size=len(patterns)), 0.0, 0.95
        )

        records = []
        pattern_count = len(patterns)
        for _ in range(cfg.num_transactions):
            target = max(1, rng.poisson(cfg.avg_transaction_size))
            record: set = set()
            attempts = 0
            while len(record) < target and attempts < 10 * target:
                attempts += 1
                index = rng.choice(pattern_count, p=pattern_weights)
                pattern = patterns[index]
                keep_probability = 1.0 - corruption[index]
                kept = [item for item in pattern if rng.random() < keep_probability]
                if not kept:
                    kept = [pattern[int(rng.integers(len(pattern)))]]
                record.update(kept)
            if not record:
                record.add(f"i{int(rng.choice(cfg.domain_size, p=popularity))}")
            records.append(frozenset(record))
        return TransactionDataset(records)

    def _build_patterns(self, rng: np.random.Generator, popularity: np.ndarray) -> list[list[str]]:
        cfg = self.config
        patterns: list[list[str]] = []
        previous: list[str] = []
        for _ in range(cfg.num_patterns):
            size = max(1, rng.poisson(cfg.avg_pattern_size))
            inherited_count = int(round(cfg.correlation * min(size, len(previous))))
            inherited = list(
                rng.choice(previous, size=inherited_count, replace=False)
            ) if inherited_count else []
            fresh_needed = size - len(inherited)
            fresh = [
                f"i{int(index)}"
                for index in rng.choice(
                    cfg.domain_size, size=fresh_needed, replace=False, p=popularity
                )
            ]
            pattern = list(dict.fromkeys(inherited + fresh))
            patterns.append(pattern)
            previous = pattern
        return patterns


def generate_quest(
    num_transactions: int = 10_000,
    domain_size: int = 5_000,
    avg_transaction_size: float = 10.0,
    seed: Optional[int] = 0,
    **extra,
) -> TransactionDataset:
    """One-call Quest generation with the paper's default synthetic parameters."""
    config = QuestConfig(
        num_transactions=num_transactions,
        domain_size=domain_size,
        avg_transaction_size=avg_transaction_size,
        seed=seed,
        **extra,
    )
    return QuestGenerator(config).generate()

"""Reading and writing transaction datasets and disassociated publications.

Three on-disk formats are supported:

* **transaction files** -- one record per line, terms separated by a
  delimiter (space by default), the format used by the classic market-basket
  datasets (POS/WV1/WV2 were distributed this way);
* **JSONL** -- one JSON list of terms per line; the spill/interchange format
  of the streaming subsystem (:mod:`repro.stream`), chosen because it can be
  appended to and read back record-by-record without parsing the whole file;
* **JSON** -- for both plain datasets and disassociated publications
  (clusters, chunks and parameters), used by the CLI and the examples.

Every ``read_*`` function has a streaming ``iter_*`` counterpart that yields
one record (``frozenset`` of terms) at a time without materializing the
dataset, so arbitrarily large files can be processed under a fixed memory
bound; :func:`iter_batches` groups any record iterable into bounded batches.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Union

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import Record, TransactionDataset, ensure_record, normalize_record
from repro.exceptions import DatasetFormatError

PathLike = Union[str, Path]

#: On-disk record formats understood by :func:`iter_records` /
#: :func:`read_records`.  ``"auto"`` sniffs from the file extension
#: (``.jsonl``/``.ndjson`` -> jsonl, ``.json`` -> json, anything else ->
#: transactions).
RECORD_FORMATS = ("auto", "transactions", "jsonl", "json")


# --------------------------------------------------------------------------- #
# transaction (one line per record) format
# --------------------------------------------------------------------------- #
def iter_transactions(path: PathLike, delimiter: str = None) -> Iterator[Record]:
    """Stream a transaction file one record at a time (constant memory).

    Blank lines are skipped; a line with no terms after splitting raises
    :class:`~repro.exceptions.DatasetFormatError` (empty records are not
    meaningful in set-valued data).
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                terms = [t for t in line.split(delimiter) if t]
                if not terms:
                    raise DatasetFormatError(
                        f"{path}:{line_number}: record has no terms"
                    )
                yield frozenset(terms)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read transaction file {path}: {exc}") from exc


def read_transactions(path: PathLike, delimiter: str = None) -> TransactionDataset:
    """Read a transaction file: one record per line, delimiter-separated terms."""
    return TransactionDataset(iter_transactions(path, delimiter=delimiter))


def write_transactions(
    dataset: TransactionDataset, path: PathLike, delimiter: str = " "
) -> None:
    """Write a dataset as a transaction file (terms sorted within each record)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in dataset:
            handle.write(delimiter.join(sorted(record)) + "\n")


# --------------------------------------------------------------------------- #
# JSONL (one JSON record per line) format
# --------------------------------------------------------------------------- #
def iter_jsonl(path: PathLike) -> Iterator[Record]:
    """Stream a JSONL dataset one record at a time (constant memory).

    Each non-blank line must be a JSON list of terms; anything else raises
    :class:`~repro.exceptions.DatasetFormatError` with the offending line
    number.
    """
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    terms = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetFormatError(
                        f"{path}:{line_number}: invalid JSON record: {exc}"
                    ) from exc
                if not isinstance(terms, list) or not terms:
                    raise DatasetFormatError(
                        f"{path}:{line_number}: expected a non-empty JSON list of terms"
                    )
                yield normalize_record(terms)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read JSONL file {path}: {exc}") from exc


def read_jsonl(path: PathLike) -> TransactionDataset:
    """Read a JSONL dataset (one JSON list of terms per line)."""
    return TransactionDataset(iter_jsonl(path))


def _dump_jsonl(records: Iterable[Iterable], path: PathLike, mode: str) -> int:
    count = 0
    with Path(path).open(mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(sorted(str(t) for t in record)) + "\n")
            count += 1
    return count


def write_jsonl(records: Iterable[Iterable], path: PathLike) -> int:
    """Write records as JSONL (terms sorted within each record); returns the count.

    Accepts any iterable of records (including a generator or a
    :class:`TransactionDataset`), so arbitrarily large streams can be spooled
    to disk without being materialized.
    """
    return _dump_jsonl(records, path, "w")


def append_jsonl(records: Iterable[Iterable], path: PathLike) -> int:
    """Append records to a JSONL file (creating it if missing); returns the count.

    This is the primitive the streaming shard spiller relies on: shard files
    are grown buffer-by-buffer while routing, never held in memory whole.
    """
    return _dump_jsonl(records, path, "a")


# --------------------------------------------------------------------------- #
# format dispatch and batching
# --------------------------------------------------------------------------- #
def sniff_format(path: PathLike) -> str:
    """Guess the record format of ``path`` from its extension."""
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return "jsonl"
    if suffix == ".json":
        return "json"
    return "transactions"


def iter_records(
    path: PathLike, format: str = "auto", delimiter: str = None
) -> Iterator[Record]:
    """Stream the records of a dataset file in any supported format.

    ``transactions`` and ``jsonl`` stream with constant memory; ``json``
    (a single JSON array) necessarily parses the whole file first.
    """
    if format not in RECORD_FORMATS:
        raise DatasetFormatError(
            f"unknown record format {format!r}; expected one of {RECORD_FORMATS}"
        )
    if format == "auto":
        format = sniff_format(path)
    if format == "jsonl":
        return iter_jsonl(path)
    if format == "json":
        return iter(read_dataset_json(path))
    return iter_transactions(path, delimiter=delimiter)


def read_records(path: PathLike, format: str = "auto", delimiter: str = None) -> TransactionDataset:
    """Read a whole dataset file in any supported format."""
    return TransactionDataset(iter_records(path, format=format, delimiter=delimiter))


def iter_batches(records: Iterable[Iterable], batch_size: int) -> Iterator[list[Record]]:
    """Group any record iterable into lists of at most ``batch_size`` records.

    The batch under construction is the only state held, so chaining this
    onto :func:`iter_transactions` / :func:`iter_jsonl` bounds peak resident
    records at ``batch_size`` regardless of file size.
    """
    if batch_size < 1:
        raise DatasetFormatError(f"batch_size must be >= 1, got {batch_size}")
    batch: list[Record] = []
    for record in records:
        batch.append(ensure_record(record))
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


# --------------------------------------------------------------------------- #
# JSON formats
# --------------------------------------------------------------------------- #
def read_dataset_json(path: PathLike) -> TransactionDataset:
    """Read a plain dataset stored as a JSON list of term lists."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetFormatError(f"cannot read dataset JSON {path}: {exc}") from exc
    if not isinstance(payload, list):
        raise DatasetFormatError(f"{path}: expected a JSON list of records")
    return TransactionDataset.from_lists(payload)


def write_dataset_json(dataset: TransactionDataset, path: PathLike) -> None:
    """Write a plain dataset as a JSON list of sorted term lists."""
    Path(path).write_text(
        json.dumps(dataset.to_lists(), indent=2, sort_keys=True), encoding="utf-8"
    )


def read_disassociated_json(path: PathLike) -> DisassociatedDataset:
    """Read a disassociated publication from its JSON form."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetFormatError(f"cannot read published JSON {path}: {exc}") from exc
    return DisassociatedDataset.from_dict(payload)


def write_disassociated_json(published: DisassociatedDataset, path: PathLike) -> None:
    """Write a disassociated publication as JSON (clusters, chunks, k, m)."""
    Path(path).write_text(
        json.dumps(published.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
    )

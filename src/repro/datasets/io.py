"""Reading and writing transaction datasets and disassociated publications.

Two on-disk formats are supported:

* **transaction files** -- one record per line, terms separated by a
  delimiter (space by default), the format used by the classic market-basket
  datasets (POS/WV1/WV2 were distributed this way);
* **JSON** -- for both plain datasets and disassociated publications
  (clusters, chunks and parameters), used by the CLI and the examples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.exceptions import DatasetFormatError

PathLike = Union[str, Path]


# --------------------------------------------------------------------------- #
# transaction (one line per record) format
# --------------------------------------------------------------------------- #
def read_transactions(path: PathLike, delimiter: str = None) -> TransactionDataset:
    """Read a transaction file: one record per line, delimiter-separated terms.

    Blank lines are skipped; a line with no terms after splitting raises
    :class:`~repro.exceptions.DatasetFormatError` (empty records are not
    meaningful in set-valued data).
    """
    path = Path(path)
    records = []
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                terms = line.split(delimiter)
                terms = [t for t in terms if t]
                if not terms:
                    raise DatasetFormatError(
                        f"{path}:{line_number}: record has no terms"
                    )
                records.append(terms)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read transaction file {path}: {exc}") from exc
    return TransactionDataset(records)


def write_transactions(
    dataset: TransactionDataset, path: PathLike, delimiter: str = " "
) -> None:
    """Write a dataset as a transaction file (terms sorted within each record)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in dataset:
            handle.write(delimiter.join(sorted(record)) + "\n")


# --------------------------------------------------------------------------- #
# JSON formats
# --------------------------------------------------------------------------- #
def read_dataset_json(path: PathLike) -> TransactionDataset:
    """Read a plain dataset stored as a JSON list of term lists."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetFormatError(f"cannot read dataset JSON {path}: {exc}") from exc
    if not isinstance(payload, list):
        raise DatasetFormatError(f"{path}: expected a JSON list of records")
    return TransactionDataset.from_lists(payload)


def write_dataset_json(dataset: TransactionDataset, path: PathLike) -> None:
    """Write a plain dataset as a JSON list of sorted term lists."""
    Path(path).write_text(
        json.dumps(dataset.to_lists(), indent=2, sort_keys=True), encoding="utf-8"
    )


def read_disassociated_json(path: PathLike) -> DisassociatedDataset:
    """Read a disassociated publication from its JSON form."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetFormatError(f"cannot read published JSON {path}: {exc}") from exc
    return DisassociatedDataset.from_dict(payload)


def write_disassociated_json(published: DisassociatedDataset, path: PathLike) -> None:
    """Write a disassociated publication as JSON (clusters, chunks, k, m)."""
    Path(path).write_text(
        json.dumps(published.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
    )

"""tlost metric: frequent terms demoted to term chunks (paper Section 7.1).

``tlost`` is the fraction of terms that have support at least ``k`` in the
original dataset (so they *could* have been placed in a record chunk) but
ended up only in term chunks, losing all their associations.
"""

from __future__ import annotations

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset


def terms_lost(original: TransactionDataset, published: DisassociatedDataset) -> frozenset:
    """The frequent terms (support >= k) that appear only in term chunks."""
    supports = original.term_supports()
    frequent = {term for term, support in supports.items() if support >= published.k}
    in_chunks = published.record_chunk_terms()
    published_terms = published.domain()
    return frozenset(
        term
        for term in frequent
        if term in published_terms and term not in in_chunks
    )


def tlost(original: TransactionDataset, published: DisassociatedDataset) -> float:
    """Fraction of frequent original terms that lost all their associations.

    Returns 0 when every term with support >= k made it into some record or
    shared chunk, 1 when none did.
    """
    supports = original.term_supports()
    frequent = [term for term, support in supports.items() if support >= published.k]
    if not frequent:
        return 0.0
    lost = terms_lost(original, published)
    return len(lost) / len(frequent)

"""Top-K deviation (tKd) metric — paper Section 6, Equation 2.

``tKd = 1 - |FI ∩ FI'| / |FI|`` where ``FI`` are the top-K frequent
itemsets of the original dataset and ``FI'`` those of the published data.
A value of 0 means every top-K itemset survived anonymization; 1 means all
were lost.

Two variants are used in the experiments:

* **tKd** -- the published side is a *reconstructed* dataset (associations
  across chunks are re-combined),
* **tKd-a** -- the published side is the *chunk dataset* (only associations
  that are certain to exist, i.e. sub-records inside record/shared chunks
  plus one appearance per term-chunk term).

Both are computed by :func:`top_k_deviation`; the caller decides which
representation of the published data to pass.
"""

from __future__ import annotations

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.core.reconstruct import Reconstructor
from repro.exceptions import MiningError
from repro.mining.itemsets import top_k_itemset_set

#: Number of top frequent itemsets compared by default (the paper uses 1000).
DEFAULT_TOP_K = 1000

#: Maximum itemset size considered when ranking frequent itemsets.
DEFAULT_MAX_SIZE = 3


def top_k_deviation(
    original: TransactionDataset,
    published: TransactionDataset,
    top_k: int = DEFAULT_TOP_K,
    max_size: int = DEFAULT_MAX_SIZE,
) -> float:
    """tKd between the original dataset and any published transaction dataset.

    Args:
        original: the original dataset.
        published: the published data rendered as transactions (a
            reconstruction, a chunk dataset, a DiffPart output, ...).
        top_k: how many top frequent itemsets to compare.
        max_size: maximum itemset size considered.

    Returns:
        The deviation in [0, 1]; 0 when the published data preserves every
        top-K itemset of the original.
    """
    if top_k < 1:
        raise MiningError(f"top_k must be >= 1, got {top_k}")
    original_top = top_k_itemset_set(original, top_k, max_size)
    if not original_top:
        return 0.0
    published_top = top_k_itemset_set(published, top_k, max_size)
    preserved = len(original_top & published_top)
    return 1.0 - preserved / len(original_top)


def tkd_reconstructed(
    original: TransactionDataset,
    published: DisassociatedDataset,
    top_k: int = DEFAULT_TOP_K,
    max_size: int = DEFAULT_MAX_SIZE,
    seed: int = 0,
) -> float:
    """tKd measured on one random reconstruction of the disassociated data."""
    reconstruction = Reconstructor(published, seed=seed).reconstruct()
    return top_k_deviation(original, reconstruction, top_k, max_size)


def tkd_chunks(
    original: TransactionDataset,
    published: DisassociatedDataset,
    top_k: int = DEFAULT_TOP_K,
    max_size: int = DEFAULT_MAX_SIZE,
) -> float:
    """tKd-a: the variant computed only from record/shared chunk contents."""
    return top_k_deviation(original, published.chunk_dataset(), top_k, max_size)

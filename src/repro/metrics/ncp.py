"""Normalized Certainty Penalty (NCP) for generalized publications.

NCP is the standard information-loss measure of generalization-based
anonymization (used by reference [27] to drive its search).  It is not one
of the headline metrics of the disassociation paper, but it is useful for
sanity-checking the generalization baseline and for the ablation benches:
a baseline whose NCP explodes while its tKd-ML2 stays flat indicates a
degenerate hierarchy rather than genuine utility.
"""

from __future__ import annotations

from repro.core.dataset import TransactionDataset
from repro.mining.hierarchy import GeneralizationHierarchy


def term_ncp(term, hierarchy: GeneralizationHierarchy) -> float:
    """NCP of publishing ``term``: 0 for a leaf, 1 for the root."""
    return hierarchy.ncp(term)


def dataset_ncp(
    original: TransactionDataset,
    cut: dict,
    hierarchy: GeneralizationHierarchy,
) -> float:
    """Average per-occurrence NCP of a generalized publication.

    Every term occurrence in the original dataset is charged the NCP of the
    node it was recoded to under ``cut``; the result is the mean over all
    occurrences (0 = untouched data, 1 = everything recoded to the root).
    """
    total = 0.0
    occurrences = 0
    for record in original:
        for term in record:
            total += hierarchy.ncp(cut.get(term, term))
            occurrences += 1
    return total / occurrences if occurrences else 0.0

"""Relative error (re) of pair supports — paper Section 6, Equation 3.

``re = |so(a,b) - sp(a,b)| / avg(so(a,b), sp(a,b))`` for a pair of terms
``(a, b)``, where ``so`` / ``sp`` are the supports in the original and the
published data.  The average denominator normalizes the metric to [0, 2]
and gracefully handles pairs invented or destroyed by anonymization.

The paper reports the average ``re`` over the pairs formed by a small range
of consecutive terms in the original support ranking (by default the
200th-220th most frequent terms), because averaging over *all* pairs of a
huge skewed domain is dominated by pairs that never co-occur.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import combinations
from typing import Optional

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.core.reconstruct import Reconstructor
from repro.exceptions import MiningError
from repro.mining.itemsets import pair_supports

#: Default frequency-rank range of the probed terms (0-based, half-open).
DEFAULT_RANGE = (200, 220)


def _as_publication(published) -> DisassociatedDataset:
    """Coerce ``published`` to a :class:`DisassociatedDataset`.

    Accepts the publication itself, a
    :class:`~repro.pubstore.QueryEngine` (via ``publication_dataset()``)
    or an open :class:`~repro.pubstore.PublicationStore` (via
    ``load_publication()``) -- duck-typed so this module never imports
    :mod:`repro.pubstore`, which sits above it in the dependency order.
    """
    loader = getattr(published, "publication_dataset", None)
    if callable(loader):
        return loader()
    loader = getattr(published, "load_publication", None)
    if callable(loader):
        return loader()
    return published


def pair_relative_error(so: float, sp: float) -> float:
    """Relative error of one pair given its original and published supports."""
    if so == 0 and sp == 0:
        return 0.0
    return abs(so - sp) / ((so + sp) / 2.0)


def terms_in_rank_range(
    original: TransactionDataset, rank_range: tuple[int, int] = DEFAULT_RANGE
) -> list[str]:
    """The original terms whose support rank falls in ``rank_range``.

    When the domain is smaller than the requested range the range is shifted
    down so that a non-empty (possibly shorter) slice is always returned.
    """
    start, stop = rank_range
    if start < 0 or stop <= start:
        raise MiningError(f"invalid rank range {rank_range!r}")
    ordered = original.terms_by_support(descending=True)
    if start >= len(ordered):
        start = max(0, len(ordered) - (stop - start))
        stop = len(ordered)
    return ordered[start:stop]


def relative_error(
    original: TransactionDataset,
    published: TransactionDataset,
    terms: Optional[Sequence] = None,
    rank_range: tuple[int, int] = DEFAULT_RANGE,
) -> float:
    """Average re over all pairs of the probed terms.

    Args:
        original: the original dataset.
        published: the published data rendered as transactions.
        terms: explicit probe terms; when omitted, the terms in
            ``rank_range`` of the original support ranking are used.
        rank_range: frequency-rank window used when ``terms`` is omitted.

    Returns:
        The mean relative error in [0, 2]; 0 when every probed pair keeps
        its exact support.
    """
    probe = list(terms) if terms is not None else terms_in_rank_range(original, rank_range)
    if len(probe) < 2:
        return 0.0
    original_pairs = pair_supports(original, probe)
    published_pairs = pair_supports(published, probe)
    errors = [
        pair_relative_error(original_pairs[pair], published_pairs[pair])
        for pair in combinations(sorted(map(str, probe)), 2)
    ]
    return sum(errors) / len(errors)


def relative_error_reconstructed(
    original: TransactionDataset,
    published: DisassociatedDataset,
    terms: Optional[Sequence] = None,
    rank_range: tuple[int, int] = DEFAULT_RANGE,
    reconstructions: int = 1,
    seed: int = 0,
) -> float:
    """re measured on reconstructed data, optionally averaging the supports
    over several reconstructions (paper, Figure 7d).

    With ``reconstructions > 1`` the *supports* are averaged across the
    reconstructions before the error is computed, exactly as in the paper's
    re-r2 / re-r5 / re-r10 series.  ``published`` may also be a
    :class:`~repro.pubstore.QueryEngine` or an open
    :class:`~repro.pubstore.PublicationStore`; the publication is loaded
    from the store's faithful serialized form, so the seeded sampling is
    identical either way.
    """
    probe = list(terms) if terms is not None else terms_in_rank_range(original, rank_range)
    if len(probe) < 2:
        return 0.0
    reconstructor = Reconstructor(_as_publication(published), seed=seed)
    original_pairs = pair_supports(original, probe)
    totals = {pair: 0.0 for pair in original_pairs}
    for _ in range(max(1, reconstructions)):
        world = reconstructor.reconstruct()
        world_pairs = pair_supports(world, probe)
        for pair in totals:
            totals[pair] += world_pairs[pair]
    count = max(1, reconstructions)
    errors = [
        pair_relative_error(original_pairs[pair], totals[pair] / count)
        for pair in original_pairs
    ]
    return sum(errors) / len(errors) if errors else 0.0


def relative_error_chunks(
    original: TransactionDataset,
    published: DisassociatedDataset,
    terms: Optional[Sequence] = None,
    rank_range: tuple[int, int] = DEFAULT_RANGE,
) -> float:
    """re-a: published supports are the chunk-level lower bounds.

    ``published`` may be the :class:`DisassociatedDataset` itself, a
    :class:`~repro.pubstore.QueryEngine`, or an open
    :class:`~repro.pubstore.PublicationStore` -- all three expose
    ``lower_bound_support`` and answer identically (the store from its
    posting-list indexes instead of a chunk scan).
    """
    probe = list(terms) if terms is not None else terms_in_rank_range(original, rank_range)
    if len(probe) < 2:
        return 0.0
    original_pairs = pair_supports(original, probe)
    errors = []
    for pair, so in original_pairs.items():
        sp = published.lower_bound_support(pair)
        errors.append(pair_relative_error(so, sp))
    return sum(errors) / len(errors) if errors else 0.0


def relative_error_generalized(
    original: TransactionDataset,
    generalized_dataset: TransactionDataset,
    cut: dict,
    hierarchy,
    terms: Optional[Sequence] = None,
    rank_range: tuple[int, int] = DEFAULT_RANGE,
) -> float:
    """re for a generalization-based publication.

    The support of a generalized term is divided uniformly among the
    original terms it covers (as in the paper's Figure 11c), so the
    estimated support of an original pair ``(a, b)`` is the support of the
    generalized pair scaled by the product of the two coverage fractions.
    """
    probe = list(terms) if terms is not None else terms_in_rank_range(original, rank_range)
    if len(probe) < 2:
        return 0.0
    original_pairs = pair_supports(original, probe)
    errors = []
    for (a, b), so in original_pairs.items():
        ga, gb = cut.get(a, a), cut.get(b, b)
        share_a = 1.0 / max(1, hierarchy.leaf_count(ga))
        share_b = 1.0 / max(1, hierarchy.leaf_count(gb))
        if ga == gb:
            # both terms were recoded to the same node: the pair is no longer
            # observable at all and its support estimate degrades to 0
            sp = 0.0
        else:
            sp = generalized_dataset.support({ga, gb}) * share_a * share_b
        errors.append(pair_relative_error(so, sp))
    return sum(errors) / len(errors) if errors else 0.0

"""Information-loss metrics of the paper (Section 6) plus NCP.

* :mod:`repro.metrics.tkd` -- top-K deviation (tKd, tKd-a).
* :mod:`repro.metrics.ml2` -- multi-level top-K deviation (tKd-ML2).
* :mod:`repro.metrics.relative_error` -- pair-support relative error
  (re, re-a, re over generalized data, multi-reconstruction averaging).
* :mod:`repro.metrics.tlost` -- frequent terms demoted to term chunks.
* :mod:`repro.metrics.ncp` -- Normalized Certainty Penalty of generalization.
"""

from repro.metrics.ml2 import extend_dataset, tkd_ml2, tkd_ml2_disassociated
from repro.metrics.ncp import dataset_ncp, term_ncp
from repro.metrics.relative_error import (
    pair_relative_error,
    relative_error,
    relative_error_chunks,
    relative_error_generalized,
    relative_error_reconstructed,
    terms_in_rank_range,
)
from repro.metrics.tkd import (
    DEFAULT_MAX_SIZE,
    DEFAULT_TOP_K,
    tkd_chunks,
    tkd_reconstructed,
    top_k_deviation,
)
from repro.metrics.tlost import terms_lost, tlost

__all__ = [
    "DEFAULT_MAX_SIZE",
    "DEFAULT_TOP_K",
    "dataset_ncp",
    "extend_dataset",
    "pair_relative_error",
    "relative_error",
    "relative_error_chunks",
    "relative_error_generalized",
    "relative_error_reconstructed",
    "term_ncp",
    "terms_in_rank_range",
    "terms_lost",
    "tkd_chunks",
    "tkd_ml2",
    "tkd_ml2_disassociated",
    "tkd_reconstructed",
    "tlost",
    "top_k_deviation",
]

"""tKd-ML2: multi-level top-K deviation (paper Section 6).

Generalization-based methods publish no original term at all once a subtree
is recoded, so the plain tKd metric would trivially equal 1 and tell us
nothing.  The ML2 variant instead mines *generalized frequent itemsets*:
every transaction (original or published) is extended with the hierarchy
ancestors of its terms (Han & Fu multi-level mining), the top-K frequent
itemsets of both extended datasets are computed, and the deviation is
``1 - |FI ∩ FI'| / |FI|`` as before.

A generalized frequent itemset is "lost" when the anonymization recoded its
terms to a strictly higher level, exactly as described in the paper.
"""

from __future__ import annotations

from repro.core.clusters import DisassociatedDataset
from repro.core.dataset import TransactionDataset
from repro.core.reconstruct import Reconstructor
from repro.metrics.tkd import DEFAULT_MAX_SIZE, DEFAULT_TOP_K
from repro.mining.hierarchy import GeneralizationHierarchy, expand_with_ancestors
from repro.mining.itemsets import top_k_itemset_set


def extend_dataset(
    dataset: TransactionDataset, hierarchy: GeneralizationHierarchy
) -> TransactionDataset:
    """Extend every record with the ancestors of its terms (multi-level view)."""
    return TransactionDataset(
        (expand_with_ancestors(record, hierarchy) for record in dataset),
        allow_empty=False,
    )


def tkd_ml2(
    original: TransactionDataset,
    published: TransactionDataset,
    hierarchy: GeneralizationHierarchy,
    top_k: int = DEFAULT_TOP_K,
    max_size: int = DEFAULT_MAX_SIZE,
) -> float:
    """tKd over the multi-level (ancestor-extended) views of both datasets.

    Args:
        original: the original dataset (leaf terms).
        published: the published transactions — generalized records for the
            generalization baseline, reconstructed records for
            disassociation, sanitized records for DiffPart.
        hierarchy: the generalization hierarchy shared by both sides.
        top_k: number of top frequent generalized itemsets compared.
        max_size: maximum itemset size considered.
    """
    original_view = extend_dataset(original, hierarchy)
    published_view = extend_dataset(published, hierarchy)
    original_top = top_k_itemset_set(original_view, top_k, max_size)
    if not original_top:
        return 0.0
    published_top = top_k_itemset_set(published_view, top_k, max_size)
    preserved = len(original_top & published_top)
    return 1.0 - preserved / len(original_top)


def tkd_ml2_disassociated(
    original: TransactionDataset,
    published: DisassociatedDataset,
    hierarchy: GeneralizationHierarchy,
    top_k: int = DEFAULT_TOP_K,
    max_size: int = DEFAULT_MAX_SIZE,
    seed: int = 0,
) -> float:
    """tKd-ML2 of a disassociated dataset via one random reconstruction."""
    reconstruction = Reconstructor(published, seed=seed).reconstruct()
    return tkd_ml2(original, reconstruction, hierarchy, top_k, max_size)

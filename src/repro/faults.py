"""Deterministic fault injection for crash/recovery testing.

Production code is threaded with named **injection points** -- cheap
``faults.check("stream.merge")`` calls at the places a real deployment can
die: between engine phases, around the streaming executor's spill /
window / checkpoint / merge / repair steps, and in the service layer's
request execution.  With no plan armed a check is a single attribute read;
tests and CI arm a :class:`FaultPlan` to make a *specific* arrival of a
*specific* point raise :class:`~repro.exceptions.FaultInjected`, so
"crash exactly during the third window of shard 1" is a deterministic,
repeatable scenario instead of a race.

Triggers:

* **Nth hit** -- ``FaultSpec(point, hit=3)`` fires on the third arrival at
  the point (1-based) and never again;
* **seeded random** -- ``FaultSpec(point, probability=0.2)`` fires with
  probability 0.2 per arrival, from a :class:`random.Random` seeded by the
  plan seed and the point name (CRC32, not ``hash()`` -- stable across
  processes and ``PYTHONHASHSEED``);
* **environment** -- ``REPRO_FAULTS="stream.merge:1,engine.refine:2"``
  arms a plan at import time (``point:N`` for Nth-hit,
  ``point@0.5`` for probability; ``REPRO_FAULTS_SEED`` seeds the random
  triggers), which is how the CI fault matrix drives the resilience suite
  without code changes.

Known injection points (kept in :data:`INJECTION_POINTS` so tests can
enumerate "crash at every point"):

========================  ====================================================
``engine.horizontal``     before HORPART (per engine run)
``engine.vertical``       before VERPART
``engine.refine``         before REFINE
``engine.verify``         before the publication re-audit
``stream.plan``           before the shard planner is built
``stream.spill``          at every spill-buffer flush
``stream.window``         before each window's engine run
``stream.checkpoint``     before each per-shard snapshot write
``stream.merge``          before the merge phase
``stream.verify``         before the global boundary repair
``service.execute``       at the start of each request execution attempt
``store.open``            before a persistent shard store is opened/created
``store.validate``        before the store's fingerprint/plan validation
``store.mutate``          before a delta's records mutation is committed
``store.compact``         before the store is compacted (``VACUUM``)
``pubstore.open``         before a publication store is opened/created
``pubstore.build``        at an index (re)build's start and again before its
                          commit (a mid-build crash must roll back cleanly)
``pubstore.query``        before each publication-store query op
========================  ====================================================

Typical test usage::

    from repro import faults

    plan = faults.FaultPlan.from_text("stream.window:2")
    with faults.active(plan):
        with pytest.raises(FaultInjected):
            pipeline.run(records)        # dies entering the second window
    resumed = pipeline.run(records, resume=True)
"""

from __future__ import annotations

import os
import random
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

from repro.exceptions import FaultInjected, ParameterError

#: Environment variable arming a fault plan at import time.
ENV_VAR = "REPRO_FAULTS"

#: Environment variable seeding the plan's probabilistic triggers.
ENV_SEED_VAR = "REPRO_FAULTS_SEED"

#: Every injection point threaded through the library (see module doc).
INJECTION_POINTS = (
    "engine.horizontal",
    "engine.vertical",
    "engine.refine",
    "engine.verify",
    "stream.plan",
    "stream.spill",
    "stream.window",
    "stream.checkpoint",
    "stream.merge",
    "stream.verify",
    "service.execute",
    "store.open",
    "store.validate",
    "store.mutate",
    "store.compact",
    "pubstore.open",
    "pubstore.build",
    "pubstore.query",
)


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire at a named injection point on a condition.

    Exactly one of ``hit`` (fire on the Nth arrival, 1-based) and
    ``probability`` (fire per arrival with this probability, from the
    plan's seeded generator) must be set.  ``transient`` is carried onto
    the raised :class:`~repro.exceptions.FaultInjected` and decides whether
    the service retry policy treats the fault as retryable.
    """

    point: str
    hit: Optional[int] = None
    probability: Optional[float] = None
    transient: bool = True

    def __post_init__(self):
        if (self.hit is None) == (self.probability is None):
            raise ParameterError(
                "FaultSpec needs exactly one trigger: hit=N or probability=p "
                f"(got hit={self.hit!r}, probability={self.probability!r})"
            )
        if self.hit is not None and self.hit < 1:
            raise ParameterError(f"hit must be >= 1 (1-based), got {self.hit}")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ParameterError(
                f"probability must be in (0, 1], got {self.probability}"
            )


class FaultPlan:
    """A set of armed :class:`FaultSpec` triggers with per-point hit counters.

    Thread-safe: the service layer calls :meth:`check` from worker threads.
    Counters survive a fired trigger, so ``hits()`` tells a test exactly
    how far a run progressed before (and after) the injected crash.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.seed = int(seed)
        self._specs: dict[str, list[FaultSpec]] = {}
        for spec in specs:
            self._specs.setdefault(spec.point, []).append(spec)
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()
        # One generator per probabilistic point, seeded by (plan seed,
        # CRC32 of the point name): deterministic across processes, unlike
        # str.__hash__ under randomized hashing.
        self._rngs = {
            point: random.Random(self.seed ^ zlib.crc32(point.encode("utf-8")))
            for point, point_specs in self._specs.items()
            if any(spec.probability is not None for spec in point_specs)
        }

    @classmethod
    def from_text(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"point:N,point@p"`` (the ``$REPRO_FAULTS`` syntax)."""
        specs = []
        for raw in text.split(","):
            token = raw.strip()
            if not token:
                continue
            try:
                if "@" in token:
                    point, _, value = token.partition("@")
                    specs.append(FaultSpec(point.strip(), probability=float(value)))
                elif ":" in token:
                    point, _, value = token.partition(":")
                    specs.append(FaultSpec(point.strip(), hit=int(value)))
                else:
                    specs.append(FaultSpec(token, hit=1))
            except ValueError:
                raise ParameterError(
                    f"malformed fault trigger {token!r}: expected 'point:N' "
                    "(Nth hit) or 'point@p' (probability)"
                ) from None
        return cls(specs, seed=seed)

    def points(self) -> list[str]:
        """The injection points this plan has triggers for (sorted)."""
        return sorted(self._specs)

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached under this plan."""
        with self._lock:
            return self._hits.get(point, 0)

    def reset(self) -> None:
        """Zero every hit counter (triggers re-arm from the first arrival)."""
        with self._lock:
            self._hits.clear()

    def describe(self) -> dict:
        """JSON-safe summary of the armed triggers and observed hits."""
        with self._lock:
            return {
                "seed": self.seed,
                "triggers": {
                    point: [
                        {
                            "hit": spec.hit,
                            "probability": spec.probability,
                            "transient": spec.transient,
                        }
                        for spec in specs
                    ]
                    for point, specs in sorted(self._specs.items())
                },
                "hits": dict(sorted(self._hits.items())),
            }

    def check(self, point: str) -> None:
        """Count one arrival at ``point``; raise if a trigger fires."""
        specs = self._specs.get(point)
        if specs is None:
            return
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            for spec in specs:
                if spec.hit is not None:
                    if spec.hit == count:
                        raise FaultInjected(point, count, transient=spec.transient)
                elif self._rngs[point].random() < spec.probability:
                    raise FaultInjected(point, count, transient=spec.transient)


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The plan armed by ``$REPRO_FAULTS``, or ``None`` when unset/empty."""
    if environ is None:
        environ = os.environ
    text = environ.get(ENV_VAR, "").strip()
    if not text:
        return None
    seed = int(environ.get(ENV_SEED_VAR, "0") or "0")
    return FaultPlan.from_text(text, seed=seed)


#: The armed plan; ``None`` keeps every check a no-op.  Seeded from the
#: environment at import so CI can drive the harness without code changes.
_active: Optional[FaultPlan] = plan_from_env()


def install(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _active
    _active = plan


def clear() -> None:
    """Disarm any active plan."""
    install(None)


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, or ``None``."""
    return _active


@contextmanager
def active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the ``with`` block."""
    previous = _active
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def check(point: str) -> None:
    """Injection point: no-op unless an armed plan has a trigger for it."""
    plan = _active
    if plan is not None:
        plan.check(point)

"""Independent verification of a published (disassociated) dataset.

The anonymization algorithm is proven correct in the paper (Section 5), but
a production library should never rely on "proven by construction" alone:
this module re-checks a :class:`~repro.core.clusters.DisassociatedDataset`
against the three properties the proof relies on:

1. every record chunk is k^m-anonymous (Lemma 1 / definition of vertical
   partitioning),
2. every simple cluster satisfies the Lemma-2 sub-record bound (or has a
   non-empty term chunk), and
3. every shared chunk satisfies Property 1 (k-anonymous when it contains a
   term that also appears in a record or shared chunk of a descendant
   cluster, k^m-anonymous otherwise).

``verify_km_anonymity`` raises :class:`AnonymityViolationError` on the first
violation, while ``audit`` returns a full report for diagnostics and tests.

The chunk checks run through
:func:`repro.core.anonymity.km_anonymous_batch`: the auditor first walks the
cluster tree collecting every record/shared chunk, then asks for all
k^m verdicts in one call -- on the numpy kernel backend (see
:mod:`repro.core.kernels`) that packs the whole dataset's chunks into a
single wave matrix instead of checking cluster by cluster.  The exhaustive
Counter-based search still runs per failing chunk, and audit verdicts are
identical on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.anonymity import (
    find_km_violation,
    is_k_anonymous,
    km_anonymous_batch,
    validate_km_parameters,
)
from repro.core.clusters import (
    Cluster,
    DisassociatedDataset,
    JointCluster,
    SimpleCluster,
)
from repro.core.vertical import satisfies_lemma2
from repro.exceptions import AnonymityViolationError


@dataclass
class AuditReport:
    """Outcome of auditing a published dataset.

    Attributes:
        ok: ``True`` when no violation was found.
        chunk_violations: list of ``(cluster_label, itemset, support)`` for
            record or shared chunks that are not k^m-anonymous.
        lemma2_violations: labels of simple clusters violating Lemma 2.
        property1_violations: labels of joint clusters with an unsafe shared
            chunk.
    """

    ok: bool = True
    chunk_violations: list = field(default_factory=list)
    lemma2_violations: list = field(default_factory=list)
    property1_violations: list = field(default_factory=list)

    def summary(self) -> str:
        """One-line human readable summary of the audit."""
        if self.ok:
            return "audit passed: all chunks k^m-anonymous, Lemma 2 and Property 1 hold"
        return (
            f"audit failed: {len(self.chunk_violations)} chunk violation(s), "
            f"{len(self.lemma2_violations)} Lemma-2 violation(s), "
            f"{len(self.property1_violations)} Property-1 violation(s)"
        )


def _collect_simple_cluster(
    cluster: SimpleCluster, k: int, m: int, report: AuditReport, chunk_jobs: list
) -> None:
    for chunk in cluster.record_chunks:
        chunk_jobs.append((cluster.label, chunk.subrecords))
    if not satisfies_lemma2(cluster, k, m):
        report.ok = False
        report.lemma2_violations.append(cluster.label)


def _collect_joint_cluster(
    cluster: JointCluster, k: int, m: int, report: AuditReport, chunk_jobs: list
) -> None:
    # T^r: terms in record or shared chunks of the *children* of this joint
    # cluster (Property 1 is stated over the clusters forming J).
    restricted: set = set()
    for child in cluster.children:
        restricted.update(child.record_chunk_terms())
    for chunk in cluster.shared_chunks:
        chunk_jobs.append((cluster.label, chunk.subrecords))
        if chunk.domain & restricted and not is_k_anonymous(chunk.subrecords, k):
            report.ok = False
            report.property1_violations.append(cluster.label)
    for child in cluster.children:
        _collect_cluster(child, k, m, report, chunk_jobs)


def _collect_cluster(
    cluster: Cluster, k: int, m: int, report: AuditReport, chunk_jobs: list
) -> None:
    if isinstance(cluster, JointCluster):
        _collect_joint_cluster(cluster, k, m, report, chunk_jobs)
    else:
        _collect_simple_cluster(cluster, k, m, report, chunk_jobs)


def _audit_chunk_jobs(chunk_jobs: list, k: int, m: int, report: AuditReport) -> None:
    # One batched verdict sweep over every collected chunk; the exhaustive
    # Counter-based search runs only when a violation exists, to report the
    # worst offending itemset for diagnostics.
    verdicts = km_anonymous_batch([subrecords for _, subrecords in chunk_jobs], k, m)
    for (label, subrecords), anonymous in zip(chunk_jobs, verdicts):
        if anonymous:
            continue
        violation = find_km_violation(subrecords, k, m)
        if violation is not None:
            itemset, support = violation
            report.ok = False
            report.chunk_violations.append((label, itemset, support))


def audit(
    published: DisassociatedDataset, k: Optional[int] = None, m: Optional[int] = None
) -> AuditReport:
    """Audit a published dataset against the paper's anonymity conditions.

    Args:
        published: the disassociated dataset.
        k, m: override the parameters stored in the dataset (defaults to the
            dataset's own ``k`` and ``m``).

    Returns:
        An :class:`AuditReport`; ``report.ok`` is ``True`` when the dataset
        satisfies all conditions.
    """
    k = published.k if k is None else k
    m = published.m if m is None else m
    validate_km_parameters(k, m)
    report = AuditReport()
    chunk_jobs: list = []
    for cluster in published.clusters:
        _collect_cluster(cluster, k, m, report, chunk_jobs)
    _audit_chunk_jobs(chunk_jobs, k, m, report)
    return report


def verify_km_anonymity(
    published: DisassociatedDataset, k: Optional[int] = None, m: Optional[int] = None
) -> None:
    """Raise :class:`AnonymityViolationError` unless the dataset passes :func:`audit`."""
    report = audit(published, k, m)
    if report.ok:
        return
    if report.chunk_violations:
        label, itemset, support = report.chunk_violations[0]
        raise AnonymityViolationError(
            f"cluster {label!r}: itemset {itemset!r} has support {support} < k",
            itemset=itemset,
            support=support,
        )
    if report.lemma2_violations:
        raise AnonymityViolationError(
            f"cluster {report.lemma2_violations[0]!r} violates the Lemma-2 sub-record bound"
        )
    raise AnonymityViolationError(
        f"joint cluster {report.property1_violations[0]!r} has a shared chunk violating Property 1"
    )

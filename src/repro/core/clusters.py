"""Data model of a disassociated (published) dataset.

The published output of disassociation (paper, Section 3) is a set of
*clusters*.  A **simple cluster** publishes

* its original size ``|P|`` (number of original records),
* zero or more k^m-anonymous **record chunks**: bags of non-empty
  sub-records, each chunk over its own disjoint term domain, and
* exactly one **term chunk**: a plain set of terms whose multiplicities and
  co-occurrences are hidden.

The refining step may combine clusters into **joint clusters**, which add
k^m-anonymous (or k-anonymous, see Property 1) **shared chunks** built from
terms that were rare within each member cluster but frequent across them.

These classes are pure containers: the construction logic lives in
:mod:`repro.core.horizontal`, :mod:`repro.core.vertical` and
:mod:`repro.core.refine`; verification lives in
:mod:`repro.core.verification`.  Everything is JSON-serializable through
``to_dict`` / ``from_dict`` so published datasets can be exchanged as files.
"""

from __future__ import annotations

import gc
import threading
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from typing import Optional, Union

from repro.exceptions import DatasetFormatError
from repro.core.dataset import TransactionDataset

#: Guards the process-wide pause depth below (the collector itself is
#: process-global, so overlapping pauses from concurrent service workers
#: must coordinate through one counter).
_GC_PAUSE_LOCK = threading.Lock()
_gc_pause_depth = 0
_gc_reenable = False


@contextmanager
def paused_gc():
    """Pause the cyclic garbage collector for a bulk (de)serialization.

    Turning a large publication into (or out of) its dictionary form
    allocates millions of container objects that are all retained until
    the operation finishes, so every generational collection triggered by
    the allocation count rescans a strictly growing live tree and frees
    nothing -- on a ~100k-record publication that multiplies the
    serialization cost by roughly 10x.

    Reentrant and thread-safe: overlapping sections (nested calls, or
    concurrent service workers) share one process-wide pause depth -- the
    first section in disables the collector, the last one out re-enables
    it, and an application-level ``gc.disable()`` already in effect when
    the first section enters is respected (never undone here).
    """
    global _gc_pause_depth, _gc_reenable
    with _GC_PAUSE_LOCK:
        if _gc_pause_depth == 0:
            _gc_reenable = gc.isenabled()
            if _gc_reenable:
                gc.disable()
        _gc_pause_depth += 1
    try:
        yield
    finally:
        with _GC_PAUSE_LOCK:
            _gc_pause_depth -= 1
            if _gc_pause_depth == 0 and _gc_reenable:
                gc.enable()


def _as_record(terms: Iterable) -> frozenset:
    # Fast paths: the hot constructors (chunk materialization in VERPART and
    # REFINE) already hand over frozensets of strings -- share them instead
    # of rebuilding term by term -- and deserialization hands over the JSON
    # parser's lists, whose elements are strings unless a caller handed in
    # something exotic.
    kind = type(terms)
    if kind is frozenset or kind is list:
        for t in terms:
            if type(t) is not str:
                break
        else:
            return terms if kind is frozenset else frozenset(terms)
    return frozenset(str(t) for t in terms)


class RecordChunk:
    """A bag of non-empty sub-records over a dedicated term domain.

    Args:
        domain: the terms this chunk is responsible for (``T_i`` in the paper).
        subrecords: the non-empty projections of the cluster's records onto
            ``domain``; empty projections are dropped (they carry no
            information and are not published).
    """

    def __init__(self, domain: Iterable, subrecords: Iterable[Iterable]):
        self.domain: frozenset = _as_record(domain)
        self.subrecords: list[frozenset] = [
            record for record in map(_as_record, subrecords) if record
        ]

    @classmethod
    def _from_normalized(
        cls, domain: frozenset, subrecords: list
    ) -> "RecordChunk":
        """Construct without re-validating already-normalized content.

        VERPART's chunk materialization projects guaranteed
        ``frozenset``-of-``str`` records onto a guaranteed
        ``frozenset``-of-``str`` domain, so the public constructor's
        per-term coercion would be pure overhead on the phase's hottest
        allocation.  Private: ``subrecords`` MUST already be non-empty
        normalized frozensets.
        """
        chunk = cls.__new__(cls)
        chunk.domain = domain
        chunk.subrecords = subrecords
        return chunk

    def __len__(self) -> int:
        return len(self.subrecords)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self.subrecords)

    def __repr__(self) -> str:
        return f"RecordChunk(|T|={len(self.domain)}, |C|={len(self.subrecords)})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, RecordChunk):
            return NotImplemented
        return self.domain == other.domain and sorted(
            map(sorted, self.subrecords)
        ) == sorted(map(sorted, other.subrecords))

    def term_supports(self) -> Counter:
        """Support of each term within this chunk."""
        counts: Counter = Counter()
        for subrecord in self.subrecords:
            counts.update(subrecord)
        return counts

    def support(self, itemset: Iterable) -> int:
        """Support of an itemset inside this chunk (0 if it spans other domains)."""
        items = _as_record(itemset)
        if not items <= self.domain:
            return 0
        return sum(1 for sr in self.subrecords if items <= sr)

    def to_dict(self) -> dict:
        """JSON-ready payload (sorted domain and sub-records; stable output)."""
        return {
            "domain": sorted(self.domain),
            "subrecords": [sorted(sr) for sr in self.subrecords],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RecordChunk":
        """Rebuild a record chunk from its :meth:`to_dict` payload."""
        try:
            return cls(payload["domain"], payload["subrecords"])
        except (KeyError, TypeError) as exc:
            raise DatasetFormatError(f"malformed record chunk: {payload!r}") from exc


class SharedChunk(RecordChunk):
    """A record chunk shared by the member clusters of a joint cluster.

    Structurally identical to :class:`RecordChunk`; it additionally records
    how many sub-records were contributed by each member cluster (needed for
    reconstruction, where a shared sub-record must be attached to a record
    of the contributing cluster).
    """

    def __init__(
        self,
        domain: Iterable,
        subrecords: Iterable[Iterable],
        contributions: Optional[dict] = None,
    ):
        super().__init__(domain, subrecords)
        # cluster-label -> number of (possibly empty) projections contributed
        self.contributions: dict = dict(contributions or {})

    @classmethod
    def _from_normalized(
        cls, domain: frozenset, subrecords: list, contributions: dict
    ) -> "SharedChunk":
        """Construct without re-validating already-normalized content.

        The REFINE chunk builder produces non-empty ``frozenset``-of-``str``
        sub-records directly, so the public constructor's per-term coercion
        would be pure overhead on the hottest allocation of the refine
        phase.  Private: inputs MUST already satisfy the constructor's
        invariants.
        """
        chunk = cls.__new__(cls)
        chunk.domain = domain
        chunk.subrecords = subrecords
        chunk.contributions = contributions
        return chunk

    def to_dict(self) -> dict:
        """JSON-ready payload; adds the ordered per-cluster contributions."""
        payload = super().to_dict()
        # Contributions are serialized as an ordered list of [label, count]
        # pairs: the order matters because the chunk's sub-record list is
        # sliced per contributing cluster in that order at reconstruction time.
        payload["contributions"] = [
            [str(label), int(count)] for label, count in self.contributions.items()
        ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SharedChunk":
        """Rebuild a shared chunk (and its contributions) from :meth:`to_dict`."""
        try:
            raw = payload.get("contributions") or []
            if isinstance(raw, dict):
                contributions = {str(k): int(v) for k, v in raw.items()}
            else:
                contributions = {str(label): int(count) for label, count in raw}
            return cls(payload["domain"], payload["subrecords"], contributions)
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetFormatError(f"malformed shared chunk: {payload!r}") from exc


class TermChunk:
    """The term chunk ``C_T`` of a cluster: a plain set of terms.

    Only term *presence* is published; supports and co-occurrences of these
    terms inside the cluster are hidden.
    """

    def __init__(self, terms: Iterable = ()):
        self.terms: frozenset = _as_record(terms)

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self.terms)

    def __contains__(self, term) -> bool:
        return str(term) in self.terms

    def __repr__(self) -> str:
        return f"TermChunk({sorted(self.terms)})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TermChunk):
            return NotImplemented
        return self.terms == other.terms

    def to_dict(self) -> dict:
        """JSON-ready payload (sorted term list)."""
        return {"terms": sorted(self.terms)}

    @classmethod
    def from_dict(cls, payload: dict) -> "TermChunk":
        """Rebuild a term chunk from its :meth:`to_dict` payload."""
        try:
            return cls(payload["terms"])
        except (KeyError, TypeError) as exc:
            raise DatasetFormatError(f"malformed term chunk: {payload!r}") from exc


class SimpleCluster:
    """A published simple cluster: record chunks + one term chunk + its size.

    Args:
        size: number of original records in the cluster (published, see the
            discussion after vertical partitioning in Section 3).
        record_chunks: the k^m-anonymous record chunks.
        term_chunk: the (possibly empty) term chunk.
        label: stable identifier used by shared chunks and reconstruction.
        original_records: the cluster's original records.  Kept privately by
            the anonymizer (never serialized) because the refining step needs
            them to build shared chunks; consumers of published data never
            see them.
    """

    def __init__(
        self,
        size: int,
        record_chunks: Sequence[RecordChunk],
        term_chunk: TermChunk,
        label: Optional[str] = None,
        original_records: Optional[Sequence[frozenset]] = None,
    ):
        self.size = int(size)
        self.record_chunks: list[RecordChunk] = list(record_chunks)
        self.term_chunk: TermChunk = term_chunk
        self.label: str = label if label is not None else f"P{id(self):x}"
        self._original_records: Optional[list[frozenset]] = (
            [_as_record(r) for r in original_records] if original_records is not None else None
        )

    @classmethod
    def _from_normalized(
        cls,
        size: int,
        record_chunks: list,
        term_chunk: TermChunk,
        label: str,
        original_records: list,
    ) -> "SimpleCluster":
        """Construct without re-normalizing ``original_records``.

        VERPART materializes clusters from records it already passed
        through :func:`_as_record`, so the public constructor's per-record
        coercion would rescan every term of every record a second time.
        Private: ``original_records`` MUST already be normalized
        frozensets and ``record_chunks`` a plain list.
        """
        cluster = cls.__new__(cls)
        cluster.size = int(size)
        cluster.record_chunks = record_chunks
        cluster.term_chunk = term_chunk
        cluster.label = label
        cluster._original_records = original_records
        return cluster

    def __repr__(self) -> str:
        return (
            f"SimpleCluster(label={self.label!r}, size={self.size}, "
            f"chunks={len(self.record_chunks)}, |CT|={len(self.term_chunk)})"
        )

    # -- structural accessors ------------------------------------------ #
    @property
    def original_records(self) -> Optional[list[frozenset]]:
        """The private original records (``None`` for deserialized clusters)."""
        return None if self._original_records is None else list(self._original_records)

    def record_chunk_terms(self) -> frozenset:
        """Union of the record-chunk domains of this cluster."""
        terms: set = set()
        for chunk in self.record_chunks:
            terms.update(chunk.domain)
        return frozenset(terms)

    def domain(self) -> frozenset:
        """All terms published by this cluster (record chunks + term chunk)."""
        return self.record_chunk_terms() | self.term_chunk.terms

    def total_subrecords(self) -> int:
        """Total number of published sub-records across record chunks (Lemma 2)."""
        return sum(len(chunk) for chunk in self.record_chunks)

    def leaves(self) -> list["SimpleCluster"]:
        """The simple clusters under this cluster: itself."""
        return [self]

    def iter_shared_chunks(self) -> Iterator[SharedChunk]:
        """Shared chunks in this subtree: none for a simple cluster."""
        return iter(())

    def to_dict(self) -> dict:
        """JSON-ready payload (type tag, label, size and chunks)."""
        return {
            "type": "simple",
            "label": self.label,
            "size": self.size,
            "record_chunks": [chunk.to_dict() for chunk in self.record_chunks],
            "term_chunk": self.term_chunk.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimpleCluster":
        """Rebuild a simple cluster from its :meth:`to_dict` payload."""
        try:
            return cls(
                size=payload["size"],
                record_chunks=[RecordChunk.from_dict(c) for c in payload["record_chunks"]],
                term_chunk=TermChunk.from_dict(payload["term_chunk"]),
                label=payload.get("label"),
            )
        except (KeyError, TypeError) as exc:
            raise DatasetFormatError(f"malformed simple cluster: {payload!r}") from exc


class JointCluster:
    """A joint cluster: child clusters plus shared chunks over refining terms.

    The children may themselves be joint clusters (Section 3, recursive
    generalization of joint clusters); the leaves are always simple
    clusters.
    """

    def __init__(
        self,
        children: Sequence[Union[SimpleCluster, "JointCluster"]],
        shared_chunks: Sequence[SharedChunk] = (),
        label: Optional[str] = None,
    ):
        self.children: list[Union[SimpleCluster, JointCluster]] = list(children)
        self.shared_chunks: list[SharedChunk] = list(shared_chunks)
        self.label: str = label if label is not None else f"J{id(self):x}"
        # The child list is fixed at construction (REFINE builds a fresh
        # joint per merge), so the leaf walk and record count are computed
        # once on first use -- they sit on REFINE's per-attempt hot path.
        self._leaves_cache: Optional[list[SimpleCluster]] = None
        self._size_cache: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"JointCluster(label={self.label!r}, children={len(self.children)}, "
            f"shared_chunks={len(self.shared_chunks)}, size={self.size})"
        )

    @property
    def size(self) -> int:
        """Total number of original records across all leaf clusters."""
        size = self._size_cache
        if size is None:
            self._size_cache = size = sum(leaf.size for leaf in self.leaves())
        return size

    def leaves(self) -> list[SimpleCluster]:
        """The simple clusters at the leaves of this joint cluster."""
        cached = self._leaves_cache
        if cached is None:
            cached = []
            for child in self.children:
                cached.extend(child.leaves())
            self._leaves_cache = cached
        return list(cached)

    def iter_shared_chunks(self) -> Iterator[SharedChunk]:
        """All shared chunks in this joint cluster's subtree (own first)."""
        yield from self.shared_chunks
        for child in self.children:
            yield from child.iter_shared_chunks()

    def record_chunk_terms(self) -> frozenset:
        """Terms appearing in record or shared chunks of the subtree (``T^r``)."""
        terms: set = set()
        for leaf in self.leaves():
            terms.update(leaf.record_chunk_terms())
        for chunk in self.iter_shared_chunks():
            terms.update(chunk.domain)
        return frozenset(terms)

    def term_chunk_terms(self) -> frozenset:
        """Union of the leaf term chunks that are still published as term chunks."""
        terms: set = set()
        for leaf in self.leaves():
            terms.update(leaf.term_chunk.terms)
        return frozenset(terms)

    def domain(self) -> frozenset:
        """All terms published by the joint cluster."""
        return self.record_chunk_terms() | self.term_chunk_terms()

    def to_dict(self) -> dict:
        """JSON-ready payload (children and shared chunks, recursively)."""
        return {
            "type": "joint",
            "label": self.label,
            "children": [child.to_dict() for child in self.children],
            "shared_chunks": [chunk.to_dict() for chunk in self.shared_chunks],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "JointCluster":
        """Rebuild a joint cluster tree from its :meth:`to_dict` payload."""
        try:
            children = [cluster_from_dict(c) for c in payload["children"]]
            shared = [SharedChunk.from_dict(c) for c in payload.get("shared_chunks", [])]
            return cls(children, shared, label=payload.get("label"))
        except (KeyError, TypeError) as exc:
            raise DatasetFormatError(f"malformed joint cluster: {payload!r}") from exc


Cluster = Union[SimpleCluster, JointCluster]


def cluster_from_dict(payload: dict) -> Cluster:
    """Deserialize a simple or joint cluster from its dictionary form."""
    kind = payload.get("type")
    if kind == "simple":
        return SimpleCluster.from_dict(payload)
    if kind == "joint":
        return JointCluster.from_dict(payload)
    raise DatasetFormatError(f"unknown cluster type: {kind!r}")


class DisassociatedDataset:
    """The published result of disassociation: a list of top-level clusters.

    Args:
        clusters: simple and/or joint clusters.
        k, m: the anonymity parameters the dataset was built for (published
            alongside the data so analysts know the guarantee).
    """

    def __init__(self, clusters: Sequence[Cluster], k: int, m: int):
        self.clusters: list[Cluster] = list(clusters)
        self.k = int(k)
        self.m = int(m)

    def __repr__(self) -> str:
        return (
            f"DisassociatedDataset(clusters={len(self.clusters)}, "
            f"records={self.total_records()}, k={self.k}, m={self.m})"
        )

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self.clusters)

    # -- structural accessors ------------------------------------------ #
    def simple_clusters(self) -> list[SimpleCluster]:
        """All leaf (simple) clusters of the published dataset."""
        result: list[SimpleCluster] = []
        for cluster in self.clusters:
            result.extend(cluster.leaves())
        return result

    def total_records(self) -> int:
        """Number of original records represented by the published dataset."""
        return sum(cluster.size if isinstance(cluster, JointCluster) else cluster.size
                   for cluster in self.clusters)

    def domain(self) -> frozenset:
        """All terms appearing anywhere in the published dataset."""
        terms: set = set()
        for cluster in self.clusters:
            terms.update(cluster.domain())
        return frozenset(terms)

    def record_chunk_terms(self) -> frozenset:
        """Terms that appear in at least one record or shared chunk."""
        terms: set = set()
        for cluster in self.clusters:
            terms.update(cluster.record_chunk_terms())
        return frozenset(terms)

    def term_chunk_only_terms(self) -> frozenset:
        """Terms that appear only in term chunks (their associations are lost)."""
        in_chunks = self.record_chunk_terms()
        only: set = set()
        for leaf in self.simple_clusters():
            only.update(t for t in leaf.term_chunk.terms if t not in in_chunks)
        return frozenset(only)

    def iter_record_chunks(self) -> Iterator[RecordChunk]:
        """All record chunks and shared chunks of the published dataset."""
        for leaf in self.simple_clusters():
            yield from leaf.record_chunks
        for cluster in self.clusters:
            yield from cluster.iter_shared_chunks()

    # -- analyst-facing helpers ----------------------------------------- #
    def lower_bound_support(self, itemset: Iterable) -> int:
        """Guaranteed lower bound of an itemset's support in the original data.

        Counts appearances of the itemset inside individual record/shared
        chunks (an itemset fully contained in one chunk is certain to exist
        that many times in the original cluster) and adds one for every term
        chunk containing a single-term itemset (Section 6).
        """
        items = frozenset(str(t) for t in itemset)
        bound = sum(chunk.support(items) for chunk in self.iter_record_chunks())
        if len(items) == 1:
            (term,) = items
            bound += sum(1 for leaf in self.simple_clusters() if term in leaf.term_chunk)
        return bound

    def chunk_dataset(self) -> TransactionDataset:
        """All published sub-records as one transaction dataset.

        Used by the ``*-a`` variants of the metrics, which only rely on
        associations that are certain to exist in the original data.
        """
        subrecords = [sr for chunk in self.iter_record_chunks() for sr in chunk.subrecords]
        # each term-chunk term is certain to appear at least once in its cluster
        for leaf in self.simple_clusters():
            subrecords.extend(frozenset({t}) for t in leaf.term_chunk.terms)
        return TransactionDataset(subrecords, allow_empty=False)

    # -- serialization --------------------------------------------------- #
    def to_dict(self) -> dict:
        """JSON-ready payload of the whole publication (parameters + clusters)."""
        with paused_gc():
            return {
                "k": self.k,
                "m": self.m,
                "clusters": [cluster.to_dict() for cluster in self.clusters],
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "DisassociatedDataset":
        """Rebuild a published dataset from its :meth:`to_dict` payload."""
        try:
            with paused_gc():
                clusters = [cluster_from_dict(c) for c in payload["clusters"]]
            return cls(clusters, k=payload["k"], m=payload["m"])
        except (KeyError, TypeError) as exc:
            raise DatasetFormatError(f"malformed disassociated dataset: {payload!r}") from exc

"""End-to-end disassociation engine (the paper's anonymization algorithm).

:class:`Disassociator` wires together the three phases of Section 4 —
horizontal partitioning, vertical partitioning, refining — and returns a
:class:`~repro.core.clusters.DisassociatedDataset`.  Parameters are grouped
in :class:`AnonymizationParams`, validated once, and recorded on the output.

Typical usage::

    from repro import Disassociator, AnonymizationParams, TransactionDataset

    dataset = TransactionDataset([...])
    params = AnonymizationParams(k=5, m=2)
    published = Disassociator(params).anonymize(dataset)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.clusters import DisassociatedDataset, SimpleCluster
from repro.core.dataset import TransactionDataset
from repro.core.horizontal import DEFAULT_MAX_CLUSTER_SIZE, horizontal_partition
from repro.core.refine import refine
from repro.core.verification import verify_km_anonymity
from repro.core.vertical import vertical_partition
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class AnonymizationParams:
    """Parameters of the disassociation algorithm.

    Attributes:
        k: minimum number of candidate records an adversary must face.
        m: maximum background knowledge (number of known terms per record).
        max_cluster_size: HORPART cluster-size bound.
        refine: whether to run the REFINE step (disable for ablations).
        max_join_size: cap (in original records) on the size of the joint
            clusters created by REFINE; defaults to ``8 * max_cluster_size``
            when left as ``None``.
        sensitive_terms: optional set of terms to treat as sensitive; they
            are excluded from horizontal-partitioning decisions and forced
            into term chunks, which yields cluster-size l-diversity for them
            (paper, Section 5, "Diversity").
        verify: re-audit the published dataset before returning it.
    """

    k: int = 5
    m: int = 2
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE
    refine: bool = True
    max_join_size: Optional[int] = None
    sensitive_terms: frozenset = field(default_factory=frozenset)
    verify: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")
        if self.max_cluster_size < 2:
            raise ParameterError(
                f"max_cluster_size must be >= 2, got {self.max_cluster_size}"
            )
        if self.max_cluster_size <= self.k:
            raise ParameterError(
                "max_cluster_size must be greater than k "
                f"(got max_cluster_size={self.max_cluster_size}, k={self.k})"
            )
        if self.max_join_size is not None and self.max_join_size < self.max_cluster_size:
            raise ParameterError(
                "max_join_size must be at least max_cluster_size "
                f"(got max_join_size={self.max_join_size}, "
                f"max_cluster_size={self.max_cluster_size})"
            )
        object.__setattr__(
            self, "sensitive_terms", frozenset(str(t) for t in self.sensitive_terms)
        )


@dataclass
class AnonymizationReport:
    """Timings and structural statistics of one anonymization run."""

    num_records: int = 0
    num_clusters: int = 0
    num_joint_clusters: int = 0
    num_record_chunks: int = 0
    num_shared_chunks: int = 0
    term_chunk_terms: int = 0
    horizontal_seconds: float = 0.0
    vertical_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Total anonymization time across the three phases."""
        return self.horizontal_seconds + self.vertical_seconds + self.refine_seconds


class Disassociator:
    """Anonymizes transaction datasets with the disassociation transformation.

    Args:
        params: the anonymization parameters; defaults to ``k=5, m=2`` as in
            the paper's experiments.
    """

    def __init__(self, params: Optional[AnonymizationParams] = None):
        self.params = params if params is not None else AnonymizationParams()
        self.last_report: Optional[AnonymizationReport] = None

    def anonymize(self, dataset: TransactionDataset) -> DisassociatedDataset:
        """Run the full pipeline and return the published dataset.

        Raises:
            AnonymityViolationError: if ``params.verify`` is set and the
                produced dataset fails the independent audit (this would
                indicate a library bug, not a user error).
        """
        params = self.params
        report = AnonymizationReport(num_records=len(dataset))
        sensitive = params.sensitive_terms

        working = dataset
        if sensitive:
            # Sensitive terms are hidden from the clustering heuristic so
            # clusters are formed on quasi-identifying content only.
            working = TransactionDataset(
                (record - sensitive or record for record in dataset), allow_empty=False
            )

        start = time.perf_counter()
        partitions = horizontal_partition(working, params.max_cluster_size)
        report.horizontal_seconds = time.perf_counter() - start

        # Re-attach sensitive terms to the records of each partition so the
        # vertical step can place them in term chunks.
        if sensitive:
            partitions = self._reattach_sensitive(dataset, partitions, sensitive)

        start = time.perf_counter()
        clusters: list[SimpleCluster] = []
        for index, partition in enumerate(partitions):
            result = vertical_partition(
                partition, params.k, params.m, label=f"P{index}"
            )
            cluster = result.cluster
            if sensitive:
                cluster = self._force_sensitive_to_term_chunk(cluster, sensitive)
            clusters.append(cluster)
        report.vertical_seconds = time.perf_counter() - start

        start = time.perf_counter()
        if params.refine and len(clusters) > 1:
            join_cap = params.max_join_size
            if join_cap is None:
                join_cap = 8 * params.max_cluster_size
            refined = refine(
                clusters,
                params.k,
                params.m,
                max_join_size=join_cap,
                excluded_terms=sensitive,
            )
        else:
            refined = list(clusters)
        report.refine_seconds = time.perf_counter() - start

        published = DisassociatedDataset(refined, k=params.k, m=params.m)
        self._fill_report(report, published)
        self.last_report = report

        if params.verify:
            verify_km_anonymity(published)
        return published

    # ------------------------------------------------------------------ #
    # sensitive-term (l-diversity) support
    # ------------------------------------------------------------------ #
    @staticmethod
    def _reattach_sensitive(dataset, partitions, sensitive):
        """Map partitioned records back to their original (sensitive-bearing) form.

        Records are matched on their non-sensitive projection; duplicates are
        consumed in order so multiplicities are preserved.
        """
        pool: dict[frozenset, list[frozenset]] = {}
        for record in dataset:
            key = frozenset(record - sensitive) or frozenset(record)
            pool.setdefault(key, []).append(frozenset(record))
        restored = []
        for partition in partitions:
            records = []
            for record in partition:
                candidates = pool.get(frozenset(record), [])
                records.append(candidates.pop() if candidates else frozenset(record))
            restored.append(TransactionDataset(records, allow_empty=False))
        return restored

    @staticmethod
    def _force_sensitive_to_term_chunk(cluster: SimpleCluster, sensitive: frozenset) -> SimpleCluster:
        """Move any sensitive term that slipped into a record chunk to the term chunk."""
        from repro.core.clusters import RecordChunk, TermChunk

        moved: set = set()
        new_chunks = []
        for chunk in cluster.record_chunks:
            overlap = chunk.domain & sensitive
            if not overlap:
                new_chunks.append(chunk)
                continue
            moved.update(overlap)
            reduced_domain = chunk.domain - overlap
            if reduced_domain:
                new_chunks.append(
                    RecordChunk(reduced_domain, (sr - overlap for sr in chunk.subrecords))
                )
        present_sensitive = set()
        if cluster.original_records is not None:
            for record in cluster.original_records:
                present_sensitive.update(record & sensitive)
        new_term_chunk = TermChunk(cluster.term_chunk.terms | moved | present_sensitive)
        return SimpleCluster(
            size=cluster.size,
            record_chunks=new_chunks,
            term_chunk=new_term_chunk,
            label=cluster.label,
            original_records=cluster.original_records,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _fill_report(report: AnonymizationReport, published: DisassociatedDataset) -> None:
        from repro.core.clusters import JointCluster

        leaves = published.simple_clusters()
        report.num_clusters = len(leaves)
        report.num_joint_clusters = sum(
            1 for cluster in published.clusters if isinstance(cluster, JointCluster)
        )
        report.num_record_chunks = sum(len(leaf.record_chunks) for leaf in leaves)
        report.num_shared_chunks = sum(
            1 for cluster in published.clusters for _ in cluster.iter_shared_chunks()
        )
        report.term_chunk_terms = sum(len(leaf.term_chunk) for leaf in leaves)


def anonymize(
    dataset: TransactionDataset,
    k: int = 5,
    m: int = 2,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
    refine: bool = True,
    max_join_size: Optional[int] = None,
    sensitive_terms=(),
    verify: bool = True,
) -> DisassociatedDataset:
    """Functional one-call interface to the disassociation pipeline."""
    params = AnonymizationParams(
        k=k,
        m=m,
        max_cluster_size=max_cluster_size,
        refine=refine,
        max_join_size=max_join_size,
        sensitive_terms=frozenset(sensitive_terms),
        verify=verify,
    )
    return Disassociator(params).anonymize(dataset)

"""End-to-end disassociation engine (the paper's anonymization algorithm).

The engine is a pluggable :class:`Pipeline` of phase objects, each
implementing the small :class:`Phase` protocol (``name`` + ``run(ctx)``):

* :class:`HorizontalPhase` -- HORPART.  With the default ``encoded``
  backend the dataset is interned onto an
  :class:`~repro.core.vocab.EncodedDataset` first and split via posting
  lists; records are decoded back at the phase boundary.
* :class:`VerticalPhase` -- VERPART per cluster, over int bitmasks on the
  encoded backend.  ``jobs=N`` fans the independent per-cluster calls out
  over ``concurrent.futures`` with a deterministic merge order (cluster
  labels are assigned before submission, results are merged in label
  order).
* :class:`RefinePhase` -- REFINE with bitset shared-chunk construction on
  the encoded backend.
* :class:`VerifyPhase` -- publishes the dataset and re-audits it.

Phases communicate through a :class:`PipelineContext`; the pipeline times
every phase into the :class:`AnonymizationReport`.  :class:`Disassociator`
builds the default pipeline; replace :meth:`Disassociator.build_pipeline`
(or construct a :class:`Pipeline` directly) to insert, drop or reorder
phases.  Parameters are grouped in :class:`AnonymizationParams`, validated
once, and recorded on the output.

The ``backend`` parameter selects the execution core: ``"encoded"``
(default) runs the interned/bitset fast paths, ``"string"`` runs the
original reference implementation.  Both produce identical published
datasets (covered by the equivalence test suite).

For datasets too large for one pass, :class:`ShardedPipeline` (re-exported
here from :mod:`repro.stream`) runs this same pipeline per bounded-memory
window inside each shard of a streamed input, then merges and globally
re-verifies; see :mod:`repro.stream` for the streaming semantics.

Typical usage::

    from repro import Disassociator, AnonymizationParams, TransactionDataset

    dataset = TransactionDataset([...])
    params = AnonymizationParams(k=5, m=2, jobs=4)
    published = Disassociator(params).anonymize(dataset)
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

from repro import faults
from repro.core import deadline, kernels
from repro.core.clusters import Cluster, DisassociatedDataset, SimpleCluster
from repro.core.dataset import TransactionDataset
from repro.core.horizontal import (
    DEFAULT_MAX_CLUSTER_SIZE,
    horizontal_partition,
    horizontal_partition_indices,
)
from repro.core.refine import RefineStats, effective_jobs, refine
from repro.core.verification import verify_km_anonymity
from repro.core.vertical import (
    build_cluster_from_domains,
    partition_domains_fast,
    vertical_partition,
    vertical_partition_fast,
    vertical_partition_wave,
)
from repro.core.vocab import (
    EncodedCluster,
    EncodedDataset,
    Vocabulary,
    discard_cluster_masks,
    register_cluster_masks,
)
from repro.exceptions import EngineClosedError, ParameterError

#: Execution backends: the interned/bitset core and the string reference.
BACKENDS = ("encoded", "string")


@dataclass(frozen=True)
class AnonymizationParams:
    """Parameters of the disassociation algorithm.

    Attributes:
        k: minimum number of candidate records an adversary must face.
        m: maximum background knowledge (number of known terms per record).
        max_cluster_size: HORPART cluster-size bound.
        refine: whether to run the REFINE step (disable for ablations).
        max_join_size: cap (in original records) on the size of the joint
            clusters created by REFINE; defaults to ``8 * max_cluster_size``
            when left as ``None``.
        sensitive_terms: optional set of terms to treat as sensitive; they
            are excluded from horizontal-partitioning decisions and forced
            into term chunks, which yields cluster-size l-diversity for them
            (paper, Section 5, "Diversity").
        verify: re-audit the published dataset before returning it.
        backend: ``"encoded"`` (default) runs the interned-term/bitset
            execution core; ``"string"`` runs the reference implementation.
            Both produce identical published datasets.
        jobs: number of worker processes for the per-cluster VERPART
            fan-out (encoded backend only); ``1`` runs in-process.
        kernels: vectorized-kernel backend for the encoded core --
            ``"numpy"``, ``"python"``, ``"auto"`` or ``None`` (defer to
            ``$REPRO_KERNELS``, then auto-select).  Both kernel backends
            produce identical published datasets; see
            :mod:`repro.core.kernels`.
        packed_min_rows: row-count crossover for the packed/wave kernels
            (``None`` defers to ``$REPRO_PACKED_MIN_ROWS``, then the
            :data:`~repro.core.kernels.PACKED_MIN_ROWS` default); see
            :func:`repro.core.kernels.packed_min_rows`.  The threshold only
            moves work between equivalent kernels, never the output.
    """

    k: int = 5
    m: int = 2
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE
    refine: bool = True
    max_join_size: Optional[int] = None
    sensitive_terms: frozenset = field(default_factory=frozenset)
    verify: bool = True
    backend: str = "encoded"
    jobs: int = 1
    kernels: Optional[str] = None
    packed_min_rows: Optional[int] = None

    def __post_init__(self):
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.m < 1:
            raise ParameterError(f"m must be >= 1, got {self.m}")
        if self.max_cluster_size < 2:
            raise ParameterError(
                f"max_cluster_size must be >= 2, got {self.max_cluster_size}"
            )
        if self.max_cluster_size <= self.k:
            raise ParameterError(
                "max_cluster_size must be greater than k "
                f"(got max_cluster_size={self.max_cluster_size}, k={self.k})"
            )
        if self.max_join_size is not None and self.max_join_size < self.max_cluster_size:
            raise ParameterError(
                "max_join_size must be at least max_cluster_size "
                f"(got max_join_size={self.max_join_size}, "
                f"max_cluster_size={self.max_cluster_size})"
            )
        if self.backend not in BACKENDS:
            raise ParameterError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not isinstance(self.jobs, int) or self.jobs < 1:
            raise ParameterError(f"jobs must be a positive integer, got {self.jobs!r}")
        if self.kernels is not None:
            object.__setattr__(self, "kernels", kernels.validate_choice(self.kernels))
        if self.packed_min_rows is not None:
            object.__setattr__(
                self, "packed_min_rows", kernels.validate_min_rows(self.packed_min_rows)
            )
        object.__setattr__(
            self, "sensitive_terms", frozenset(str(t) for t in self.sensitive_terms)
        )


@dataclass
class AnonymizationReport:
    """Timings and structural statistics of one anonymization run.

    Phase timings are wall-clock seconds per pipeline phase.
    ``encode_seconds`` / ``decode_seconds`` break out the time spent moving
    between the string and interned representations; both are sub-intervals
    of ``horizontal_seconds`` (the phase that owns the boundary).

    ``effective_jobs`` is the worker count actually used (requested
    ``jobs`` capped at the host's CPU count); ``kernels`` is the resolved
    vectorized-kernel backend (``"python"`` or ``"numpy"``); the
    ``refine_*`` counters expose the REFINE driver's per-pass work (see
    :class:`~repro.core.refine.RefineStats`).

    ``packed_min_rows`` is the resolved packed/wave-kernel crossover in
    effect for the run; the ``verpart_wave_*`` and ``refine_*wave*``
    counters record how much work went through the cross-cluster wave
    kernels versus the per-cluster fallback (see
    :class:`~repro.core.kernels.WaveBatch`).
    """

    num_records: int = 0
    num_clusters: int = 0
    num_joint_clusters: int = 0
    num_record_chunks: int = 0
    num_shared_chunks: int = 0
    term_chunk_terms: int = 0
    horizontal_seconds: float = 0.0
    vertical_seconds: float = 0.0
    refine_seconds: float = 0.0
    verify_seconds: float = 0.0
    encode_seconds: float = 0.0
    decode_seconds: float = 0.0
    effective_jobs: int = 1
    kernels: str = "python"
    refine_passes: int = 0
    refine_pairs_considered: int = 0
    refine_merges_attempted: int = 0
    refine_merges_applied: int = 0
    refine_merges_skipped_memo: int = 0
    refine_pairs_prefiltered: int = 0
    packed_min_rows: int = 0
    verpart_wave_clusters: int = 0
    verpart_wave_fallbacks: int = 0
    refine_pairs_waved: int = 0
    refine_wave_fallbacks: int = 0

    @property
    def total_seconds(self) -> float:
        """Total anonymization time across the pipeline phases."""
        return (
            self.horizontal_seconds
            + self.vertical_seconds
            + self.refine_seconds
            + self.verify_seconds
        )

    def phase_timings(self) -> dict:
        """Phase timings as a plain dict (machine-readable perf output)."""
        return {
            "horizontal_seconds": self.horizontal_seconds,
            "vertical_seconds": self.vertical_seconds,
            "refine_seconds": self.refine_seconds,
            "verify_seconds": self.verify_seconds,
            "encode_seconds": self.encode_seconds,
            "decode_seconds": self.decode_seconds,
            "total_seconds": self.total_seconds,
        }

    def counters(self) -> dict:
        """Work counters as a plain dict (machine-readable perf output)."""
        return {
            "effective_jobs": self.effective_jobs,
            "refine_passes": self.refine_passes,
            "refine_pairs_considered": self.refine_pairs_considered,
            "refine_merges_attempted": self.refine_merges_attempted,
            "refine_merges_applied": self.refine_merges_applied,
            "refine_merges_skipped_memo": self.refine_merges_skipped_memo,
            "refine_pairs_prefiltered": self.refine_pairs_prefiltered,
            "packed_min_rows": self.packed_min_rows,
            "verpart_wave_clusters": self.verpart_wave_clusters,
            "verpart_wave_fallbacks": self.verpart_wave_fallbacks,
            "refine_pairs_waved": self.refine_pairs_waved,
            "refine_wave_fallbacks": self.refine_wave_fallbacks,
        }


@dataclass
class PipelineContext:
    """Mutable state threaded through the pipeline phases.

    Attributes:
        params, report: the run's configuration and its timing/stat sink.
        dataset: the original input dataset (with sensitive terms).
        working: the dataset the clustering phases operate on (sensitive
            terms stripped; identical to ``dataset`` otherwise).
        partitions: HORPART output -- one record sequence per cluster.
        clusters: VERPART output -- one :class:`SimpleCluster` per partition.
        refined: REFINE output -- simple and/or joint clusters.
        published: the final :class:`DisassociatedDataset`.
        pool_provider: lazily returns the engine's shared worker pool (or
            ``None``); the vertical and refine phases draw from the same
            pool, so one ``anonymize`` call spawns processes at most once.
        vocabulary: optional pre-warmed interning table the horizontal
            phase encodes onto (shared across stream windows); ``None``
            interns from scratch.
    """

    params: AnonymizationParams
    report: AnonymizationReport
    dataset: TransactionDataset
    working: TransactionDataset
    partitions: Optional[list] = None
    clusters: list[SimpleCluster] = field(default_factory=list)
    refined: Optional[list[Cluster]] = None
    published: Optional[DisassociatedDataset] = None
    pool_provider: Optional[Callable[[], Optional[ProcessPoolExecutor]]] = None
    vocabulary: Optional[Vocabulary] = None

    def pool(self) -> Optional[ProcessPoolExecutor]:
        """The shared worker pool, or ``None`` when running in-process."""
        if self.pool_provider is None:
            return None
        return self.pool_provider()

    def publish(self) -> DisassociatedDataset:
        """Build (once) and return the published dataset."""
        if self.published is None:
            clusters = self.refined if self.refined is not None else list(self.clusters)
            self.published = DisassociatedDataset(
                clusters, k=self.params.k, m=self.params.m
            )
        return self.published


class Phase(Protocol):
    """One pipeline stage: a named object transforming the shared context."""

    name: str

    def run(self, ctx: PipelineContext) -> None:
        """Advance ``ctx``; phase wall time lands in ``report.<name>_seconds``."""
        ...


class Pipeline:
    """An ordered list of phases run against one :class:`PipelineContext`.

    The pipeline times every phase into ``ctx.report.<name>_seconds`` (when
    the report has such a field), so custom phases named e.g. ``"refine"``
    transparently account into the standard report.
    """

    def __init__(self, phases: Sequence[Phase]):
        self.phases: list[Phase] = list(phases)

    def __repr__(self) -> str:
        return f"Pipeline({[phase.name for phase in self.phases]})"

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Run every phase in order, timing each into the context's report.

        Before each phase the pipeline visits the ``engine.<phase>`` fault
        injection point and checks the ambient request deadline, so an
        expired deadline (or an armed test fault) aborts at a phase
        boundary with the context still internally consistent.
        """
        for phase in self.phases:
            faults.check(f"engine.{phase.name}")
            deadline.check(f"engine.{phase.name}")
            start = time.perf_counter()
            phase.run(ctx)
            elapsed = time.perf_counter() - start
            attr = f"{phase.name}_seconds"
            if hasattr(ctx.report, attr):
                setattr(ctx.report, attr, getattr(ctx.report, attr) + elapsed)
        return ctx


class HorizontalPhase:
    """HORPART: cluster the working records into bounded-size partitions."""

    name = "horizontal"

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.partitions`` with bounded-size record groups (HORPART)."""
        params, report = ctx.params, ctx.report
        if params.backend == "encoded":
            start = time.perf_counter()
            encoded = EncodedDataset.from_dataset(ctx.working, vocab=ctx.vocabulary)
            report.encode_seconds += time.perf_counter() - start
            index_parts = horizontal_partition_indices(encoded, params.max_cluster_size)
            start = time.perf_counter()
            records = list(ctx.working)
            ctx.partitions = [[records[i] for i in part] for part in index_parts]
            report.decode_seconds += time.perf_counter() - start
        else:
            ctx.partitions = horizontal_partition(ctx.working, params.max_cluster_size)
        if params.sensitive_terms:
            # Re-attach sensitive terms to the records of each partition so
            # the vertical step can place them in term chunks.
            ctx.partitions = _reattach_sensitive(
                ctx.dataset, ctx.partitions, params.sensitive_terms
            )


class VerticalPhase:
    """VERPART: split every partition into record chunks and a term chunk.

    Per-cluster calls are independent; with ``params.jobs > 1`` (encoded
    backend) they are fanned out over a process pool.  Cluster labels
    (``P0..Pn``) are assigned before submission and results are merged in
    that order, so the output is identical for every ``jobs`` value.
    """

    name = "vertical"

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.clusters`` with one published cluster per partition."""
        params = ctx.params
        partitions = ctx.partitions or []
        ctx.report.effective_jobs = effective_jobs(params.jobs)
        if params.backend == "encoded":
            pool = ctx.pool() if len(partitions) > 1 else None
            if pool is not None:
                results = _parallel_vertical(partitions, params.k, params.m, pool)
                ctx.report.verpart_wave_fallbacks += len(partitions)
            else:
                wave_stats = kernels.WaveStats()
                results = vertical_partition_wave(
                    partitions, params.k, params.m, stats=wave_stats
                )
                ctx.report.verpart_wave_clusters += wave_stats.groups
                ctx.report.verpart_wave_fallbacks += wave_stats.fallbacks
        else:
            results = [
                vertical_partition(
                    _as_dataset(part), params.k, params.m, label=f"P{index}"
                )
                for index, part in enumerate(partitions)
            ]
        clusters: list[SimpleCluster] = []
        for result in results:
            cluster = result.cluster
            if params.sensitive_terms:
                cluster = _force_sensitive_to_term_chunk(cluster, params.sensitive_terms)
            clusters.append(cluster)
        ctx.clusters = clusters


class RefinePhase:
    """REFINE: merge clusters into joint clusters with shared chunks.

    On the encoded backend the incremental driver runs (rejected-pair memo,
    shared mask cache) and merge attempts fan out over the engine's worker
    pool when ``effective_jobs > 1``; the string backend keeps the
    reference driver so backend equivalence tests cover the whole overhaul.
    The driver's counters land on the report.
    """

    name = "refine"

    def run(self, ctx: PipelineContext) -> None:
        """Fill ``ctx.refined`` with the merged clusters; release mask caches."""
        try:
            self._refine(ctx)
        finally:
            # The per-cluster term masks VERPART registered are only read
            # up to this point; publishing keeps the cluster objects (and
            # with them any cache entries) alive, so release the masks
            # here to keep resident memory bounded -- notably for the
            # streaming path, which accumulates every window's clusters.
            for cluster in ctx.clusters:
                for leaf in cluster.leaves():
                    discard_cluster_masks(leaf)

    def _refine(self, ctx: PipelineContext) -> None:
        params, report = ctx.params, ctx.report
        clusters = ctx.clusters
        encoded = params.backend == "encoded"
        if params.refine and len(clusters) > 1:
            join_cap = params.max_join_size
            if join_cap is None:
                join_cap = 8 * params.max_cluster_size
            stats = RefineStats()
            ctx.refined = refine(
                clusters,
                params.k,
                params.m,
                max_join_size=join_cap,
                excluded_terms=params.sensitive_terms,
                use_bitsets=encoded,
                memoize=encoded,
                executor=ctx.pool() if encoded and len(clusters) > 2 else None,
                stats=stats,
                arena=(
                    ctx.vocabulary.subrecord_arena()
                    if ctx.vocabulary is not None
                    else None
                ),
            )
            report.refine_passes = stats.passes
            report.refine_pairs_considered = stats.pairs_considered
            report.refine_merges_attempted = stats.merges_attempted
            report.refine_merges_applied = stats.merges_applied
            report.refine_merges_skipped_memo = stats.skipped_by_memo
            report.refine_pairs_prefiltered = stats.prefiltered
            report.refine_pairs_waved = stats.pairs_waved
            report.refine_wave_fallbacks = stats.wave_fallbacks
        else:
            ctx.refined = list(clusters)


class VerifyPhase:
    """Publish the dataset and independently re-audit it (when enabled)."""

    name = "verify"

    def run(self, ctx: PipelineContext) -> None:
        """Publish ``ctx.published`` and re-audit it when ``params.verify``."""
        published = ctx.publish()
        if ctx.params.verify:
            verify_km_anonymity(published)


#: The phases of the standard disassociation pipeline, in order.
DEFAULT_PHASES = (HorizontalPhase, VerticalPhase, RefinePhase, VerifyPhase)


class Disassociator:
    """Anonymizes transaction datasets with the disassociation transformation.

    Args:
        params: the anonymization parameters; defaults to ``k=5, m=2`` as in
            the paper's experiments.
        keep_pool: keep the worker pool (``jobs > 1``) alive across
            ``anonymize`` calls instead of shutting it down at the end of
            each one.  Batch drivers such as
            :class:`~repro.stream.ShardedPipeline` set this so every window
            inherits the already-spawned workers; callers that set it own
            the cleanup (call :meth:`close` or use the engine as a context
            manager).
        vocabulary: optional :class:`~repro.core.vocab.Vocabulary` the
            encoded horizontal phase interns onto (instead of a fresh table
            per call).  Interning is append-only and id-insensitive
            decisions break ties on the decoded string, so reuse never
            changes the output; the streaming executor hands one
            shard-lifetime vocabulary to every window of a shard.  The
            attribute is plain and may be swapped between ``anonymize``
            calls.
    """

    def __init__(
        self,
        params: Optional[AnonymizationParams] = None,
        *,
        keep_pool: bool = False,
        vocabulary: Optional[Vocabulary] = None,
    ):
        self.params = params if params is not None else AnonymizationParams()
        self.last_report: Optional[AnonymizationReport] = None
        self.keep_pool = keep_pool
        self.vocabulary = vocabulary
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_unavailable = False
        self._closed = False

    # -- worker-pool lifecycle ------------------------------------------ #
    def _shared_pool(self) -> Optional[ProcessPoolExecutor]:
        """The engine's worker pool, spawned lazily on first use.

        Returns ``None`` when the effective job count is 1 (no pool is ever
        set up) or when the platform cannot spawn worker processes.
        """
        workers = effective_jobs(self.params.jobs)
        if workers <= 1 or self._pool_unavailable:
            return None
        if self._pool is None:
            try:
                # Workers start fresh interpreters where only $REPRO_KERNELS
                # would apply; the initializer hands them the backend this
                # engine's params resolve to, so an explicit kernels choice
                # governs the fan-out too.
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=kernels.set_default,
                    initargs=(
                        kernels.resolve(self.params.kernels),
                        kernels.packed_min_rows(self.params.packed_min_rows),
                    ),
                )
            except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
                self._pool_unavailable = True
                return None
        return self._pool

    def _release_pool(self) -> None:
        """Shut down the worker pool (no-op when none was spawned).

        Internal end-of-run cleanup: unlike :meth:`close` it leaves the
        engine usable, so an engine without ``keep_pool`` can serve many
        ``anonymize`` calls (each spawning and releasing its own pool).
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (the engine is retired)."""
        return self._closed

    def close(self) -> None:
        """Retire the engine: shut down the worker pool and refuse reuse.

        Raises:
            EngineClosedError: on a double close.  The shared pool is a
                process-level resource other components (the service layer,
                the streaming executor) may be drawing from, so a second
                ``close()`` is a lifecycle bug worth surfacing rather than
                silently absorbing.
        """
        if self._closed:
            raise EngineClosedError(
                "Disassociator.close() called twice; the engine was already closed"
            )
        self._closed = True
        self._release_pool()

    def __enter__(self) -> "Disassociator":
        return self

    def __exit__(self, *exc_info) -> None:
        # Tolerate an explicit close() inside the ``with`` body: the context
        # manager guarantees cleanup, it does not insist on performing it.
        if not self._closed:
            self.close()

    def build_pipeline(self) -> Pipeline:
        """The default pipeline; override to add, drop or reorder phases."""
        return Pipeline([phase() for phase in DEFAULT_PHASES])

    def anonymize(self, dataset: TransactionDataset) -> DisassociatedDataset:
        """Run the full pipeline and return the published dataset.

        Raises:
            AnonymityViolationError: if ``params.verify`` is set and the
                produced dataset fails the independent audit (this would
                indicate a library bug, not a user error).
            EngineClosedError: if the engine was already :meth:`close`\\ d.
        """
        if self._closed:
            raise EngineClosedError(
                "Disassociator.anonymize() called on a closed engine; "
                "create a new Disassociator (or do not close this one)"
            )
        params = self.params
        report = AnonymizationReport(
            num_records=len(dataset),
            effective_jobs=effective_jobs(params.jobs),
            kernels=kernels.resolve(params.kernels),
            packed_min_rows=kernels.packed_min_rows(params.packed_min_rows),
        )
        self.last_report = report
        sensitive = params.sensitive_terms

        working = dataset
        if sensitive:
            # Sensitive terms are hidden from the clustering heuristic so
            # clusters are formed on quasi-identifying content only.
            working = TransactionDataset(
                (record - sensitive or record for record in dataset), allow_empty=False
            )

        ctx = PipelineContext(
            params=params,
            report=report,
            dataset=dataset,
            working=working,
            pool_provider=self._shared_pool,
            vocabulary=self.vocabulary if params.backend == "encoded" else None,
        )
        try:
            # One consistent kernel backend for the whole run: every lazily
            # resolving helper (checker construction, chunk assembly) sees
            # the resolved value instead of re-consulting the environment.
            with kernels.use(report.kernels, report.packed_min_rows):
                self.build_pipeline().run(ctx)
                published = ctx.publish()
        except BrokenProcessPool:
            # A crashed worker poisons the executor permanently.  Drop it
            # so the next anonymize call respawns a fresh pool instead of
            # failing forever -- long-lived keep_pool engines (the service
            # layer) would otherwise turn one worker crash into a standing
            # outage.
            self._release_pool()
            raise
        finally:
            if not self.keep_pool:
                self._release_pool()
        _fill_report(report, published)
        return published

# ------------------------------------------------------------------ #
# sensitive-term (l-diversity) support
# ------------------------------------------------------------------ #
def _reattach_sensitive(dataset, partitions, sensitive) -> list[TransactionDataset]:
    """Map partitioned records back to their original (sensitive-bearing) form.

    Records are matched on their non-sensitive projection; duplicates are
    consumed in (dataset) order so multiplicities are preserved.
    """
    pool: dict[frozenset, list[frozenset]] = {}
    for record in dataset:
        key = frozenset(record - sensitive) or frozenset(record)
        pool.setdefault(key, []).append(frozenset(record))
    # Consume each key's duplicates front-to-back (FIFO): reversing once
    # here lets the loop below pop from the end in original order.
    for candidates in pool.values():
        candidates.reverse()
    restored = []
    for partition in partitions:
        records = []
        for record in partition:
            candidates = pool.get(frozenset(record), [])
            records.append(candidates.pop() if candidates else frozenset(record))
        restored.append(TransactionDataset(records, allow_empty=False))
    return restored


def _force_sensitive_to_term_chunk(
    cluster: SimpleCluster, sensitive: frozenset
) -> SimpleCluster:
    """Move any sensitive term that slipped into a record chunk to the term chunk."""
    from repro.core.clusters import RecordChunk, TermChunk

    moved: set = set()
    new_chunks = []
    for chunk in cluster.record_chunks:
        overlap = chunk.domain & sensitive
        if not overlap:
            new_chunks.append(chunk)
            continue
        moved.update(overlap)
        reduced_domain = chunk.domain - overlap
        if reduced_domain:
            new_chunks.append(
                RecordChunk(reduced_domain, (sr - overlap for sr in chunk.subrecords))
            )
    present_sensitive = set()
    if cluster.original_records is not None:
        for record in cluster.original_records:
            present_sensitive.update(record & sensitive)
    new_term_chunk = TermChunk(cluster.term_chunk.terms | moved | present_sensitive)
    return SimpleCluster(
        size=cluster.size,
        record_chunks=new_chunks,
        term_chunk=new_term_chunk,
        label=cluster.label,
        original_records=cluster.original_records,
    )


# ------------------------------------------------------------------ #
# parallel VERPART fan-out
# ------------------------------------------------------------------ #
def _vertical_worker(payload):
    """Process-pool task: VERPART domain selection for one cluster.

    Module-level for pickling.  The selected domains and the term bitmasks
    the selection already built travel back to the parent; the parent
    materializes the cluster from its own copy of the records and registers
    the masks so REFINE inherits them instead of re-encoding every leaf
    (exactly as the serial path does).
    """
    records, k, m = payload
    record_list = [frozenset(r) for r in records]
    view = EncodedCluster(record_list)
    domains = partition_domains_fast(record_list, k, m, view=view)
    return domains, view.masks, len(record_list)


def _parallel_vertical(partitions, k: int, m: int, pool: ProcessPoolExecutor):
    """Fan independent per-cluster VERPART calls out over a process pool.

    Labels are assigned by partition index and ``Executor.map`` preserves
    submission order, so the merge is deterministic.  The pool is the
    engine's shared one (also used by REFINE) and is not shut down here.
    Falls back to the serial path when the pool breaks mid-run.
    """
    payloads = [(tuple(part), k, m) for part in partitions]
    workers = getattr(pool, "_max_workers", 1) or 1
    try:
        chunksize = max(1, len(payloads) // (workers * 4))
        domain_sets = list(pool.map(_vertical_worker, payloads, chunksize=chunksize))
    except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
        return [
            vertical_partition_fast(part, k, m, label=f"P{index}")
            for index, part in enumerate(partitions)
        ]
    results = []
    for index, (payload, outcome) in enumerate(zip(payloads, domain_sets)):
        record_list = [frozenset(r) for r in payload[0]]
        (chunk_domains, term_chunk_terms, demoted), masks, num_rows = outcome
        result = build_cluster_from_domains(
            record_list, chunk_domains, term_chunk_terms, demoted, f"P{index}"
        )
        register_cluster_masks(result.cluster, masks, num_rows)
        results.append(result)
    return results


# ------------------------------------------------------------------ #
def _as_dataset(partition) -> TransactionDataset:
    """Coerce a partition (record sequence) into a :class:`TransactionDataset`."""
    if isinstance(partition, TransactionDataset):
        return partition
    return TransactionDataset(partition, allow_empty=False)


def _fill_report(report, published: DisassociatedDataset) -> None:
    # `report` is any object with the cluster-stat fields: used for both
    # AnonymizationReport and repro.stream's ShardedReport.
    from repro.core.clusters import JointCluster

    leaves = published.simple_clusters()
    report.num_clusters = len(leaves)
    report.num_joint_clusters = sum(
        1 for cluster in published.clusters if isinstance(cluster, JointCluster)
    )
    report.num_record_chunks = sum(len(leaf.record_chunks) for leaf in leaves)
    report.num_shared_chunks = sum(
        1 for cluster in published.clusters for _ in cluster.iter_shared_chunks()
    )
    report.term_chunk_terms = sum(len(leaf.term_chunk) for leaf in leaves)


def __getattr__(name: str):
    # Lazy re-exports from repro.stream: the streaming subsystem builds on
    # this module, so a top-level import here would be circular.
    if name in ("ShardedPipeline", "StreamParams", "ShardedReport"):
        from repro import stream

        return getattr(stream, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def anonymize(
    dataset: TransactionDataset,
    k: int = 5,
    m: int = 2,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
    refine: bool = True,
    max_join_size: Optional[int] = None,
    sensitive_terms=(),
    verify: bool = True,
    backend: str = "encoded",
    jobs: int = 1,
    kernels: Optional[str] = None,
) -> DisassociatedDataset:
    """Functional one-call interface to the disassociation pipeline.

    .. deprecated:: 1.1
        Compatibility shim over :class:`repro.service.AnonymizationService`;
        the output is bit-for-bit identical, but a one-shot call rebuilds
        the warm state (worker pool, vocabulary, kernel resolution) the
        service exists to amortize.  Serving more than one request?  Hold a
        service and call :meth:`~repro.service.AnonymizationService.run`.
    """
    warnings.warn(
        "anonymize() is a one-shot compatibility shim; use "
        "repro.service.AnonymizationService for repeated requests",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported lazily: the service layer builds on this module.
    from repro.service import AnonymizationRequest, AnonymizationService, ServiceConfig

    config = ServiceConfig(
        k=k,
        m=m,
        max_cluster_size=max_cluster_size,
        refine=refine,
        max_join_size=max_join_size,
        sensitive_terms=frozenset(sensitive_terms),
        verify=verify,
        backend=backend,
        jobs=jobs,
        kernels=kernels,
    )
    with AnonymizationService(config) as service:
        return service.run(AnonymizationRequest(dataset, mode="batch")).publication

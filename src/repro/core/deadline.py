"""Cooperative request deadlines, propagated through a context variable.

A :class:`Deadline` is a wall-clock budget anchored at creation time.  The
service layer opens a :func:`scope` around each request's execution and the
pipeline layers call :func:`check` at phase boundaries (between HORPART /
VERPART / REFINE / VERIFY in the engine, and between plan / spill / window
/ merge / repair steps in the streaming executor).  A request that blows
its budget therefore aborts at the *next* boundary with
:class:`~repro.exceptions.DeadlineExceededError` rather than being killed
mid-phase -- partial per-shard checkpoints stay consistent and the engine
pool stays healthy.

The context variable makes the deadline flow through nested calls (service
-> engine -> streaming executor) without threading a parameter through
every signature, and keeps concurrent requests on different worker threads
isolated from each other.  When no scope is open, :func:`check` is a
single context-variable read and a ``None`` test.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.exceptions import DeadlineExceededError


class Deadline:
    """A wall-clock budget of ``seconds``, anchored when constructed.

    ``anchor`` (a ``time.monotonic`` instant) can be supplied to start the
    clock earlier than construction -- the service anchors a request's
    deadline at *enqueue* time so queue wait counts against the budget.
    """

    __slots__ = ("budget", "expires_at")

    def __init__(self, seconds: float, *, anchor: Optional[float] = None):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.budget = float(seconds)
        start = time.monotonic() if anchor is None else anchor
        self.expires_at = start + self.budget

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the budget is already spent."""
        return self.remaining() <= 0.0

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        overrun = -self.remaining()
        if overrun >= 0.0:
            suffix = f" at {where!r}" if where else ""
            raise DeadlineExceededError(
                f"deadline of {self.budget:g}s exceeded by {overrun:.3f}s{suffix}",
                where=where,
                budget=self.budget,
            )

    def __repr__(self) -> str:
        return f"Deadline(budget={self.budget:g}, remaining={self.remaining():.3f})"


_current: ContextVar[Optional[Deadline]] = ContextVar("repro_deadline", default=None)


def current() -> Optional[Deadline]:
    """The deadline governing the calling context, or ``None``."""
    return _current.get()


@contextmanager
def scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Install ``deadline`` for the ``with`` block (``None`` is a no-op)."""
    if deadline is None:
        yield None
        return
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def check(where: str = "") -> None:
    """Phase-boundary check: raise if the context's deadline has expired."""
    deadline = _current.get()
    if deadline is not None:
        deadline.check(where)

"""k^m-anonymity machinery for collections of sub-records.

A *chunk* in the disassociation model is a bag of sub-records (sets of
terms) over a small domain.  A chunk is **k^m-anonymous** when every
combination of at most ``m`` terms that appears in at least one sub-record
appears in at least ``k`` sub-records (Section 3 of the paper).  Likewise a
chunk is **k-anonymous** when every distinct non-empty sub-record appears at
least ``k`` times (needed by Property 1 for shared chunks).

This module implements these checks on plain collections of
``frozenset``-like records so it can be reused by

* ``VERPART`` (incrementally, while growing the term set of a chunk),
* the published-dataset verifier (:mod:`repro.core.verification`),
* the generalization / suppression baselines, and
* tests and property-based tests.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from itertools import combinations
from typing import Optional

from repro.core import kernels
from repro.exceptions import ParameterError


def validate_km_parameters(k: int, m: int) -> None:
    """Raise :class:`~repro.exceptions.ParameterError` unless ``k>=1`` and ``m>=1``."""
    if not isinstance(k, int) or k < 1:
        raise ParameterError(f"k must be a positive integer, got {k!r}")
    if not isinstance(m, int) or m < 1:
        raise ParameterError(f"m must be a positive integer, got {m!r}")


def combination_supports(records: Iterable[frozenset], m: int) -> Counter:
    """Support of every term combination of size 1..m appearing in ``records``.

    Only combinations that actually occur inside some record are counted;
    absent combinations implicitly have support 0 (which never violates
    k^m-anonymity).

    Returns:
        Counter mapping ``tuple(sorted(combo))`` -> support.
    """
    counts: Counter = Counter()
    for record in records:
        if not record:
            continue
        terms = sorted(record)
        top = min(m, len(terms))
        for size in range(1, top + 1):
            counts.update(combinations(terms, size))
    return counts


def is_km_anonymous(
    records: Sequence[frozenset], k: int, m: int, kernels_backend: Optional[str] = None
) -> bool:
    """True when every occurring combination of up to ``m`` terms has support >= k.

    Short-circuits on the first sub-``k`` combination: terms are interned
    onto row bitmasks and occurring combinations are enumerated depth-first
    (AND + popcount each), pruning every subtree rooted at a non-occurring
    combination.  Unlike :func:`find_km_violation` -- the exhaustive path,
    kept for diagnostics -- no full support Counter is ever built, so a
    violating chunk is rejected as soon as one bad combination is seen.

    On the numpy kernel backend (``kernels_backend``, resolved through
    :func:`repro.core.kernels.resolve` when ``None``) chunks of at least
    :func:`~repro.core.kernels.packed_min_rows` rows run the same DFS as
    one vectorized AND + popcount per level over a packed uint64 mask
    matrix (:func:`~repro.core.kernels.packed_km_anonymous`); the verdict
    is identical in both shapes.
    """
    validate_km_parameters(k, m)
    masks: dict = {}
    for row, record in enumerate(records):
        bit = 1 << row
        for term in record:
            masks[term] = masks.get(term, 0) | bit
    ordered = list(masks.values())
    if (
        m > 1
        and len(records) >= kernels.packed_min_rows()
        and kernels.resolve(kernels_backend) == "numpy"
    ):
        return kernels.packed_km_anonymous(ordered, len(records), k, m)
    return _masks_are_km_anonymous(ordered, -1, 0, m, k)


def _masks_are_km_anonymous(
    masks: Sequence[int], base: int, start: int, depth: int, k: int
) -> bool:
    """DFS over term masks: every occurring combination extending ``base``
    (up to ``depth`` more terms) must keep support >= k."""
    for index in range(start, len(masks)):
        intersection = base & masks[index]
        if not intersection:
            continue
        if intersection.bit_count() < k:
            return False
        if depth > 1 and not _masks_are_km_anonymous(
            masks, intersection, index + 1, depth - 1, k
        ):
            return False
    return True


def km_anonymous_batch(
    chunks: Sequence[Sequence[frozenset]],
    k: int,
    m: int,
    kernels_backend: Optional[str] = None,
) -> list[bool]:
    """Batch :func:`is_km_anonymous` verdicts for many chunks at once.

    The wave-batched counterpart used by the published-dataset auditor:
    at the paper's default ``m == 2`` every chunk's term masks are packed
    into one :class:`~repro.core.kernels.WaveBatch` matrix and all
    verdicts come out of a single AND + popcount sweep, provided the
    numpy backend is active and the *total* rows across the batch reach
    :func:`~repro.core.kernels.packed_min_rows`.  Otherwise each chunk is
    checked individually.  Verdicts are identical either way (enforced by
    the parity suite).
    """
    validate_km_parameters(k, m)
    chunks = list(chunks)
    if (
        m == 2
        and kernels.numpy_available()
        and kernels.resolve(kernels_backend) == "numpy"
        and sum(len(chunk) for chunk in chunks) >= kernels.packed_min_rows()
    ):
        wave = kernels.WaveBatch(k)
        for records in chunks:
            masks: dict = {}
            for row, record in enumerate(records):
                bit = 1 << row
                for term in record:
                    masks[term] = masks.get(term, 0) | bit
            wave.add_group(list(masks.values()), len(records))
        return wave.group_km_verdicts()
    return [
        is_km_anonymous(records, k, m, kernels_backend=kernels_backend)
        for records in chunks
    ]


def find_km_violation(
    records: Sequence[frozenset], k: int, m: int
) -> Optional[tuple[tuple, int]]:
    """Return a violating ``(itemset, support)`` pair or ``None`` if k^m-anonymous.

    A violation is a combination of at most ``m`` terms that appears in at
    least one record but in fewer than ``k`` records.
    """
    validate_km_parameters(k, m)
    counts = combination_supports(records, m)
    worst: Optional[tuple[tuple, int]] = None
    for combo, support in counts.items():
        if support < k and (worst is None or support < worst[1]):
            worst = (combo, support)
    return worst


def find_all_km_violations(records: Sequence[frozenset], k: int, m: int) -> dict:
    """All violating combinations mapped to their supports (diagnostics/tests)."""
    validate_km_parameters(k, m)
    counts = combination_supports(records, m)
    return {combo: s for combo, s in counts.items() if s < k}


def is_k_anonymous(records: Sequence[frozenset], k: int) -> bool:
    """True when every distinct non-empty sub-record occurs at least ``k`` times.

    This is plain k-anonymity over sub-records, required by Property 1 for
    shared chunks whose terms also appear in descendant record chunks.
    """
    validate_km_parameters(k, 1)
    counts = Counter(r for r in records if r)
    return all(count >= k for count in counts.values())


class BitsetChunkChecker:
    """Incrementally grow a chunk domain over term *bitmasks*.

    The bitset counterpart of :class:`IncrementalChunkChecker`: each term is
    represented by an int bitmask over the cluster's rows (bit ``i`` set when
    row ``i`` contains the term), so the support of an m-term combination is
    ``(mask_1 & ... & mask_m).bit_count()``.  Candidate evaluation only
    enumerates combinations that involve the new term, walking the accepted
    terms depth-first and pruning whole subtrees as soon as an AND becomes
    empty -- the cost is bounded by the number of *occurring* combinations,
    each checked with one AND and one popcount instead of a record scan.

    Accepts any hashable term keys (string terms or int ids); decisions are
    identical to the string checker because combination supports are.

    On the numpy kernel backend, chunks of at least
    :func:`~repro.core.kernels.packed_min_rows` rows evaluate candidates
    through :class:`~repro.core.kernels.PackedSelection`: the masks are
    packed **once** into a uint64 word matrix at construction and each DFS
    level is one vectorized AND + popcount over the whole accepted batch.
    Below the threshold (every default-sized cluster) the bigint DFS runs;
    accept/reject decisions are identical either way.

    Args:
        masks: mapping from term to its row bitmask.
        k, m: the anonymity parameters.
        share_masks: adopt ``masks`` without the defensive copy.  The
            checker never mutates it; hot callers that own the dict (and
            build one checker per selection round) pass ``True``.
        num_rows: the cluster's row count (used only to size the packed
            matrix); derived from the widest mask when omitted.
        kernels_backend: kernel-backend override, resolved through
            :func:`repro.core.kernels.resolve` when ``None``.
    """

    def __init__(
        self,
        masks,
        k: int,
        m: int,
        share_masks: bool = False,
        num_rows: Optional[int] = None,
        kernels_backend: Optional[str] = None,
    ):
        validate_km_parameters(k, m)
        self._masks = masks if share_masks else dict(masks)
        self._k = k
        self._m = m
        self._accepted: list = []          # insertion order (for DFS)
        self._accepted_set: set = set()
        self._packed = None
        if m > 1 and kernels.resolve(kernels_backend) == "numpy":
            if num_rows is None:
                num_rows = max(
                    (mask.bit_length() for mask in self._masks.values()), default=0
                )
            if num_rows >= kernels.packed_min_rows():
                self._packed = kernels.PackedSelection(self._masks, num_rows, k)

    @property
    def accepted_terms(self) -> frozenset:
        """Terms accepted into the chunk domain so far."""
        return frozenset(self._accepted_set)

    def would_remain_anonymous(self, term) -> bool:
        """Check whether adding ``term`` keeps the chunk k^m-anonymous."""
        if term in self._accepted_set:
            return True
        mask = self._masks.get(term, 0)
        if mask.bit_count() < self._k:
            return False
        if self._m == 1:
            return True
        if self._packed is not None:
            return self._packed.combinations_ok(self._packed.row(term), self._m - 1)
        return self._combinations_ok(mask, 0, self._m - 1)

    def _combinations_ok(self, base_mask: int, start: int, depth: int) -> bool:
        """DFS over accepted terms: every occurring combination that extends
        ``base_mask`` must keep support >= k.  An empty AND prunes the whole
        subtree (supersets of a non-occurring combination never occur)."""
        masks = self._masks
        accepted = self._accepted
        k = self._k
        for index in range(start, len(accepted)):
            intersection = base_mask & masks[accepted[index]]
            if not intersection:
                continue
            if intersection.bit_count() < k:
                return False
            if depth > 1 and not self._combinations_ok(intersection, index + 1, depth - 1):
                return False
        return True

    def try_add(self, term) -> bool:
        """Add ``term`` to the chunk domain if the chunk stays k^m-anonymous."""
        if not self.would_remain_anonymous(term):
            return False
        self.add(term)
        return True

    def add(self, term) -> None:
        """Add ``term`` unconditionally (caller already validated the candidate)."""
        if term not in self._accepted_set:
            self._accepted.append(term)
            self._accepted_set.add(term)
            if self._packed is not None:
                self._packed.add(term)

    def remove(self, term) -> None:
        """Remove an accepted term from the chunk domain (no-op if absent).

        Removal never breaks k^m-anonymity: the supports of the remaining
        combinations are untouched, so no rebuild or re-validation is
        needed.  REFINE's hold-back loop uses this to shrink an accepted
        shared-chunk domain incrementally instead of re-running the whole
        greedy selection.
        """
        if term in self._accepted_set:
            self._accepted_set.discard(term)
            if self._packed is not None:
                self._packed.remove(self._accepted.index(term))
            self._accepted.remove(term)

    def reset(self) -> None:
        """Discard the accepted terms and start a fresh chunk domain."""
        self._accepted.clear()
        self._accepted_set.clear()
        if self._packed is not None:
            self._packed.reset()


class IncrementalChunkChecker:
    """Incrementally grow a chunk term-set while preserving k^m-anonymity.

    ``VERPART`` repeatedly asks "if I add term *t* to the current chunk
    domain, does the projected chunk stay k^m-anonymous?".  Re-enumerating
    every combination after each candidate is wasteful; since combinations
    not involving *t* were already validated, only combinations containing
    *t* need to be checked.

    The checker is handed the cluster's records once.  ``try_add(term)``
    evaluates the candidate and, when accepted, updates the internal
    projections; ``accepted_terms`` is the chunk domain built so far.

    Args:
        records: the cluster's records (bag of term sets).
        k, m: the anonymity parameters.
    """

    def __init__(self, records: Sequence[frozenset], k: int, m: int):
        validate_km_parameters(k, m)
        self._records = [frozenset(r) for r in records]
        self._k = k
        self._m = m
        self._accepted: set = set()
        # projection of each record onto the accepted terms, kept in sync
        self._projections: list[frozenset] = [frozenset() for _ in self._records]

    @property
    def accepted_terms(self) -> frozenset:
        """Terms accepted into the chunk domain so far."""
        return frozenset(self._accepted)

    def projections(self) -> list[frozenset]:
        """Current record projections onto the accepted terms (includes empties)."""
        return list(self._projections)

    def would_remain_anonymous(self, term) -> bool:
        """Check whether adding ``term`` keeps the chunk k^m-anonymous.

        Only combinations that contain ``term`` are (re-)counted: every
        combination not involving the new term has the same support as
        before the addition, and those were already verified.
        """
        term = str(term)
        if term in self._accepted:
            return True
        counts: Counter = Counter()
        for record, projection in zip(self._records, self._projections):
            if term not in record:
                continue
            other_terms = sorted(projection)
            # combinations made of `term` plus up to m-1 already-accepted terms
            counts[(term,)] += 1
            max_extra = min(self._m - 1, len(other_terms))
            for size in range(1, max_extra + 1):
                for extra in combinations(other_terms, size):
                    counts[tuple(sorted((term,) + extra))] += 1
        return all(count >= self._k for count in counts.values())

    def try_add(self, term) -> bool:
        """Add ``term`` to the chunk domain if the chunk stays k^m-anonymous.

        Returns ``True`` when the term was accepted.
        """
        term = str(term)
        if not self.would_remain_anonymous(term):
            return False
        self._accepted.add(term)
        self._projections = [
            projection | {term} if term in record else projection
            for record, projection in zip(self._records, self._projections)
        ]
        return True

    def reset(self) -> None:
        """Discard the accepted terms and start a fresh chunk domain."""
        self._accepted.clear()
        self._projections = [frozenset() for _ in self._records]

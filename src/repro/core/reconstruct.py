"""Reconstruction of possible original datasets from a disassociated one.

A disassociated dataset hides the original records among the many datasets
that can be produced by re-combining sub-records from the record and shared
chunks and padding with term-chunk terms (paper, Section 3, "Reconstruction
of datasets").  Analysts are expected to run their tasks either directly on
the published chunks or on one or more *reconstructed* datasets whose
statistical properties approximate the original.

This module implements the reconstruction procedure used in the paper's
experiments:

* within each cluster, the sub-records of every record chunk are assigned to
  distinct record slots uniformly at random (preferring empty slots so every
  published sub-record ends up in some record and no record stays empty when
  the chunks can cover it),
* shared-chunk sub-records are assigned to slots of the member cluster that
  contributed them,
* every term-chunk term is attached to one random record of its cluster
  (its support lower bound), and
* remaining empty slots are padded with a random term-chunk term.

Reconstruction is deterministic given a ``seed``.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.core.clusters import (
    Cluster,
    DisassociatedDataset,
    JointCluster,
    SharedChunk,
    SimpleCluster,
)
from repro.core.dataset import TransactionDataset
from repro.exceptions import ReconstructionError


class Reconstructor:
    """Builds reconstructed datasets from a published disassociated dataset.

    Args:
        published: the disassociated dataset.
        seed: seed of the internal pseudo-random generator; two
            reconstructors with the same seed produce identical datasets.
    """

    def __init__(self, published: DisassociatedDataset, seed: Optional[int] = None):
        self._published = published
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def reconstruct(self) -> TransactionDataset:
        """Produce one reconstructed dataset (a possible original dataset)."""
        records: list[set] = []
        for cluster in self._published.clusters:
            records.extend(self._reconstruct_cluster(cluster))
        non_empty = [frozenset(r) for r in records if r]
        return TransactionDataset(non_empty, allow_empty=False)

    def reconstruct_many(self, count: int) -> list[TransactionDataset]:
        """Produce ``count`` independent reconstructions (different randomness)."""
        return [self.reconstruct() for _ in range(count)]

    def averaged_supports(self, itemsets: Iterable[Iterable], count: int = 5) -> dict:
        """Average the supports of ``itemsets`` over ``count`` reconstructions.

        The paper (Figure 7d) shows that averaging over multiple
        reconstructions sharpens support estimates for mid-frequency
        combinations.
        """
        itemsets = [frozenset(str(t) for t in itemset) for itemset in itemsets]
        totals: Counter = Counter()
        for _ in range(count):
            reconstruction = self.reconstruct()
            for itemset in itemsets:
                totals[itemset] += reconstruction.support(itemset)
        return {itemset: totals[itemset] / count for itemset in itemsets}

    # ------------------------------------------------------------------ #
    # cluster-level reconstruction
    # ------------------------------------------------------------------ #
    def _reconstruct_cluster(self, cluster: Cluster) -> list[set]:
        if isinstance(cluster, JointCluster):
            return self._reconstruct_joint(cluster)
        return self._reconstruct_simple(cluster)

    def _reconstruct_simple(self, cluster: SimpleCluster) -> list[set]:
        slots: list[set] = [set() for _ in range(cluster.size)]
        for chunk in cluster.record_chunks:
            self._scatter_subrecords(chunk.subrecords, slots)
        self._scatter_term_chunk(cluster.term_chunk.terms, slots)
        self._pad_empty_slots(slots, cluster.term_chunk.terms)
        return slots

    def _reconstruct_joint(self, cluster: JointCluster) -> list[set]:
        leaves = cluster.leaves()
        slots_by_label: dict[str, list[set]] = {}
        all_slots: list[set] = []
        for leaf in leaves:
            leaf_slots = [set() for _ in range(leaf.size)]
            slots_by_label[leaf.label] = leaf_slots
            all_slots.extend(leaf_slots)
            for chunk in leaf.record_chunks:
                self._scatter_subrecords(chunk.subrecords, leaf_slots)

        for shared in cluster.iter_shared_chunks():
            self._scatter_shared_chunk(shared, slots_by_label, all_slots)

        for leaf in leaves:
            leaf_slots = slots_by_label[leaf.label]
            self._scatter_term_chunk(leaf.term_chunk.terms, leaf_slots)
            self._pad_empty_slots(leaf_slots, leaf.term_chunk.terms)
        # A joint cluster may still have empty slots if some leaf has an
        # empty term chunk; pad those from the joint cluster's term pool.
        joint_terms = cluster.term_chunk_terms() or cluster.domain()
        self._pad_empty_slots(all_slots, joint_terms)
        return all_slots

    # ------------------------------------------------------------------ #
    # slot assignment primitives
    # ------------------------------------------------------------------ #
    def _scatter_subrecords(self, subrecords: Sequence[frozenset], slots: list[set]) -> None:
        """Assign each sub-record to a distinct slot, preferring empty slots."""
        if not subrecords:
            return
        if len(subrecords) > len(slots):
            raise ReconstructionError(
                f"chunk has {len(subrecords)} sub-records but the cluster "
                f"declares only {len(slots)} records"
            )
        empty = [i for i, slot in enumerate(slots) if not slot]
        filled = [i for i, slot in enumerate(slots) if slot]
        self._rng.shuffle(empty)
        self._rng.shuffle(filled)
        order = empty + filled
        targets = order[: len(subrecords)]
        shuffled = list(subrecords)
        self._rng.shuffle(shuffled)
        for index, subrecord in zip(targets, shuffled):
            slots[index].update(subrecord)

    def _scatter_shared_chunk(
        self,
        shared: SharedChunk,
        slots_by_label: dict[str, list[set]],
        all_slots: list[set],
    ) -> None:
        """Assign shared-chunk sub-records to slots of their contributing leaf."""
        contributions = shared.contributions
        if contributions and sum(contributions.values()) == len(shared.subrecords):
            cursor = 0
            for label, count in contributions.items():
                batch = shared.subrecords[cursor : cursor + count]
                cursor += count
                target = slots_by_label.get(label)
                if target is None or len(batch) > len(target):
                    # fall back to joint-wide assignment for this batch
                    self._scatter_subrecords(batch, all_slots)
                else:
                    self._scatter_subrecords(batch, target)
        else:
            self._scatter_subrecords(shared.subrecords, all_slots)

    def _scatter_term_chunk(self, terms: Iterable[str], slots: list[set]) -> None:
        """Attach each term-chunk term to one random record of the cluster."""
        if not slots:
            return
        for term in sorted(terms):
            slot = self._rng.choice(slots)
            slot.add(term)

    def _pad_empty_slots(self, slots: list[set], term_pool: Iterable[str]) -> None:
        """Give every still-empty slot one random term so no record is empty."""
        pool = sorted(term_pool)
        if not pool:
            return
        for slot in slots:
            if not slot:
                slot.add(self._rng.choice(pool))


def reconstruct(published: DisassociatedDataset, seed: Optional[int] = None) -> TransactionDataset:
    """Convenience wrapper: one reconstruction of ``published`` with ``seed``."""
    return Reconstructor(published, seed=seed).reconstruct()

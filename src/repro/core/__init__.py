"""Core disassociation machinery: the paper's primary contribution.

Sub-modules:

* :mod:`repro.core.dataset` -- transactional dataset substrate.
* :mod:`repro.core.anonymity` -- k^m-anonymity checks.
* :mod:`repro.core.clusters` -- published-data model (chunks, clusters).
* :mod:`repro.core.horizontal` -- Algorithm HORPART.
* :mod:`repro.core.vertical` -- Algorithm VERPART + Lemma-2 enforcement.
* :mod:`repro.core.refine` -- Algorithm REFINE (joint clusters, Equation 1).
* :mod:`repro.core.verification` -- independent audit of published data.
* :mod:`repro.core.reconstruct` -- reconstruction of possible originals.
* :mod:`repro.core.engine` -- the end-to-end :class:`Disassociator`.
"""

from repro.core.anonymity import (
    combination_supports,
    find_all_km_violations,
    find_km_violation,
    is_k_anonymous,
    is_km_anonymous,
)
from repro.core.clusters import (
    DisassociatedDataset,
    JointCluster,
    RecordChunk,
    SharedChunk,
    SimpleCluster,
    TermChunk,
)
from repro.core.dataset import DatasetStats, TransactionDataset, jaccard_similarity
from repro.core.engine import (
    AnonymizationParams,
    AnonymizationReport,
    Disassociator,
    HorizontalPhase,
    Pipeline,
    PipelineContext,
    RefinePhase,
    VerifyPhase,
    VerticalPhase,
    anonymize,
)
from repro.core.horizontal import horizontal_partition, horizontal_partition_indices
from repro.core.reconstruct import Reconstructor, reconstruct
from repro.core.refine import refine
from repro.core.verification import AuditReport, audit, verify_km_anonymity
from repro.core.vertical import satisfies_lemma2, vertical_partition, vertical_partition_fast
from repro.core.vocab import EncodedCluster, EncodedDataset, Vocabulary

__all__ = [
    "AnonymizationParams",
    "AnonymizationReport",
    "AuditReport",
    "DatasetStats",
    "DisassociatedDataset",
    "Disassociator",
    "JointCluster",
    "RecordChunk",
    "Reconstructor",
    "SharedChunk",
    "SimpleCluster",
    "TermChunk",
    "TransactionDataset",
    "EncodedCluster",
    "EncodedDataset",
    "HorizontalPhase",
    "Pipeline",
    "PipelineContext",
    "RefinePhase",
    "VerifyPhase",
    "VerticalPhase",
    "Vocabulary",
    "anonymize",
    "audit",
    "combination_supports",
    "find_all_km_violations",
    "find_km_violation",
    "horizontal_partition",
    "horizontal_partition_indices",
    "is_k_anonymous",
    "is_km_anonymous",
    "jaccard_similarity",
    "reconstruct",
    "Reconstructor",
    "refine",
    "satisfies_lemma2",
    "verify_km_anonymity",
    "vertical_partition",
    "vertical_partition_fast",
]

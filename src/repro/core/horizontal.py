"""Horizontal partitioning (Algorithm HORPART, paper Section 4).

HORPART groups similar records together into clusters of bounded size so
that vertical partitioning can be applied to each cluster independently.
The heuristic recursively splits the dataset on its most frequent
not-yet-used term: records containing the term go to one side, the rest to
the other.  Recursion stops as soon as a part is smaller than
``max_cluster_size`` (or no unused term remains).

The procedure is equivalent to a quicksort-like recursion and runs in
O(|D|^2) in the worst case, but is effectively linearithmic on realistic
data (each split touches every record once and the recursion depth is
bounded by the number of distinct frequent terms).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from typing import Optional

from repro.core import kernels
from repro.core.dataset import TransactionDataset
from repro.core.vocab import EncodedDataset
from repro.exceptions import ParameterError

#: Default maximum number of records per cluster.  Small clusters keep the
#: vertical-partitioning cost bounded; the paper regulates cluster size for
#: the same reason (Section 4, complexity discussion).
DEFAULT_MAX_CLUSTER_SIZE = 30


def horizontal_partition(
    dataset: TransactionDataset,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
) -> list[TransactionDataset]:
    """Partition ``dataset`` into clusters of at most ``max_cluster_size`` records.

    This is Algorithm HORPART.  The split term at each level is the most
    frequent term among those not already used on the path from the root
    (the ``ignore`` set of the paper); records containing the split term go
    to the left part, the rest to the right part.

    Args:
        dataset: the original transaction dataset.
        max_cluster_size: the maximum number of records per cluster; must be
            at least 2.

    Returns:
        List of clusters (as :class:`TransactionDataset`); their
        concatenation is a permutation of the input records.  An empty
        input yields an empty list.
    """
    if max_cluster_size < 2:
        raise ParameterError(
            f"max_cluster_size must be at least 2, got {max_cluster_size}"
        )
    if len(dataset) == 0:
        return []

    clusters: list[TransactionDataset] = []
    # Explicit stack instead of recursion: real datasets can produce deep
    # partitioning trees (one level per frequent term) and Python's default
    # recursion limit is easy to hit.
    stack: list[tuple[TransactionDataset, frozenset]] = [(dataset, frozenset())]
    while stack:
        part, ignore = stack.pop()
        if len(part) == 0:
            continue
        if len(part) < max_cluster_size:
            clusters.append(part)
            continue
        split_term = part.most_frequent_term(exclude=ignore)
        if split_term is None:
            # Every term was already used for splitting on this path.  The
            # remaining records are indistinguishable for the heuristic, so
            # we cut them into chunks of max_cluster_size records.
            clusters.extend(_chop(part, max_cluster_size))
            continue
        with_term, without_term = part.split_on_term(split_term)
        if len(with_term) == 0 or len(without_term) == 0:
            # The split term appears in all (or none) of the records; using
            # it again would loop forever, so just mark it ignored and retry.
            stack.append((part, ignore | {split_term}))
            continue
        stack.append((without_term, ignore))
        stack.append((with_term, ignore | {split_term}))
    return clusters


def horizontal_partition_indices(
    encoded: EncodedDataset,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
    kernels_backend: Optional[str] = None,
) -> list[list[int]]:
    """HORPART over an :class:`~repro.core.vocab.EncodedDataset`.

    Identical split decisions and output ordering as
    :func:`horizontal_partition`, with two structural optimizations over
    the record-at-a-time formulation:

    * **zero-recount splits** -- every tree node carries the exact term
      supports of its part, derived from its parent by a split delta (the
      smaller side is counted while it is being partitioned, the larger
      side is obtained by subtraction), so ``most_frequent_term`` never
      rescans the part's records;
    * **single-allocation split** -- the records live in one shared index
      array; a split is a stable in-place partition of the node's range
      through one scratch buffer allocated once per call, instead of two
      fresh per-side lists at every node.

    With the numpy kernel backend (``kernels_backend``, resolved through
    :func:`repro.core.kernels.resolve` when ``None``) the same recursion
    runs over a contiguous int32 id buffer: node supports are one gather +
    ``bincount`` (:class:`~repro.core.kernels.RecordIdBuffer`), the split
    delta is an array subtraction, and the stable partition is a boolean
    take from per-term posting arrays.  Split decisions, tie-breaks and
    cluster emission order are identical in both shapes.

    Returns:
        List of clusters as index lists; their concatenation is a
        permutation of ``range(len(encoded))``.
    """
    if max_cluster_size < 2:
        raise ParameterError(
            f"max_cluster_size must be at least 2, got {max_cluster_size}"
        )
    total = len(encoded)
    if total == 0:
        return []
    if kernels.resolve(kernels_backend) == "numpy":
        return _partition_indices_numpy(encoded, max_cluster_size)

    records = encoded.records
    decode = encoded.vocab.decode
    indices = list(range(total))
    scratch = [0] * total

    clusters: list[list[int]] = []
    # Node = (lo, hi, ignore, counts); counts is the part's exact term
    # supports, or None when the node is small enough to be emitted (or is
    # the root, which is counted on first use).
    stack: list[tuple[int, int, frozenset, Optional[dict]]] = [
        (0, total, frozenset(), None)
    ]
    while stack:
        lo, hi, ignore, counts = stack.pop()
        size = hi - lo
        if size == 0:
            continue
        if size < max_cluster_size:
            clusters.append(indices[lo:hi])
            continue
        if counts is None:
            counts = {}
            for position in range(lo, hi):
                for tid in records[indices[position]]:
                    counts[tid] = counts.get(tid, 0) + 1
        split_term = _most_frequent(counts, ignore, decode)
        if split_term is None:
            clusters.extend(
                indices[start : min(start + max_cluster_size, hi)]
                for start in range(lo, hi, max_cluster_size)
            )
            continue
        num_with = counts[split_term]
        if num_with == size:
            # The split term appears in all of the records; using it again
            # would loop forever, so just mark it ignored and retry.
            stack.append((lo, hi, ignore | {split_term}, counts))
            continue

        # Stable in-place partition of [lo, hi): with-side first (exactly
        # `num_with` records, known from the maintained supports), then the
        # without-side, both in original order.  Membership is a direct
        # record test (no inverted index needed).  The smaller side's term
        # supports are counted during the same sweep; the larger side's are
        # derived by subtracting the delta from the node's counts.
        # Children below the cluster-size bound are emitted without ever
        # consulting their supports, so when both sides end up below it the
        # counting sweep is skipped entirely.
        num_without = size - num_with
        counts_needed = (
            num_with >= max_cluster_size or num_without >= max_cluster_size
        )
        count_with_side = counts_needed and num_with <= num_without
        count_without_side = counts_needed and not count_with_side
        side_counts: Counter = Counter()
        count_record = side_counts.update  # C-level element counting
        write_with = lo
        write_without = lo + num_with
        for position in range(lo, hi):
            index = indices[position]
            if split_term in records[index]:
                scratch[write_with] = index
                write_with += 1
                if count_with_side:
                    count_record(records[index])
            else:
                scratch[write_without] = index
                write_without += 1
                if count_without_side:
                    count_record(records[index])
        indices[lo:hi] = scratch[lo:hi]

        if counts_needed:
            with_counts, without_counts = _split_counts(
                counts, side_counts, count_with_side
            )
            if num_without < max_cluster_size:
                without_counts = None
            if num_with < max_cluster_size:
                with_counts = None
        else:
            with_counts = without_counts = None
        stack.append((lo + num_with, hi, ignore, without_counts))
        stack.append((lo, lo + num_with, ignore | {split_term}, with_counts))
    return clusters


def _partition_indices_numpy(
    encoded: EncodedDataset, max_cluster_size: int
) -> list[list[int]]:
    """The numpy shape of :func:`horizontal_partition_indices`.

    Same recursion, same stack discipline, same lazily-counted root and
    smaller-side/subtraction delta -- but node supports are dense int64
    arrays produced by :meth:`~repro.core.kernels.RecordIdBuffer.counts`
    (one gather + ``bincount`` per counted side) and the stable in-place
    partition becomes a boolean take against the split term's posting
    array.  A term absent from a part simply has count 0 in the array,
    which :func:`_most_frequent_array` excludes exactly like the dict
    shape's missing keys.
    """
    np = kernels.np
    # Compact ids: under shard-lifetime vocabulary reuse a window can hold
    # large original ids, and without compaction every per-node count
    # array would scale with the shard's cumulative vocabulary.
    buffer = kernels.RecordIdBuffer(encoded.records, compact=True)
    total = buffer.num_records
    vocab_decode = encoded.vocab.decode
    term_ids = buffer.term_ids
    if term_ids is None:
        decode = vocab_decode
    else:
        def decode(compact_id, _term_ids=term_ids):
            return vocab_decode(int(_term_ids[compact_id]))
    member = np.zeros(total, dtype=bool)

    clusters: list[list[int]] = []
    # Node = (indices, ignore, counts); counts is the part's exact term
    # supports (dense array), or None when the node is small enough to be
    # emitted (or is the root, which is counted on first use).
    stack: list[tuple] = [(np.arange(total, dtype=np.int64), frozenset(), None)]
    while stack:
        indices, ignore, counts = stack.pop()
        size = len(indices)
        if size == 0:
            continue
        if size < max_cluster_size:
            clusters.append(indices.tolist())
            continue
        if counts is None:
            # The root covers the whole buffer: one plain bincount, no gather.
            counts = buffer.counts(None if size == total else indices)
        split_term = _most_frequent_array(counts, ignore, decode)
        if split_term is None:
            clusters.extend(
                indices[start : start + max_cluster_size].tolist()
                for start in range(0, size, max_cluster_size)
            )
            continue
        num_with = int(counts[split_term])
        if num_with == size:
            # The split term appears in all of the records; using it again
            # would loop forever, so just mark it ignored and retry.
            stack.append((indices, ignore | {split_term}, counts))
            continue

        posting = buffer.posting(split_term)
        member[posting] = True
        mask = member[indices]
        member[posting] = False
        with_indices = indices[mask]
        without_indices = indices[~mask]

        num_without = size - num_with
        counts_needed = (
            num_with >= max_cluster_size or num_without >= max_cluster_size
        )
        if counts_needed:
            if num_with <= num_without:
                side = buffer.counts(with_indices)
                with_counts, without_counts = side, counts - side
            else:
                side = buffer.counts(without_indices)
                with_counts, without_counts = counts - side, side
            if num_without < max_cluster_size:
                without_counts = None
            if num_with < max_cluster_size:
                with_counts = None
        else:
            with_counts = without_counts = None
        stack.append((without_indices, ignore, without_counts))
        stack.append((with_indices, ignore | {split_term}, with_counts))
    return clusters


def _most_frequent_array(counts, exclude: frozenset, decode) -> Optional[int]:
    """Most frequent term id in a dense supports array (ties on the string).

    The array shape of :func:`_most_frequent`: zero-count entries stand in
    for the dict shape's absent keys and are never candidates (a part's
    present terms all have support >= 1), so both shapes consider exactly
    the same ``(support, term)`` pairs.
    """
    if exclude:
        counts = counts.copy()
        counts[list(exclude)] = 0
    if not len(counts):
        return None
    best = int(counts.max())
    if best <= 0:
        return None
    candidates = kernels.np.nonzero(counts == best)[0]
    if len(candidates) == 1:
        return int(candidates[0])
    return min((int(tid) for tid in candidates), key=decode)


def _most_frequent(counts: dict, exclude: frozenset, decode) -> Optional[int]:
    """Most frequent term id in a supports dict (ties broken on the string).

    Mirrors :meth:`EncodedDataset.most_frequent_in` exactly, minus the
    record scan: the supports are already maintained by the split deltas.
    """
    best_support = -1
    candidates: list[int] = []
    for tid, count in counts.items():
        if tid in exclude:
            continue
        if count > best_support:
            best_support = count
            candidates = [tid]
        elif count == best_support:
            candidates.append(tid)
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    return min(candidates, key=decode)


def _split_counts(
    counts: dict, side_counts: dict, counted_with_side: bool
) -> tuple[dict, dict]:
    """Derive both children's supports from the parent's and one side's.

    The uncounted side is ``parent - counted side`` with zero entries
    stripped (a zero-support term is simply absent from a part).
    """
    remainder: dict = {}
    get = side_counts.get
    for tid, count in counts.items():
        rest = count - get(tid, 0)
        if rest:
            remainder[tid] = rest
    if counted_with_side:
        return side_counts, remainder
    return remainder, side_counts


def _chop(dataset: TransactionDataset, max_cluster_size: int) -> list[TransactionDataset]:
    """Cut a dataset into consecutive pieces of at most ``max_cluster_size`` records."""
    pieces = []
    records = list(dataset)
    for start in range(0, len(records), max_cluster_size):
        pieces.append(TransactionDataset(records[start : start + max_cluster_size]))
    return pieces


def partition_sizes(clusters: Sequence[TransactionDataset]) -> list[int]:
    """Sizes of the produced clusters (convenience for tests and diagnostics)."""
    return [len(cluster) for cluster in clusters]

"""Horizontal partitioning (Algorithm HORPART, paper Section 4).

HORPART groups similar records together into clusters of bounded size so
that vertical partitioning can be applied to each cluster independently.
The heuristic recursively splits the dataset on its most frequent
not-yet-used term: records containing the term go to one side, the rest to
the other.  Recursion stops as soon as a part is smaller than
``max_cluster_size`` (or no unused term remains).

The procedure is equivalent to a quicksort-like recursion and runs in
O(|D|^2) in the worst case, but is effectively linearithmic on realistic
data (each split touches every record once and the recursion depth is
bounded by the number of distinct frequent terms).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.dataset import TransactionDataset
from repro.core.vocab import EncodedDataset
from repro.exceptions import ParameterError

#: Default maximum number of records per cluster.  Small clusters keep the
#: vertical-partitioning cost bounded; the paper regulates cluster size for
#: the same reason (Section 4, complexity discussion).
DEFAULT_MAX_CLUSTER_SIZE = 30


def horizontal_partition(
    dataset: TransactionDataset,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
) -> list[TransactionDataset]:
    """Partition ``dataset`` into clusters of at most ``max_cluster_size`` records.

    This is Algorithm HORPART.  The split term at each level is the most
    frequent term among those not already used on the path from the root
    (the ``ignore`` set of the paper); records containing the split term go
    to the left part, the rest to the right part.

    Args:
        dataset: the original transaction dataset.
        max_cluster_size: the maximum number of records per cluster; must be
            at least 2.

    Returns:
        List of clusters (as :class:`TransactionDataset`); their
        concatenation is a permutation of the input records.  An empty
        input yields an empty list.
    """
    if max_cluster_size < 2:
        raise ParameterError(
            f"max_cluster_size must be at least 2, got {max_cluster_size}"
        )
    if len(dataset) == 0:
        return []

    clusters: list[TransactionDataset] = []
    # Explicit stack instead of recursion: real datasets can produce deep
    # partitioning trees (one level per frequent term) and Python's default
    # recursion limit is easy to hit.
    stack: list[tuple[TransactionDataset, frozenset]] = [(dataset, frozenset())]
    while stack:
        part, ignore = stack.pop()
        if len(part) == 0:
            continue
        if len(part) < max_cluster_size:
            clusters.append(part)
            continue
        split_term = part.most_frequent_term(exclude=ignore)
        if split_term is None:
            # Every term was already used for splitting on this path.  The
            # remaining records are indistinguishable for the heuristic, so
            # we cut them into chunks of max_cluster_size records.
            clusters.extend(_chop(part, max_cluster_size))
            continue
        with_term, without_term = part.split_on_term(split_term)
        if len(with_term) == 0 or len(without_term) == 0:
            # The split term appears in all (or none) of the records; using
            # it again would loop forever, so just mark it ignored and retry.
            stack.append((part, ignore | {split_term}))
            continue
        stack.append((without_term, ignore))
        stack.append((with_term, ignore | {split_term}))
    return clusters


def horizontal_partition_indices(
    encoded: EncodedDataset,
    max_cluster_size: int = DEFAULT_MAX_CLUSTER_SIZE,
) -> list[list[int]]:
    """HORPART over an :class:`~repro.core.vocab.EncodedDataset`.

    Identical split decisions and output ordering as
    :func:`horizontal_partition`, but each part is a list of *record
    indices* into the encoded dataset: splitting is a posting-set
    membership test per record instead of re-materializing
    ``TransactionDataset`` copies, and supports are counted over small ints.

    Returns:
        List of clusters as index lists; their concatenation is a
        permutation of ``range(len(encoded))``.
    """
    if max_cluster_size < 2:
        raise ParameterError(
            f"max_cluster_size must be at least 2, got {max_cluster_size}"
        )
    if len(encoded) == 0:
        return []

    clusters: list[list[int]] = []
    stack: list[tuple[list[int], frozenset]] = [
        (list(range(len(encoded))), frozenset())
    ]
    while stack:
        part, ignore = stack.pop()
        if not part:
            continue
        if len(part) < max_cluster_size:
            clusters.append(part)
            continue
        split_term = encoded.most_frequent_in(part, exclude=ignore)
        if split_term is None:
            clusters.extend(
                part[start : start + max_cluster_size]
                for start in range(0, len(part), max_cluster_size)
            )
            continue
        with_term, without_term = encoded.split_indices(part, split_term)
        if not with_term or not without_term:
            stack.append((part, ignore | {split_term}))
            continue
        stack.append((without_term, ignore))
        stack.append((with_term, ignore | {split_term}))
    return clusters


def _chop(dataset: TransactionDataset, max_cluster_size: int) -> list[TransactionDataset]:
    """Cut a dataset into consecutive pieces of at most ``max_cluster_size`` records."""
    pieces = []
    records = list(dataset)
    for start in range(0, len(records), max_cluster_size):
        pieces.append(TransactionDataset(records[start : start + max_cluster_size]))
    return pieces


def partition_sizes(clusters: Sequence[TransactionDataset]) -> list[int]:
    """Sizes of the produced clusters (convenience for tests and diagnostics)."""
    return [len(cluster) for cluster in clusters]

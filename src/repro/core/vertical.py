"""Vertical partitioning (Algorithm VERPART, paper Section 4) and the
Lemma-2 validity enforcement (paper Section 5).

VERPART takes one cluster (a small bag of records) and splits its term
domain into

* record-chunk domains ``T_1 .. T_v`` such that every projected chunk is
  k^m-anonymous, and
* the term-chunk domain ``T_T`` holding all terms with cluster support
  below ``k`` (and any terms demoted by the Lemma-2 check).

The greedy strategy follows the paper: terms are considered in decreasing
support order; a term joins the current chunk domain if the projected chunk
stays k^m-anonymous, otherwise it is left for a later chunk.

Lemma 2 requires that the published cluster admits at least one *valid*
reconstruction of its declared size for every m-term combination; this is
guaranteed when the term chunk is non-empty or when the total number of
published sub-records is at least ``size + k*(h-1)`` with
``h = min(m, v)``.  When the condition fails, the least frequent
record-chunk terms are demoted to the term chunk until it holds (the paper
notes this fallback is always feasible).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.core import kernels
from repro.core.anonymity import (
    BitsetChunkChecker,
    IncrementalChunkChecker,
    validate_km_parameters,
)
from repro.core.clusters import RecordChunk, SimpleCluster, TermChunk, _as_record
from repro.core.dataset import TransactionDataset
from repro.core.vocab import EncodedCluster, register_cluster_masks


@dataclass
class VerticalPartitionResult:
    """Outcome of vertically partitioning one cluster.

    Attributes:
        cluster: the published :class:`SimpleCluster`.
        demoted_terms: terms moved from record chunks to the term chunk by
            the Lemma-2 enforcement (useful for diagnostics and ablations).
    """

    cluster: SimpleCluster
    demoted_terms: frozenset = field(default_factory=frozenset)


def vertical_partition(
    records: TransactionDataset,
    k: int,
    m: int,
    label: str = "P",
    enforce_lemma2: bool = True,
) -> VerticalPartitionResult:
    """Vertically partition one cluster into record chunks and a term chunk.

    Args:
        records: the cluster's records (output of HORPART).
        k, m: anonymity parameters.
        label: stable cluster label used downstream (refining, reconstruction).
        enforce_lemma2: when ``True`` (default) the Lemma-2 sub-record bound
            is enforced by demoting terms if necessary.  Disabling it is
            only useful for ablation experiments and tests that reproduce
            Example 1 of the paper.

    Returns:
        A :class:`VerticalPartitionResult` whose ``cluster`` is
        k^m-anonymous (and Lemma-2 valid unless disabled).
    """
    validate_km_parameters(k, m)
    record_list = [frozenset(r) for r in records]
    supports = records.term_supports()

    # Step 1: terms with support < k can never appear in a k^m-anonymous
    # record chunk (their singleton combination already violates the bound),
    # so they go straight to the term chunk.
    term_chunk_terms = {t for t, s in supports.items() if s < k}
    remaining = [t for t in records.terms_by_support(descending=True) if t not in term_chunk_terms]

    # Step 2: greedily grow chunk domains.
    chunk_domains: list[frozenset] = []
    while remaining:
        checker = IncrementalChunkChecker(record_list, k, m)
        accepted: list[str] = []
        skipped: list[str] = []
        for term in remaining:
            if checker.try_add(term):
                accepted.append(term)
            else:
                skipped.append(term)
        if not accepted:
            # Cannot happen per the paper's argument (a singleton chunk of a
            # term with support >= k is always k^m-anonymous), but guard
            # against pathological inputs: demote everything left.
            term_chunk_terms.update(remaining)
            break
        chunk_domains.append(frozenset(accepted))
        remaining = skipped

    demoted: set = set()
    if enforce_lemma2:
        chunk_domains, extra = _enforce_lemma2(
            record_list, chunk_domains, term_chunk_terms, supports, k, m, len(record_list)
        )
        demoted = extra
        term_chunk_terms.update(extra)

    record_chunks = [
        _project_chunk(record_list, domain) for domain in chunk_domains
    ]
    # drop chunks that became empty after demotions
    record_chunks = [chunk for chunk in record_chunks if len(chunk) > 0 and chunk.domain]

    cluster = SimpleCluster(
        size=len(record_list),
        record_chunks=record_chunks,
        term_chunk=TermChunk(term_chunk_terms),
        label=label,
        original_records=record_list,
    )
    return VerticalPartitionResult(cluster=cluster, demoted_terms=frozenset(demoted))


def partition_domains_fast(
    record_list: Sequence[frozenset],
    k: int,
    m: int,
    enforce_lemma2: bool = True,
    view: Optional[EncodedCluster] = None,
) -> tuple[list[frozenset], set, set]:
    """Bitset VERPART domain selection: the compute kernel of the phase.

    The cluster is interned onto an :class:`~repro.core.vocab.EncodedCluster`
    (term -> row bitmask), combination supports become AND + popcount, and
    the Lemma-2 demotion loop updates only the affected chunk domain instead
    of rescanning every record.  Greedy decisions and tie-breaks mirror the
    reference implementation exactly, so both produce the same domains.

    Split out from :func:`vertical_partition_fast` so parallel workers can
    ship back only ``(chunk_domains, term_chunk_terms, demoted)`` -- a few
    small term sets -- instead of fully materialized clusters.

    Returns:
        ``(chunk_domains, term_chunk_terms, demoted_terms)``.
    """
    if view is None:
        view = EncodedCluster(record_list)
    masks = view.masks
    supports = {term: mask.bit_count() for term, mask in masks.items()}

    term_chunk_terms = {t for t, s in supports.items() if s < k}
    remaining = sorted(
        (t for t in supports if t not in term_chunk_terms),
        key=lambda t: (-supports[t], t),
    )

    chunk_domains: list[frozenset] = []
    checker: Optional[BitsetChunkChecker] = None
    while remaining:
        if checker is None:
            checker = BitsetChunkChecker(
                masks, k, m, share_masks=True, num_rows=len(record_list)
            )
        else:
            # Only the accepted set changes between rounds; reuse keeps the
            # packed mask matrix (numpy backend) built once per cluster.
            checker.reset()
        accepted: list[str] = []
        skipped: list[str] = []
        for term in remaining:
            if checker.try_add(term):
                accepted.append(term)
            else:
                skipped.append(term)
        if not accepted:
            term_chunk_terms.update(remaining)
            break
        chunk_domains.append(frozenset(accepted))
        remaining = skipped

    demoted: set = set()
    if enforce_lemma2 and not term_chunk_terms:
        coverage = _MaskCoverage(masks, chunk_domains)
        demoted = demote_for_lemma2(coverage, supports, k, m, len(record_list))
        term_chunk_terms.update(demoted)
        chunk_domains = coverage.domains_frozen()
    else:
        chunk_domains = [d for d in chunk_domains if d]
    return chunk_domains, term_chunk_terms, demoted


def build_cluster_from_domains(
    record_list: Sequence[frozenset],
    chunk_domains: Sequence[frozenset],
    term_chunk_terms: set,
    demoted: set,
    label: str,
) -> VerticalPartitionResult:
    """Materialize a :class:`SimpleCluster` from selected chunk domains."""
    record_chunks = [_project_chunk(record_list, domain) for domain in chunk_domains]
    record_chunks = [chunk for chunk in record_chunks if len(chunk) > 0 and chunk.domain]
    cluster = SimpleCluster._from_normalized(
        size=len(record_list),
        record_chunks=record_chunks,
        term_chunk=TermChunk(term_chunk_terms),
        label=label,
        original_records=list(record_list),
    )
    return VerticalPartitionResult(cluster=cluster, demoted_terms=frozenset(demoted))


def vertical_partition_fast(
    records,
    k: int,
    m: int,
    label: str = "P",
    enforce_lemma2: bool = True,
) -> VerticalPartitionResult:
    """Bitset-accelerated VERPART (identical output to :func:`vertical_partition`).

    Args:
        records: the cluster's records (any iterable of term sets).
        k, m: anonymity parameters.
        label: stable cluster label used downstream.
        enforce_lemma2: when ``True`` (default) enforce the Lemma-2 bound.
    """
    validate_km_parameters(k, m)
    record_list = [_as_record(r) for r in records]
    view = EncodedCluster(record_list)
    chunk_domains, term_chunk_terms, demoted = partition_domains_fast(
        record_list, k, m, enforce_lemma2=enforce_lemma2, view=view
    )
    result = build_cluster_from_domains(
        record_list, chunk_domains, term_chunk_terms, demoted, label
    )
    # Hand the term bitmasks this phase already built to downstream
    # consumers (REFINE's shared-chunk builder) through the weak per-cluster
    # cache, so the leaf is never re-encoded.
    register_cluster_masks(result.cluster, view.masks, len(record_list))
    return result


def vertical_partition_wave(
    partitions: Sequence,
    k: int,
    m: int,
    label_prefix: str = "P",
    enforce_lemma2: bool = True,
    stats: Optional[kernels.WaveStats] = None,
) -> list[VerticalPartitionResult]:
    """Wave-batched VERPART over a whole list of clusters at once.

    At the paper's default ``m == 2``, the candidate term masks of *every*
    cluster are packed into one :class:`~repro.core.kernels.WaveBatch`
    matrix and all pairwise k^m verdicts come out of a single
    AND + popcount sweep; each cluster's greedy chunk-domain selection then
    replays against its precomputed "bad partner" bitmasks with one int
    test per candidate.  The numpy crossover is reached by the wave's
    *total* row count, so thousands of 30-row clusters vectorize even
    though none would individually.  Labels are ``{label_prefix}{index}``
    in partition order, and the decisions are bit-for-bit those of
    :func:`vertical_partition_fast` (the fallback taken per cluster when
    the wave cannot engage: python backend, ``m != 2``, or total rows
    below :func:`~repro.core.kernels.packed_min_rows`).
    """
    validate_km_parameters(k, m)
    partitions = list(partitions)
    record_lists = [[_as_record(r) for r in part] for part in partitions]
    total_rows = sum(len(rl) for rl in record_lists)
    if not (
        m == 2
        and kernels.numpy_available()
        and kernels.resolve(None) == "numpy"
        and total_rows >= kernels.packed_min_rows()
    ):
        if stats is not None:
            stats.fallbacks += len(record_lists)
        return [
            vertical_partition_fast(
                record_list, k, m, label=f"{label_prefix}{index}",
                enforce_lemma2=enforce_lemma2,
            )
            for index, record_list in enumerate(record_lists)
        ]

    wave = kernels.WaveBatch(k)
    prepared = []  # (record_list, masks, supports, term_chunk_terms, eligible)
    for record_list in record_lists:
        masks = EncodedCluster(record_list).masks
        supports = {term: mask.bit_count() for term, mask in masks.items()}
        term_chunk_terms = {t for t, s in supports.items() if s < k}
        eligible = sorted(
            (t for t in supports if t not in term_chunk_terms),
            key=lambda t: (-supports[t], t),
        )
        wave.add_group([masks[t] for t in eligible], len(record_list))
        prepared.append((record_list, masks, supports, term_chunk_terms, eligible))
    bad_by_group = wave.bad_pair_masks()
    if stats is not None:
        stats.batches += 1
        stats.groups += len(record_lists)

    results = []
    for group, (record_list, masks, supports, term_chunk_terms, eligible) in enumerate(
        prepared
    ):
        bad = bad_by_group.get(group)
        chunk_domains: list[frozenset] = []
        if bad is None:
            # No conflicting pair anywhere in the cluster: the greedy pass
            # accepts every candidate into the first chunk domain.
            if eligible:
                chunk_domains.append(frozenset(eligible))
        else:
            remaining = list(range(len(eligible)))
            while remaining:
                accepted_bits = 0
                accepted: list[int] = []
                skipped: list[int] = []
                for index in remaining:
                    if bad[index] & accepted_bits:
                        skipped.append(index)
                    else:
                        accepted_bits |= 1 << index
                        accepted.append(index)
                # `accepted` is never empty: a round's first candidate has no
                # accepted partners, and every eligible term has support >= k.
                chunk_domains.append(frozenset(eligible[i] for i in accepted))
                remaining = skipped
        demoted: set = set()
        if enforce_lemma2 and not term_chunk_terms:
            coverage = _MaskCoverage(masks, chunk_domains)
            demoted = demote_for_lemma2(coverage, supports, k, m, len(record_list))
            term_chunk_terms.update(demoted)
            chunk_domains = coverage.domains_frozen()
        else:
            chunk_domains = [d for d in chunk_domains if d]
        record_chunks = []
        for domain in chunk_domains:
            subrecords = [sub for record in record_list if (sub := record & domain)]
            if subrecords:
                # record_list and the domains are normalized frozensets of
                # str by construction, so skip the public constructor's
                # per-term re-validation.
                record_chunks.append(RecordChunk._from_normalized(domain, subrecords))
        cluster = SimpleCluster(
            size=len(record_list),
            record_chunks=record_chunks,
            term_chunk=TermChunk(term_chunk_terms),
            label=f"{label_prefix}{group}",
            original_records=record_list,
        )
        register_cluster_masks(cluster, masks, len(record_list))
        results.append(
            VerticalPartitionResult(cluster=cluster, demoted_terms=frozenset(demoted))
        )
    return results


def _project_chunk(records: Sequence[frozenset], domain: frozenset) -> RecordChunk:
    """Project the cluster records onto ``domain``; empty projections are dropped."""
    return RecordChunk(domain, (record & domain for record in records))


def subrecord_bound(size: int, k: int, m: int, num_chunks: int) -> int:
    """The Lemma-2 lower bound on the number of published sub-records.

    ``size + k*(h-1)`` with ``h = min(m, v)``; with a single chunk the bound
    degenerates to ``size`` (one sub-record per record suffices).
    """
    if num_chunks == 0:
        return 0
    h = min(m, num_chunks)
    return size + k * (h - 1)


def satisfies_lemma2(cluster: SimpleCluster, k: int, m: int) -> bool:
    """Check the Lemma-2 validity condition on a published simple cluster."""
    if len(cluster.term_chunk) > 0:
        return True
    if not cluster.record_chunks:
        # no chunks at all: the cluster publishes nothing but its size, which
        # can only happen for empty clusters
        return cluster.size == 0
    needed = subrecord_bound(cluster.size, k, m, len(cluster.record_chunks))
    return cluster.total_subrecords() >= needed


class _RecordCoverage:
    """Per-domain sub-record totals over plain record sets, updated incrementally.

    ``covered[i]`` is the number of records whose projection onto domain ``i``
    is non-empty (i.e. the number of published sub-records of that chunk).
    Demoting a term only re-counts the single domain it belonged to, instead
    of rescanning every record for every domain on each demotion.
    """

    def __init__(self, records: Sequence[frozenset], chunk_domains: Sequence[frozenset]):
        self._records = records
        self._domains: list[set] = [set(d) for d in chunk_domains]
        self._covered: list[int] = [
            sum(1 for record in records if record & domain) for domain in self._domains
        ]

    def num_domains(self) -> int:
        return sum(1 for d in self._domains if d)

    def total(self) -> int:
        return sum(c for d, c in zip(self._domains, self._covered) if d)

    def assigned_terms(self) -> list:
        return [t for d in self._domains if d for t in d]

    def remove_term(self, victim) -> None:
        for index, domain in enumerate(self._domains):
            if victim in domain:
                domain.discard(victim)
                self._covered[index] = (
                    sum(1 for record in self._records if record & domain)
                    if domain
                    else 0
                )

    def domains_frozen(self) -> list[frozenset]:
        return [frozenset(d) for d in self._domains if d]


class _MaskCoverage:
    """Bitmask counterpart of :class:`_RecordCoverage`.

    The records covered by a domain are the OR of its term masks; a
    demotion re-ORs only the masks of the victim's domain.
    """

    def __init__(self, masks: dict, chunk_domains: Sequence[frozenset]):
        self._masks = masks
        self._domains: list[set] = [set(d) for d in chunk_domains]
        self._or_masks: list[int] = [self._or_of(d) for d in self._domains]

    def _or_of(self, domain) -> int:
        mask = 0
        for term in domain:
            mask |= self._masks.get(term, 0)
        return mask

    def num_domains(self) -> int:
        return sum(1 for d in self._domains if d)

    def total(self) -> int:
        return sum(
            or_mask.bit_count()
            for domain, or_mask in zip(self._domains, self._or_masks)
            if domain
        )

    def assigned_terms(self) -> list:
        return [t for d in self._domains if d for t in d]

    def remove_term(self, victim) -> None:
        for index, domain in enumerate(self._domains):
            if victim in domain:
                domain.discard(victim)
                self._or_masks[index] = self._or_of(domain)

    def domains_frozen(self) -> list[frozenset]:
        return [frozenset(d) for d in self._domains if d]


def demote_for_lemma2(
    coverage,
    supports,
    k: int,
    m: int,
    size: int,
    until_bound: bool = False,
) -> set:
    """Demote least frequent record-chunk terms until Lemma 2 holds.

    Operates on a coverage tracker (:class:`_RecordCoverage` or
    :class:`_MaskCoverage`) so each demotion only updates the affected
    domain.  With the default ``until_bound=False`` the loop stops after the
    first demotion (the demoted term repopulates the term chunk, which
    already satisfies Lemma 2); ``until_bound=True`` keeps demoting until
    the sub-record bound itself is met (used by ablations and tests that
    exercise consecutive demotions).

    Returns the set of demoted terms; ``coverage`` is updated in place.
    """
    demoted: set = set()
    while True:
        if demoted and not until_bound:
            break  # a non-empty term chunk always satisfies Lemma 2
        num_domains = coverage.num_domains()
        if num_domains == 0:
            break
        if coverage.total() >= subrecord_bound(size, k, m, num_domains):
            break
        # Demote the least frequent term currently assigned to a record chunk.
        victim = min(coverage.assigned_terms(), key=lambda t: (supports[t], t))
        demoted.add(victim)
        coverage.remove_term(victim)
    return demoted


def _enforce_lemma2(
    records: Sequence[frozenset],
    chunk_domains: list[frozenset],
    term_chunk_terms: set,
    supports,
    k: int,
    m: int,
    size: int,
) -> tuple[list[frozenset], set]:
    """Demote the least frequent record-chunk terms until Lemma 2 holds.

    Returns the possibly shrunk chunk domains and the set of demoted terms.
    """
    if term_chunk_terms:
        return [d for d in chunk_domains if d], set()
    coverage = _RecordCoverage(records, chunk_domains)
    demoted = demote_for_lemma2(coverage, supports, k, m, size)
    return coverage.domains_frozen(), demoted

"""Vertical partitioning (Algorithm VERPART, paper Section 4) and the
Lemma-2 validity enforcement (paper Section 5).

VERPART takes one cluster (a small bag of records) and splits its term
domain into

* record-chunk domains ``T_1 .. T_v`` such that every projected chunk is
  k^m-anonymous, and
* the term-chunk domain ``T_T`` holding all terms with cluster support
  below ``k`` (and any terms demoted by the Lemma-2 check).

The greedy strategy follows the paper: terms are considered in decreasing
support order; a term joins the current chunk domain if the projected chunk
stays k^m-anonymous, otherwise it is left for a later chunk.

Lemma 2 requires that the published cluster admits at least one *valid*
reconstruction of its declared size for every m-term combination; this is
guaranteed when the term chunk is non-empty or when the total number of
published sub-records is at least ``size + k*(h-1)`` with
``h = min(m, v)``.  When the condition fails, the least frequent
record-chunk terms are demoted to the term chunk until it holds (the paper
notes this fallback is always feasible).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.anonymity import IncrementalChunkChecker, validate_km_parameters
from repro.core.clusters import RecordChunk, SimpleCluster, TermChunk
from repro.core.dataset import TransactionDataset


@dataclass
class VerticalPartitionResult:
    """Outcome of vertically partitioning one cluster.

    Attributes:
        cluster: the published :class:`SimpleCluster`.
        demoted_terms: terms moved from record chunks to the term chunk by
            the Lemma-2 enforcement (useful for diagnostics and ablations).
    """

    cluster: SimpleCluster
    demoted_terms: frozenset = field(default_factory=frozenset)


def vertical_partition(
    records: TransactionDataset,
    k: int,
    m: int,
    label: str = "P",
    enforce_lemma2: bool = True,
) -> VerticalPartitionResult:
    """Vertically partition one cluster into record chunks and a term chunk.

    Args:
        records: the cluster's records (output of HORPART).
        k, m: anonymity parameters.
        label: stable cluster label used downstream (refining, reconstruction).
        enforce_lemma2: when ``True`` (default) the Lemma-2 sub-record bound
            is enforced by demoting terms if necessary.  Disabling it is
            only useful for ablation experiments and tests that reproduce
            Example 1 of the paper.

    Returns:
        A :class:`VerticalPartitionResult` whose ``cluster`` is
        k^m-anonymous (and Lemma-2 valid unless disabled).
    """
    validate_km_parameters(k, m)
    record_list = [frozenset(r) for r in records]
    supports = records.term_supports()

    # Step 1: terms with support < k can never appear in a k^m-anonymous
    # record chunk (their singleton combination already violates the bound),
    # so they go straight to the term chunk.
    term_chunk_terms = {t for t, s in supports.items() if s < k}
    remaining = [t for t in records.terms_by_support(descending=True) if t not in term_chunk_terms]

    # Step 2: greedily grow chunk domains.
    chunk_domains: list[frozenset] = []
    while remaining:
        checker = IncrementalChunkChecker(record_list, k, m)
        accepted: list[str] = []
        skipped: list[str] = []
        for term in remaining:
            if checker.try_add(term):
                accepted.append(term)
            else:
                skipped.append(term)
        if not accepted:
            # Cannot happen per the paper's argument (a singleton chunk of a
            # term with support >= k is always k^m-anonymous), but guard
            # against pathological inputs: demote everything left.
            term_chunk_terms.update(remaining)
            break
        chunk_domains.append(frozenset(accepted))
        remaining = skipped

    demoted: set = set()
    if enforce_lemma2:
        chunk_domains, extra = _enforce_lemma2(
            record_list, chunk_domains, term_chunk_terms, supports, k, m, len(record_list)
        )
        demoted = extra
        term_chunk_terms.update(extra)

    record_chunks = [
        _project_chunk(record_list, domain) for domain in chunk_domains
    ]
    # drop chunks that became empty after demotions
    record_chunks = [chunk for chunk in record_chunks if len(chunk) > 0 and chunk.domain]

    cluster = SimpleCluster(
        size=len(record_list),
        record_chunks=record_chunks,
        term_chunk=TermChunk(term_chunk_terms),
        label=label,
        original_records=record_list,
    )
    return VerticalPartitionResult(cluster=cluster, demoted_terms=frozenset(demoted))


def _project_chunk(records: Sequence[frozenset], domain: frozenset) -> RecordChunk:
    """Project the cluster records onto ``domain``; empty projections are dropped."""
    return RecordChunk(domain, (record & domain for record in records))


def subrecord_bound(size: int, k: int, m: int, num_chunks: int) -> int:
    """The Lemma-2 lower bound on the number of published sub-records.

    ``size + k*(h-1)`` with ``h = min(m, v)``; with a single chunk the bound
    degenerates to ``size`` (one sub-record per record suffices).
    """
    if num_chunks == 0:
        return 0
    h = min(m, num_chunks)
    return size + k * (h - 1)


def satisfies_lemma2(cluster: SimpleCluster, k: int, m: int) -> bool:
    """Check the Lemma-2 validity condition on a published simple cluster."""
    if len(cluster.term_chunk) > 0:
        return True
    if not cluster.record_chunks:
        # no chunks at all: the cluster publishes nothing but its size, which
        # can only happen for empty clusters
        return cluster.size == 0
    needed = subrecord_bound(cluster.size, k, m, len(cluster.record_chunks))
    return cluster.total_subrecords() >= needed


def _enforce_lemma2(
    records: Sequence[frozenset],
    chunk_domains: list[frozenset],
    term_chunk_terms: set,
    supports,
    k: int,
    m: int,
    size: int,
) -> tuple[list[frozenset], set]:
    """Demote the least frequent record-chunk terms until Lemma 2 holds.

    Returns the possibly shrunk chunk domains and the set of demoted terms.
    """
    demoted: set = set()
    while True:
        if term_chunk_terms or demoted:
            break  # a non-empty term chunk always satisfies Lemma 2
        domains = [d for d in chunk_domains if d]
        if not domains:
            break
        total = sum(
            sum(1 for record in records if record & domain) for domain in domains
        )
        if total >= subrecord_bound(size, k, m, len(domains)):
            break
        # Demote the least frequent term currently assigned to a record chunk.
        assigned = [t for domain in domains for t in domain]
        victim = min(assigned, key=lambda t: (supports[t], t))
        demoted.add(victim)
        chunk_domains = [frozenset(d - {victim}) for d in chunk_domains]
    return [d for d in chunk_domains if d], demoted

"""Interned-term execution core: integer vocabulary and encoded datasets.

The disassociation pipeline is dominated by set operations over string
terms.  This module provides the *encoded* substrate the hot paths run on:

* :class:`Vocabulary` -- a deterministic str<->int interning table.  Term
  ids are assigned in first-seen order; ties between equally frequent terms
  are still broken on the *string* form so the encoded pipeline reproduces
  the string pipeline bit-for-bit.
* :class:`EncodedDataset` -- records stored as ``frozenset`` of int ids
  plus per-term posting lists (term id -> set of record indices).  HORPART
  splits become posting-list membership tests instead of dataset copies.
* :class:`EncodedCluster` -- the per-cluster bitmask view used by VERPART:
  each term maps to an int bitmask over the cluster's rows, so the support
  of an m-term combination is a single ``&`` + ``bit_count()``.

Everything decodes back to the string-based containers at the publication
boundary (:mod:`repro.core.clusters`), keeping the public API and the
serialized format unchanged.
"""

from __future__ import annotations

import weakref
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.core.dataset import TransactionDataset


class SubrecordArena:
    """Interning table for shared-chunk sub-records (term frozensets).

    REFINE's chunk materialization used to build one fresh ``frozenset``
    per published sub-record row, per merge attempt -- the dominant
    allocation of the phase at default cluster sizes, because joint
    clusters rebuild the same sub-records every time they merge again.
    The arena interns each distinct sub-record once: content-equal
    sub-records share a single canonical instance with a dense int id
    (``0..len-1``, int32-sized in practice), and the hot path resolves a
    row *pattern* (tuple of terms) to its canonical instance with one
    dict probe instead of a frozenset construction.

    :meth:`subrecords_for` is the REFINE kernel: it splits a leaf's
    covered rows into identical-pattern classes with O(terms x classes)
    small-int ANDs, interns one sub-record per class, and expands back to
    per-row sub-records in original record order -- exactly what
    projecting every record would produce, with allocations proportional
    to the *distinct* patterns instead of the rows.
    """

    __slots__ = ("_by_pattern", "_ids", "_table")

    def __init__(self):
        self._by_pattern: dict[tuple, frozenset] = {}
        self._ids: dict[frozenset, int] = {}
        self._table: list[frozenset] = []

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:
        return f"SubrecordArena(|S|={len(self._table)})"

    def intern(self, subrecord: Iterable) -> int:
        """Return the dense id of ``subrecord``, interning it on first sight."""
        subrecord = frozenset(subrecord)
        sid = self._ids.get(subrecord)
        if sid is None:
            sid = len(self._table)
            self._ids[subrecord] = sid
            self._table.append(subrecord)
        return sid

    def id_of(self, subrecord: Iterable) -> Optional[int]:
        """The id of ``subrecord`` or ``None`` when it was never interned."""
        return self._ids.get(frozenset(subrecord))

    def subrecord(self, sid: int) -> frozenset:
        """The canonical sub-record instance for id ``sid``."""
        return self._table[sid]

    def _interned(self, pattern: tuple) -> frozenset:
        """Canonical instance for a term-tuple row pattern (one dict probe hot)."""
        sub = self._by_pattern.get(pattern)
        if sub is None:
            sub = self._table[self.intern(pattern)]
            self._by_pattern[pattern] = sub
        return sub

    def subrecords_for(
        self, term_masks: Sequence[tuple], or_mask: int, count: int
    ) -> list[frozenset]:
        """Interned sub-records of the rows covered by ``or_mask``.

        ``term_masks`` are ``(term, row_bitmask)`` pairs; every covered row
        yields the frozenset of terms whose mask contains it, in increasing
        row order.  Rows are first partitioned into identical-pattern
        classes (rows sharing the exact same term subset), so only one
        canonical sub-record is resolved per class.
        """
        classes: list[tuple[int, tuple]] = [(or_mask, ())]
        for term, mask in term_masks:
            split: list[tuple[int, tuple]] = []
            for rows, pattern in classes:
                inside = rows & mask
                if inside:
                    split.append((inside, pattern + (term,)))
                    rows ^= inside
                if rows:
                    split.append((rows, pattern))
            classes = split
        if len(classes) == 1:
            return [self._interned(classes[0][1])] * count
        ordered: list[tuple[int, frozenset]] = []
        for rows, pattern in classes:
            sub = self._interned(pattern)
            for row in iter_mask_bits(rows):
                ordered.append((row, sub))
        ordered.sort(key=lambda entry: entry[0])
        return [sub for _row, sub in ordered]


class Vocabulary:
    """Deterministic str<->int interning table.

    Ids are dense (``0..len-1``) and assigned in first-seen order, which
    makes encoded artifacts reproducible for a fixed input ordering.
    """

    __slots__ = ("_ids", "_terms", "_subrecord_arena", "_lock", "_thread_arenas")

    def __init__(self, terms: Iterable[str] = ()):
        self._ids: dict[str, int] = {}
        self._terms: list[str] = []
        self._subrecord_arena: Optional[SubrecordArena] = None
        #: Interning lock, present only on shared vocabularies (see
        #: :meth:`make_shared`); ``None`` keeps single-threaded interning
        #: lock-free.
        self._lock: Optional[Any] = None
        self._thread_arenas: Optional[Any] = None
        for term in terms:
            self.intern(term)

    def make_shared(self) -> "Vocabulary":
        """Make this vocabulary safe to share across concurrent encoders.

        Installs an interning lock -- :meth:`intern`, :meth:`encode_terms`
        and the inlined loop of :meth:`EncodedDataset.from_dataset` hold it
        while assigning ids -- and switches :meth:`subrecord_arena` to one
        arena *per thread* (arena interning only canonicalizes content-equal
        sub-records, so per-thread arenas never change any output; a shared
        one would need a lock inside REFINE's hot loop).

        Interning stays append-only and id-insensitive decisions still break
        ties on the decoded string, so concurrent interleavings cannot
        change any publication -- the same output-invariance the streaming
        executor relies on.  The service layer calls this once at
        construction when it runs more than one worker.  Idempotent.
        """
        import threading

        if self._lock is None:
            self._lock = threading.RLock()
            self._thread_arenas = threading.local()
        return self

    @property
    def lock(self):
        """The interning lock of a shared vocabulary, or ``None``."""
        return self._lock

    def subrecord_arena(self) -> SubrecordArena:
        """The vocabulary-lifetime sub-record arena, created on first use.

        REFINE interns shared-chunk sub-records here so canonical
        instances are reused across merge attempts -- and, because the
        streaming executor keeps one vocabulary per shard, across windows.
        On a shared vocabulary (:meth:`make_shared`) the arena is
        per-thread instead, so concurrent REFINE phases never contend.
        """
        if self._lock is not None:
            arenas = self._thread_arenas
            arena = getattr(arenas, "arena", None)
            if arena is None:
                arena = arenas.arena = SubrecordArena()
            return arena
        if self._subrecord_arena is None:
            self._subrecord_arena = SubrecordArena()
        return self._subrecord_arena

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term) -> bool:
        return str(term) in self._ids

    def __repr__(self) -> str:
        return f"Vocabulary(|T|={len(self._terms)})"

    def intern(self, term) -> int:
        """Return the id of ``term``, assigning a fresh one on first sight."""
        term = str(term)
        tid = self._ids.get(term)
        if tid is None:
            if self._lock is not None:
                with self._lock:
                    return self._intern_locked(term)
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def _intern_locked(self, term: str) -> int:
        """Assign (or find) an id while already holding the interning lock."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            self._ids[term] = tid
            self._terms.append(term)
        return tid

    def id_of(self, term) -> Optional[int]:
        """The id of ``term`` or ``None`` when it was never interned."""
        return self._ids.get(str(term))

    def decode(self, tid: int) -> str:
        """The string form of term id ``tid``."""
        return self._terms[tid]

    @property
    def terms(self) -> list[str]:
        """All interned terms, ordered by id (do not mutate)."""
        return list(self._terms)

    def encode_terms(self, terms: Iterable) -> frozenset:
        """Encode an iterable of terms into a ``frozenset`` of ids (interning)."""
        return frozenset(self.intern(t) for t in terms)

    def decode_terms(self, ids: Iterable[int]) -> frozenset:
        """Decode a collection of term ids back into string terms."""
        decode = self._terms
        return frozenset(decode[tid] for tid in ids)


class EncodedDataset:
    """A transaction dataset interned onto integer term ids.

    Stores records as ``frozenset`` of int ids (positionally aligned with
    the source dataset) and an inverted index (posting sets) mapping each
    term id to the indices of the records containing it.  The posting sets
    turn HORPART's ``split_on_term`` into O(1) membership tests and term
    supports within a part into simple Counter updates over small ints.
    """

    __slots__ = ("vocab", "records", "_postings")

    def __init__(self, vocab: Vocabulary, records: list[frozenset]):
        self.vocab = vocab
        self.records = records
        self._postings: Optional[dict[int, set[int]]] = None

    @classmethod
    def from_dataset(
        cls, dataset: TransactionDataset, vocab: Optional[Vocabulary] = None
    ) -> "EncodedDataset":
        """Encode a :class:`TransactionDataset` (or any record sequence).

        The interning loop is inlined (one dict probe per already-seen term
        instead of a method call + ``str`` coercion): encoding sits on the
        pipeline's hot boundary and runs once per input record.

        ``vocab`` optionally reuses an existing (possibly pre-warmed)
        :class:`Vocabulary` instead of interning from scratch -- the
        streaming executor hands one shard-lifetime vocabulary to every
        window so repeated terms keep their ids.  Interning is append-only,
        and every id-sensitive decision downstream breaks ties on the
        *decoded string*, so a pre-warmed vocabulary never changes the
        output.
        """
        if vocab is None:
            vocab = Vocabulary()
        ids = vocab._ids
        terms = vocab._terms
        locked = vocab._lock is not None
        records = []
        append = records.append
        for record in dataset:
            encoded = []
            for term in record:
                tid = ids.get(term)
                if tid is None:
                    if locked:
                        # Shared vocabulary (service worker pool): misses
                        # take the interning lock; hits stay lock-free
                        # (dict reads are safe against concurrent inserts).
                        tid = vocab.intern(term)
                    else:
                        term = str(term)
                        tid = ids.get(term)
                        if tid is None:
                            tid = len(terms)
                            ids[term] = tid
                            terms.append(term)
                encoded.append(tid)
            append(frozenset(encoded))
        return cls(vocab, records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"EncodedDataset(n={len(self.records)}, |T|={len(self.vocab)})"

    @property
    def postings(self) -> dict[int, set[int]]:
        """Posting sets: term id -> set of indices of records containing it."""
        if self._postings is None:
            postings: dict[int, set[int]] = {}
            for index, record in enumerate(self.records):
                for tid in record:
                    bucket = postings.get(tid)
                    if bucket is None:
                        postings[tid] = {index}
                    else:
                        bucket.add(index)
            self._postings = postings
        return self._postings

    def supports_in(self, indices: Sequence[int]) -> Counter:
        """Term supports restricted to the records at ``indices``."""
        counts: Counter = Counter()
        records = self.records
        for index in indices:
            counts.update(records[index])
        return counts

    def most_frequent_in(
        self, indices: Sequence[int], exclude: frozenset = frozenset()
    ) -> Optional[int]:
        """Most frequent term id within ``indices`` (ties broken on the string).

        Mirrors :meth:`TransactionDataset.most_frequent_term` exactly so the
        encoded HORPART reproduces the string HORPART's split decisions.
        """
        counts = self.supports_in(indices)
        best_support = -1
        candidates: list[int] = []
        for tid, count in counts.items():
            if tid in exclude:
                continue
            if count > best_support:
                best_support = count
                candidates = [tid]
            elif count == best_support:
                candidates.append(tid)
        if not candidates:
            return None
        decode = self.vocab.decode
        return min(candidates, key=decode)

    def split_indices(
        self, indices: Sequence[int], tid: int
    ) -> tuple[list[int], list[int]]:
        """Split ``indices`` into (containing ``tid``, not containing it).

        Record order is preserved on both sides (HORPART's primitive).
        """
        posting = self.postings.get(tid, set())
        with_term: list[int] = []
        without_term: list[int] = []
        for index in indices:
            (with_term if index in posting else without_term).append(index)
        return with_term, without_term


class EncodedCluster:
    """Bitmask view of one cluster: term -> int bitmask over the rows.

    Bit ``i`` of ``masks[term]`` is set when row ``i`` contains the term, so

    * the support of a term is ``masks[term].bit_count()`` and
    * the support of an m-term combination is the popcount of the AND of
      the member masks.

    Keys are the original *string* terms: the cluster is its own local
    interning scope (clusters are small), which keeps the view picklable
    and independent of any global vocabulary -- exactly what the parallel
    VERPART fan-out needs.
    """

    __slots__ = ("records", "masks")

    def __init__(self, records: Sequence[frozenset]):
        self.records: list[frozenset] = [frozenset(r) for r in records]
        masks: dict[str, int] = {}
        for row, record in enumerate(self.records):
            bit = 1 << row
            for term in record:
                masks[term] = masks.get(term, 0) | bit
        self.masks = masks

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"EncodedCluster(rows={len(self.records)}, |T|={len(self.masks)})"

    def support(self, term) -> int:
        """Support of a single term within the cluster."""
        return self.masks.get(str(term), 0).bit_count()

    def combination_support(self, terms: Iterable) -> int:
        """Support of an itemset within the cluster (popcount of AND-ed masks)."""
        mask = -1
        for term in terms:
            mask &= self.masks.get(str(term), 0)
            if not mask:
                return 0
        if mask == -1:  # empty itemset: every row matches
            return len(self.records)
        return mask.bit_count()

    def covered_rows(self, terms: Iterable) -> int:
        """Number of rows containing at least one of ``terms`` (OR of masks)."""
        mask = 0
        for term in terms:
            mask |= self.masks.get(str(term), 0)
        return mask.bit_count()


def iter_mask_bits(mask: int):
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: Per-cluster term-mask cache: cluster object -> (masks, num_rows).  Weak
#: keys tie each entry's lifetime to its cluster, so REFINE re-uses the
#: bitmasks VERPART already built for a leaf (and streaming windows inherit
#: warm caches engine-wide) without any explicit invalidation: a cluster's
#: original records never change after construction.
_CLUSTER_MASKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def register_cluster_masks(cluster, masks: dict, num_rows: int) -> None:
    """Attach already-built term masks to a cluster object (weakly keyed)."""
    _CLUSTER_MASKS[cluster] = (masks, num_rows)


def cluster_masks(cluster) -> tuple[dict, int]:
    """The cluster's term masks over its original records, built once.

    ``cluster.original_records`` is only read on a cache miss (the property
    copies the record list, so a hit must not touch it).
    """
    entry = _CLUSTER_MASKS.get(cluster)
    if entry is None:
        rows = cluster.original_records or []
        entry = (EncodedCluster(rows).masks, len(rows))
        _CLUSTER_MASKS[cluster] = entry
    return entry


def discard_cluster_masks(cluster) -> None:
    """Drop the cached term masks for ``cluster`` (no-op when absent).

    The masks are only read between VERPART (which registers them) and the
    end of REFINE; publishing keeps the cluster objects alive, so without
    an explicit release the masks would stay resident for the lifetime of
    the published dataset -- the engine discards them once the refine
    phase is over.
    """
    _CLUSTER_MASKS.pop(cluster, None)

"""Refining step (Algorithm REFINE, paper Sections 3-5).

Vertical partitioning may banish a term to the term chunks of several
clusters even though its *global* support is healthy (the paper's example:
``ikea`` and ``ruby`` are rare inside ``P1`` and inside ``P2`` but frequent
across the two).  The refining step recovers some of this lost information
by merging clusters into **joint clusters** with **shared chunks** built
from such terms, provided that

* the shared chunks respect Property 1 (k^m-anonymous, and plainly
  k-anonymous whenever a shared term also appears in a record or shared
  chunk of a descendant cluster), and
* the merge improves utility according to the Equation-1 criterion.

REFINE repeatedly orders the clusters by the contents of their (virtual)
term chunks and merges adjacent pairs until no merge is applied.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from repro.core.anonymity import (
    BitsetChunkChecker,
    is_k_anonymous,
    is_km_anonymous,
    validate_km_parameters,
)
from repro.core.clusters import Cluster, JointCluster, SharedChunk, SimpleCluster, TermChunk
from repro.core.vocab import EncodedCluster, iter_mask_bits
from repro.exceptions import RefinementError


@dataclass
class MergeOutcome:
    """Result of attempting to merge two clusters.

    Attributes:
        joint: the new joint cluster, or ``None`` when the merge was rejected.
        refining_terms: the terms that were lifted into shared chunks.
        reason: human-readable explanation when the merge was rejected.
    """

    joint: Optional[JointCluster]
    refining_terms: frozenset = frozenset()
    reason: str = ""


# --------------------------------------------------------------------------- #
# helpers on (simple | joint) clusters
# --------------------------------------------------------------------------- #
def virtual_term_chunk(cluster: Cluster) -> frozenset:
    """Union of the term chunks of the cluster's leaf simple clusters.

    For a simple cluster this is just its own term chunk; for joint clusters
    it is the "virtual term chunk" REFINE attaches before ordering.
    """
    if isinstance(cluster, SimpleCluster):
        return frozenset(cluster.term_chunk.terms)
    return cluster.term_chunk_terms()


def cluster_size(cluster: Cluster) -> int:
    """Number of original records represented by a (simple or joint) cluster."""
    return cluster.size


def _leaves_with_originals(cluster: Cluster) -> list[SimpleCluster]:
    leaves = cluster.leaves()
    for leaf in leaves:
        if leaf.original_records is None:
            raise RefinementError(
                f"cluster {leaf.label!r} has no original records attached; "
                "refinement requires clusters produced by vertical_partition"
            )
    return leaves


# --------------------------------------------------------------------------- #
# shared-chunk construction
# --------------------------------------------------------------------------- #
def build_shared_chunks(
    leaves: Sequence[SimpleCluster],
    refining_terms: frozenset,
    restricted_terms: frozenset,
    k: int,
    m: int,
    use_bitsets: bool = True,
) -> tuple[list[SharedChunk], frozenset]:
    """Greedily build shared chunks over ``refining_terms``.

    Each leaf contributes the projection of its original records onto the
    part of the refining terms that lies in *its own* term chunk (so a
    record never contributes the same association to both a record chunk and
    a shared chunk).

    Args:
        leaves: the simple clusters under the prospective joint cluster.
        refining_terms: candidate terms to lift out of the term chunks.
        restricted_terms: the ``T^r`` of Property 1 (terms appearing in
            record or shared chunks of the descendant clusters); a shared
            chunk touching any of them must be k-anonymous.
        k, m: anonymity parameters.
        use_bitsets: select chunk domains over term bitmasks (AND + popcount
            per combination) instead of re-projecting every record per
            candidate.  Both selectors make identical greedy decisions; the
            reference selector is kept as the verification baseline.

    Returns:
        ``(shared_chunks, placed_terms)`` where ``placed_terms`` are the
        refining terms that actually made it into a shared chunk (the rest
        stay in the term chunks).
    """
    validate_km_parameters(k, m)
    # Pre-compute, per leaf, the projection source: original records
    # restricted to the refining terms that live in that leaf's term chunk.
    per_leaf_sources: list[tuple[SimpleCluster, list[frozenset]]] = []
    for leaf in leaves:
        liftable = leaf.term_chunk.terms & refining_terms
        originals = leaf.original_records or []
        per_leaf_sources.append(
            (leaf, [record & liftable for record in originals])
        )

    rows = [record for _leaf, records in per_leaf_sources for record in records]
    if use_bitsets:
        domains = _select_domains_bitset(rows, restricted_terms, k, m)
    else:
        domains = _select_domains_reference(rows, refining_terms, restricted_terms, k, m)

    shared_chunks: list[SharedChunk] = []
    placed: set = set()
    for domain in domains:
        subrecords: list[frozenset] = []
        contributions: dict = {}
        for leaf, records in per_leaf_sources:
            leaf_subrecords = [record & domain for record in records]
            non_empty = [p for p in leaf_subrecords if p]
            contributions[leaf.label] = len(non_empty)
            subrecords.extend(non_empty)
        shared_chunks.append(SharedChunk(domain, subrecords, contributions))
        placed.update(domain)
    return shared_chunks, frozenset(placed)


def _select_domains_reference(
    rows: Sequence[frozenset],
    refining_terms: frozenset,
    restricted_terms: frozenset,
    k: int,
    m: int,
) -> list[frozenset]:
    """Reference greedy domain selection: full re-projection per candidate."""
    supports: Counter = Counter()
    for projection in rows:
        supports.update(projection)

    remaining = sorted(
        (t for t in refining_terms if supports[t] > 0),
        key=lambda t: (-supports[t], t),
    )

    domains: list[frozenset] = []
    while remaining:
        accepted: list[str] = []
        skipped: list[str] = []
        for term in remaining:
            candidate = frozenset(accepted) | {term}
            projections = [record & candidate for record in rows]
            non_empty = [p for p in projections if p]
            anonymous = is_km_anonymous(non_empty, k, m)
            if anonymous and candidate & restricted_terms:
                anonymous = is_k_anonymous(non_empty, k)
            if anonymous:
                accepted.append(term)
            else:
                skipped.append(term)
        if not accepted:
            break
        domains.append(frozenset(accepted))
        remaining = skipped
    return domains


def _select_domains_bitset(
    rows: Sequence[frozenset],
    restricted_terms: frozenset,
    k: int,
    m: int,
) -> list[frozenset]:
    """Bitset greedy domain selection (same decisions as the reference).

    Terms are represented as bitmasks over the joint rows, so a candidate's
    k^m check enumerates only the occurring combinations that involve it
    (AND + popcount each).  The Property-1 k-anonymity check, needed only
    when the candidate domain touches ``restricted_terms``, recounts the
    multiset of row projections maintained incrementally on acceptance.
    """
    masks = EncodedCluster(rows).masks
    supports = {term: mask.bit_count() for term, mask in masks.items()}

    remaining = sorted(supports, key=lambda t: (-supports[t], t))

    domains: list[frozenset] = []
    while remaining:
        checker = BitsetChunkChecker(masks, k, m)
        # per-row projection onto the accepted terms (for the k-anonymity check)
        row_projections: list[set] = [set() for _ in rows]
        accepted: list[str] = []
        skipped: list[str] = []
        touches_restricted = False
        for term in remaining:
            ok = checker.would_remain_anonymous(term)
            if ok and (touches_restricted or term in restricted_terms):
                ok = _candidate_is_k_anonymous(row_projections, masks[term], term, k)
            if not ok:
                skipped.append(term)
                continue
            accepted.append(term)
            checker.add(term)
            if term in restricted_terms:
                touches_restricted = True
            for row_index in iter_mask_bits(masks[term]):
                row_projections[row_index].add(term)
        if not accepted:
            break
        domains.append(frozenset(accepted))
        remaining = skipped
    return domains


def _candidate_is_k_anonymous(
    row_projections: Sequence[set], term_mask: int, term: str, k: int
) -> bool:
    """k-anonymity of the row projections if ``term`` were accepted.

    Every distinct non-empty projection (current accepted terms, plus
    ``term`` for the rows whose bit is set in ``term_mask``) must occur at
    least ``k`` times.
    """
    counts: Counter = Counter()
    for row_index, projection in enumerate(row_projections):
        if (term_mask >> row_index) & 1:
            counts[frozenset(projection) | {term}] += 1
        elif projection:
            counts[frozenset(projection)] += 1
    return all(count >= k for count in counts.values())


# --------------------------------------------------------------------------- #
# Equation-1 merge criterion
# --------------------------------------------------------------------------- #
def merge_criterion(
    shared_chunks: Sequence[SharedChunk],
    refining_terms: frozenset,
    leaves: Sequence[SimpleCluster],
    joint_size: int,
) -> bool:
    """Equation 1 of the paper: accept the merge when lifting the refining
    terms into shared chunks attributes them to records at least as
    confidently as leaving them in the member term chunks.

    The left-hand side is the total support of the refining terms inside the
    new shared chunks divided by the joint-cluster size; the right-hand side
    is the number of refining-term occurrences in the member term chunks
    divided by the total size of the members that contain them.
    """
    if joint_size == 0 or not refining_terms:
        return False
    lhs_numerator = 0
    for chunk in shared_chunks:
        chunk_supports = chunk.term_supports()
        lhs_numerator += sum(chunk_supports.get(t, 0) for t in refining_terms)
    lhs = lhs_numerator / joint_size

    rhs_numerator = 0
    rhs_denominator = 0
    for leaf in leaves:
        present = leaf.term_chunk.terms & refining_terms
        if present:
            rhs_numerator += len(present)
            rhs_denominator += leaf.size
    if rhs_denominator == 0:
        return False
    rhs = rhs_numerator / rhs_denominator
    return lhs >= rhs


# --------------------------------------------------------------------------- #
# merging a pair of clusters
# --------------------------------------------------------------------------- #
def try_merge(
    left: Cluster,
    right: Cluster,
    k: int,
    m: int,
    max_join_size: Optional[int] = None,
    excluded_terms: frozenset = frozenset(),
    use_bitsets: bool = True,
) -> MergeOutcome:
    """Attempt to merge two clusters into a joint cluster.

    The refining terms are the terms shared by the two (virtual) term
    chunks.  The merge is applied only when at least one shared chunk can be
    built, the Equation-1 criterion holds, and every leaf cluster still
    satisfies Lemma 2 after the lifted terms leave its term chunk.
    ``max_join_size`` caps the size (in original records) of the resulting
    joint cluster: building shared chunks re-projects every leaf's records,
    so unbounded joint growth would make refinement quadratic in the dataset
    size while adding little utility (Equation 1's left-hand side shrinks as
    the joint grows).  ``excluded_terms`` are never lifted (used for
    sensitive terms, which must stay in term chunks for l-diversity).
    """
    if max_join_size is not None and cluster_size(left) + cluster_size(right) > max_join_size:
        return MergeOutcome(None, reason="joint cluster would exceed max_join_size")
    refining_candidates = (
        virtual_term_chunk(left) & virtual_term_chunk(right)
    ) - excluded_terms
    if not refining_candidates:
        return MergeOutcome(None, reason="no common term-chunk terms")

    leaves = _leaves_with_originals(left) + _leaves_with_originals(right)
    restricted = left.record_chunk_terms() | right.record_chunk_terms()

    # Build the shared chunks, holding back terms whose lifting would leave a
    # leaf with an empty term chunk it cannot afford (Lemma 2).  The paper's
    # fallback applies: at least one term always remains available to
    # repopulate the term chunk, so the loop terminates.
    shared_chunks: list[SharedChunk] = []
    placed: frozenset = frozenset()
    while refining_candidates:
        shared_chunks, placed = build_shared_chunks(
            leaves, refining_candidates, restricted, k, m, use_bitsets=use_bitsets
        )
        if not shared_chunks or not placed:
            return MergeOutcome(None, reason="no k^m-anonymous shared chunk could be built")
        at_risk = _leaves_needing_a_term(leaves, placed, k, m)
        if not at_risk:
            break
        held_back = _hold_back_terms(at_risk, placed)
        refining_candidates = refining_candidates - held_back
    else:
        return MergeOutcome(None, reason="every refining term is needed by a leaf's term chunk")

    joint_size = cluster_size(left) + cluster_size(right)
    if not merge_criterion(shared_chunks, placed, leaves, joint_size):
        return MergeOutcome(None, reason="Equation-1 criterion rejected the merge")

    # The lifted terms leave the member term chunks.
    for leaf in leaves:
        remaining_terms = leaf.term_chunk.terms - placed
        leaf.term_chunk = TermChunk(remaining_terms)

    joint = JointCluster(
        children=[left, right],
        shared_chunks=shared_chunks,
        label=f"J[{left.label}+{right.label}]",
    )
    return MergeOutcome(joint, refining_terms=placed)


def _leaves_needing_a_term(
    leaves: Sequence[SimpleCluster], placed: frozenset, k: int, m: int
) -> list[SimpleCluster]:
    """Leaves that would violate Lemma 2 if ``placed`` left their term chunks.

    A leaf is at risk when lifting empties its term chunk and its record
    chunks alone do not reach the Lemma-2 sub-record bound (paper, Lemma 2:
    a non-empty term chunk or enough sub-records).
    """
    from repro.core.vertical import subrecord_bound

    at_risk: list[SimpleCluster] = []
    for leaf in leaves:
        remaining = leaf.term_chunk.terms - placed
        if remaining:
            continue
        if not leaf.record_chunks:
            if leaf.size > 0:
                at_risk.append(leaf)
            continue
        needed = subrecord_bound(leaf.size, k, m, len(leaf.record_chunks))
        if leaf.total_subrecords() < needed:
            at_risk.append(leaf)
    return at_risk


def _hold_back_terms(at_risk: Sequence[SimpleCluster], placed: frozenset) -> frozenset:
    """For every at-risk leaf, pick one of its term-chunk terms to keep local.

    The held-back terms are removed from the refining candidates so the
    leaf's term chunk stays non-empty after the merge.  Choosing the
    lexicographically smallest term keeps the procedure deterministic.
    """
    held: set = set()
    for leaf in at_risk:
        liftable = sorted(leaf.term_chunk.terms & placed)
        if liftable:
            held.add(liftable[0])
    # Guard against a pathological empty selection (cannot happen when the
    # leaf was flagged because of `placed`, but keeps the caller's loop safe).
    return frozenset(held) if held else frozenset(placed and {sorted(placed)[0]})


# --------------------------------------------------------------------------- #
# the REFINE driver
# --------------------------------------------------------------------------- #
def _ordering_key(cluster: Cluster, tcs: Counter) -> tuple:
    """Ordering key for REFINE: the (virtual) term chunk rendered as a tuple of
    terms sorted by descending term-chunk support, compared lexicographically."""
    terms = sorted(virtual_term_chunk(cluster), key=lambda t: (-tcs[t], t))
    # Clusters with empty term chunks sort last: they have nothing to refine.
    return (len(terms) == 0, tuple(terms))


def refine(
    clusters: Sequence[Cluster],
    k: int,
    m: int,
    max_passes: int = 50,
    max_join_size: Optional[int] = 240,
    excluded_terms: frozenset = frozenset(),
    use_bitsets: bool = True,
) -> list[Cluster]:
    """Algorithm REFINE: iteratively merge adjacent cluster pairs.

    Args:
        clusters: k^m-anonymous clusters (typically the VERPART output).
        k, m: anonymity parameters.
        max_passes: safety cap on the number of merge passes (the algorithm
            terminates on its own because each pass either merges clusters,
            strictly reducing their number, or stops).
        max_join_size: cap on the number of original records per joint
            cluster (``None`` disables the cap); see :func:`try_merge`.
        excluded_terms: terms that must never be lifted into shared chunks
            (sensitive terms stay in term chunks for l-diversity).
        use_bitsets: run shared-chunk selection over term bitmasks (default;
            identical output, far fewer record scans).  ``False`` selects
            the reference implementation, kept for equivalence testing.

    Returns:
        The refined list of clusters (joint clusters replace merged pairs).
    """
    validate_km_parameters(k, m)
    excluded_terms = frozenset(str(t) for t in excluded_terms)
    current: list[Cluster] = list(clusters)
    for _pass in range(max_passes):
        if len(current) < 2:
            break
        # term-chunk support of each term across the current clusters
        tcs: Counter = Counter()
        for cluster in current:
            tcs.update(virtual_term_chunk(cluster))
        ordered = sorted(current, key=lambda c: _ordering_key(c, tcs))

        merged: list[Cluster] = []
        changed = False
        index = 0
        while index < len(ordered):
            if index + 1 < len(ordered):
                outcome = try_merge(
                    ordered[index],
                    ordered[index + 1],
                    k,
                    m,
                    max_join_size=max_join_size,
                    excluded_terms=excluded_terms,
                    use_bitsets=use_bitsets,
                )
                if outcome.joint is not None:
                    merged.append(outcome.joint)
                    changed = True
                    index += 2
                    continue
            merged.append(ordered[index])
            index += 1
        current = merged
        if not changed:
            break
    return current

"""Refining step (Algorithm REFINE, paper Sections 3-5).

Vertical partitioning may banish a term to the term chunks of several
clusters even though its *global* support is healthy (the paper's example:
``ikea`` and ``ruby`` are rare inside ``P1`` and inside ``P2`` but frequent
across the two).  The refining step recovers some of this lost information
by merging clusters into **joint clusters** with **shared chunks** built
from such terms, provided that

* the shared chunks respect Property 1 (k^m-anonymous, and plainly
  k-anonymous whenever a shared term also appears in a record or shared
  chunk of a descendant cluster), and
* the merge improves utility according to the Equation-1 criterion.

REFINE repeatedly orders the clusters by the contents of their (virtual)
term chunks and merges adjacent pairs until no merge is applied.

The default driver is incremental, cache-aware and optionally parallel,
with **bit-for-bit identical output** to the reference formulation (which
is preserved behind ``memoize=False`` and exercised by the equivalence
suite):

* rejected merge attempts are **memoized** (:class:`MergeMemo`) keyed by
  the pair's ``(identity, virtual-term-chunk)`` fingerprints -- a failed
  attempt never mutates its inputs and a successful merge consumes both
  members, so later passes can skip every pair whose fingerprints did not
  change;
* per-leaf term bitmasks are built **once per refine call**
  (:class:`_JointMaskBuilder` + the driver's mask cache) instead of
  re-encoding every leaf's records on every attempt and every hold-back
  iteration, and the hold-back loop shrinks an accepted shared-chunk
  domain via :meth:`BitsetChunkChecker.remove` when a full re-selection is
  provably identical;
* with ``jobs > 1`` (or an explicit ``executor``) the merge *attempts* of
  a pass are evaluated speculatively over a process pool and replayed
  sequentially -- attempts are read-only and adjacent pairs touch disjoint
  leaves, so the replay applies exactly the merges the serial walk would.
"""

from __future__ import annotations

import os
from bisect import insort
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional

from repro.core.anonymity import (
    BitsetChunkChecker,
    is_k_anonymous,
    is_km_anonymous,
    validate_km_parameters,
)
from repro.core import kernels
from repro.core.clusters import Cluster, JointCluster, SharedChunk, SimpleCluster, TermChunk
from repro.core.vocab import SubrecordArena, cluster_masks, iter_mask_bits
from repro.exceptions import RefinementError


@dataclass
class MergeOutcome:
    """Result of attempting to merge two clusters.

    Attributes:
        joint: the new joint cluster, or ``None`` when the merge was rejected.
        refining_terms: the terms that were lifted into shared chunks.
        reason: human-readable explanation when the merge was rejected.
    """

    joint: Optional[JointCluster]
    refining_terms: frozenset = frozenset()
    reason: str = ""


def effective_jobs(requested: int) -> int:
    """The worker-process count actually used for a requested ``jobs`` value.

    Capped at ``os.cpu_count()``: oversubscribing a host with more worker
    processes than cores is pure scheduling and IPC overhead (the committed
    ``BENCH_speedup.json`` measured ``jobs=4`` 1.16x *slower* end to end on
    a 1-CPU host).  When the effective value is 1 no process pool is set up
    at all.  Shared by the engine's pool sizing and :func:`refine`'s own
    ``jobs`` handling so the capping policy cannot drift between them.
    """
    return max(1, min(requested, os.cpu_count() or 1))


@dataclass
class RefineStats:
    """Per-run REFINE counters (surfaced on the engine report and benchmarks).

    Attributes:
        passes: merge passes executed.
        pairs_considered: adjacent pairs visited by the merge walks.
        merges_attempted: full merge attempts evaluated (with ``jobs > 1``
            this counts speculative evaluations, some of which the replay
            never consumes).
        merges_applied: attempts that produced a joint cluster.
        skipped_by_memo: pairs skipped because an identical attempt was
            already rejected in an earlier pass.
        prefiltered: pairs rejected by the cheap pre-checks (disjoint
            virtual term chunks, ``max_join_size``) without building chunks.
        pairs_waved: serial merge attempts whose pairwise k^m verdicts came
            out of a per-pass :class:`~repro.core.kernels.WaveBatch` matrix.
        wave_fallbacks: serial merge attempts evaluated per pair instead
            (python backend, ``m != 2``, no eligible term, or a pass whose
            total rows stayed under the packed crossover).
    """

    passes: int = 0
    pairs_considered: int = 0
    merges_attempted: int = 0
    merges_applied: int = 0
    skipped_by_memo: int = 0
    prefiltered: int = 0
    pairs_waved: int = 0
    wave_fallbacks: int = 0

    def as_dict(self) -> dict:
        """The counters as a plain dict (machine-readable perf output)."""
        return {
            "passes": self.passes,
            "pairs_considered": self.pairs_considered,
            "merges_attempted": self.merges_attempted,
            "merges_applied": self.merges_applied,
            "skipped_by_memo": self.skipped_by_memo,
            "prefiltered": self.prefiltered,
            "pairs_waved": self.pairs_waved,
            "wave_fallbacks": self.wave_fallbacks,
        }


# --------------------------------------------------------------------------- #
# helpers on (simple | joint) clusters
# --------------------------------------------------------------------------- #
def virtual_term_chunk(cluster: Cluster) -> frozenset:
    """Union of the term chunks of the cluster's leaf simple clusters.

    For a simple cluster this is just its own term chunk; for joint clusters
    it is the "virtual term chunk" REFINE attaches before ordering.
    """
    if isinstance(cluster, SimpleCluster):
        return frozenset(cluster.term_chunk.terms)
    return cluster.term_chunk_terms()


def cluster_size(cluster: Cluster) -> int:
    """Number of original records represented by a (simple or joint) cluster."""
    return cluster.size


def _leaves_with_originals(cluster: Cluster) -> list[SimpleCluster]:
    leaves = cluster.leaves()
    for leaf in leaves:
        if leaf.original_records is None:
            raise RefinementError(
                f"cluster {leaf.label!r} has no original records attached; "
                "refinement requires clusters produced by vertical_partition"
            )
    return leaves


def _liftable_supports(cluster: Cluster, cache: Optional[dict]) -> dict:
    """Total liftable support of each of the cluster's term-chunk terms.

    For every term in a leaf's term chunk this sums the term's support over
    that leaf's original records; because the joint row axis concatenates
    the leaves, a refining term's *joint* support is exactly
    ``supports_left[t] + supports_right[t]``.  The dict is immutable for a
    surviving top-level cluster (only successful merges touch term chunks,
    and they consume both members), so the driver caches it per cluster and
    merge attempts decide term eligibility with two dict lookups instead of
    assembling joint masks.
    """
    if cache is not None:
        entry = cache.get(id(cluster))
        if entry is not None:
            return entry
    supports: dict = {}
    for leaf in cluster.leaves():
        masks, _num_rows = cluster_masks(leaf)
        for term in leaf.term_chunk.terms:
            mask = masks.get(term)
            if mask:
                supports[term] = supports.get(term, 0) + mask.bit_count()
    if cache is not None:
        cache[id(cluster)] = supports
    return supports


# --------------------------------------------------------------------------- #
# rejected-attempt memoization
# --------------------------------------------------------------------------- #
class MergeMemo:
    """Remembers rejected merge attempts between cluster pairs.

    A pair is keyed by both members' **state fingerprints**: the cluster's
    identity plus its current virtual term chunk.  A rejected attempt never
    mutates its inputs, so as long as both fingerprints are unchanged the
    attempt would be rejected again and can be skipped.  A *successful*
    merge lifts terms out of the members' leaf term chunks, which changes
    the virtual term chunk of every cluster built on those leaves -- stale
    rejections therefore miss automatically (memo invalidation).
    """

    __slots__ = ("_rejected",)

    def __init__(self):
        self._rejected: set = set()

    def __len__(self) -> int:
        return len(self._rejected)

    @staticmethod
    def _fingerprint(cluster: Cluster, vtc_map: Optional[dict]) -> tuple:
        if vtc_map is not None:
            vtc = vtc_map.get(id(cluster))
            if vtc is not None:
                return (id(cluster), vtc)
        return (id(cluster), virtual_term_chunk(cluster))

    @classmethod
    def _key(cls, left: Cluster, right: Cluster, vtc_map: Optional[dict]) -> tuple:
        a = cls._fingerprint(left, vtc_map)
        b = cls._fingerprint(right, vtc_map)
        # Rejection is symmetric in the pair (chunk selection only depends on
        # row/term multisets), so normalize the key on the identity part.
        return (a, b) if a[0] <= b[0] else (b, a)

    def is_rejected(
        self, left: Cluster, right: Cluster, vtc_map: Optional[dict] = None
    ) -> bool:
        """True when this exact pair state was already rejected."""
        return self._key(left, right, vtc_map) in self._rejected

    def record_rejection(
        self, left: Cluster, right: Cluster, vtc_map: Optional[dict] = None
    ) -> None:
        """Record a rejected attempt for the pair's current fingerprints."""
        self._rejected.add(self._key(left, right, vtc_map))


# --------------------------------------------------------------------------- #
# shared-chunk construction
# --------------------------------------------------------------------------- #
class _ProjectionClasses:
    """Distinct-projection row classes as bitmasks (Property-1 k-anonymity).

    Rows with identical projections onto the accepted terms form one class;
    a class is represented by the bitmask of its rows, and rows whose
    projection is still empty live in a separate (uncounted) pool.  Adding
    a term splits every class on the term's mask, so the k-anonymity check
    for a candidate is one AND + popcount per class instead of rebuilding a
    Counter of frozenset projections over every row.
    """

    __slots__ = ("_classes", "_empty")

    def __init__(self, num_rows: int, accepted_masks=()):
        self._classes: list[int] = []
        self._empty = (1 << num_rows) - 1
        for mask in accepted_masks:
            self.split_on(mask)

    def split_on(self, term_mask: int) -> None:
        """Refine the classes after a term is accepted into the domain."""
        split: list[int] = []
        for rows in self._classes:
            inside = rows & term_mask
            outside = rows ^ inside
            if inside:
                split.append(inside)
            if outside:
                split.append(outside)
        fresh = self._empty & term_mask
        if fresh:
            split.append(fresh)
            self._empty ^= fresh
        self._classes = split

    def k_anonymous_with(self, term_mask: int, k: int) -> bool:
        """Would every non-empty projection still occur >= k times if the
        term were accepted?  (Exactly the reference check: each class splits
        into rows gaining the term and rows keeping their projection, and
        empty-projection rows gaining the term form one new class.)"""
        for rows in self._classes:
            inside = rows & term_mask
            if inside and inside.bit_count() < k:
                return False
            outside = rows ^ inside
            if outside and outside.bit_count() < k:
                return False
        fresh = self._empty & term_mask
        if fresh and fresh.bit_count() < k:
            return False
        return True


class _JointMaskBuilder:
    """Bitmask view of a prospective joint cluster's liftable rows.

    Per-leaf term masks (term -> bitmask over the leaf's original records)
    come from the weak per-cluster cache (:func:`repro.core.vocab.cluster_masks`,
    warmed by VERPART), and every merge attempt assembles joint masks by
    shifting the leaf masks onto a shared row axis.  This replaces the
    per-attempt (and per-hold-back-iteration) re-encoding of every leaf's
    records.
    """

    __slots__ = ("_sources", "num_rows", "_arena")

    def __init__(
        self,
        leaves: Sequence[SimpleCluster],
        arena: Optional[SubrecordArena] = None,
    ):
        self._sources: list[tuple[SimpleCluster, dict, int, int]] = []
        self._arena = arena
        offset = 0
        for leaf in leaves:
            masks, num_rows = cluster_masks(leaf)
            self._sources.append((leaf, masks, offset, num_rows))
            offset += num_rows
        self.num_rows = offset

    def joint_masks(self, candidates) -> dict:
        """Joint row bitmasks of the candidate terms.

        A leaf contributes a term's rows only when the term lies in *its
        own* term chunk (so a record never feeds the same association into
        both a record chunk and a shared chunk).
        """
        joint: dict = {}
        for leaf, masks, offset, _num_rows in self._sources:
            for term in leaf.term_chunk.terms & candidates:
                mask = masks.get(term)
                if mask:
                    joint[term] = joint.get(term, 0) | (mask << offset)
        return joint

    def select_domains(
        self, candidates: frozenset, restricted_terms: frozenset, k: int, m: int
    ) -> tuple[list[frozenset], Optional[BitsetChunkChecker], bool, dict]:
        """Greedy shared-chunk domain selection over the joint masks.

        Assembles the joint masks for ``candidates`` and delegates to
        :func:`_select_domains_from_masks`; ``supports`` maps each
        positive-support candidate to its joint support (which for a placed
        term equals its support inside its shared chunk, so the Equation-1
        criterion never needs materialized chunks).
        """
        masks = self.joint_masks(candidates)
        supports = {term: mask.bit_count() for term, mask in masks.items()}
        domains, checker, single_round = _select_domains_from_masks(
            masks, self.num_rows, supports, restricted_terms, k, m
        )
        return domains, checker, single_round, supports

    def build_chunks(
        self, domains: Sequence[frozenset]
    ) -> tuple[list[SharedChunk], frozenset]:
        """Materialize the shared chunks for the selected domains.

        Sub-records are reassembled from the cached leaf masks in original
        record order, with per-leaf contribution counts in leaf order --
        exactly what projecting every record would produce.  On the numpy
        kernel backend, leaves of at least
        :func:`~repro.core.kernels.packed_min_rows` rows assemble through
        :func:`~repro.core.kernels.assemble_subrecords` (one ``unpackbits``
        over the packed row matrix) instead of per-row bigint shifts.  When
        the builder carries a :class:`~repro.core.vocab.SubrecordArena`
        (the driver threads one per refine call), smaller leaves assemble
        one *interned* sub-record per distinct row pattern instead of one
        fresh frozenset per row -- the arena canonical instances are reused
        across merge attempts and passes.  The produced sub-records are
        identical on every path.
        """
        packed_assembly = kernels.resolve(None) == "numpy"
        packed_rows = kernels.packed_min_rows()
        arena = self._arena
        shared_chunks: list[SharedChunk] = []
        placed: set = set()
        for domain in domains:
            subrecords: list[frozenset] = []
            contributions: dict = {}
            for leaf, masks, _offset, leaf_rows in self._sources:
                term_masks = []
                or_mask = 0
                for term in domain & leaf.term_chunk.terms:
                    mask = masks.get(term, 0)
                    if mask:
                        term_masks.append((term, mask))
                        or_mask |= mask
                count = or_mask.bit_count()
                contributions[leaf.label] = count
                # iter_mask_bits yields rows in increasing order, i.e. the
                # leaf's original record order.
                if len(term_masks) == 1:
                    # One liftable term: every sub-record is the same
                    # singleton (shared, like the projections would be).
                    subrecords.extend([frozenset((term_masks[0][0],))] * count)
                elif packed_assembly and leaf_rows >= packed_rows:
                    subrecords.extend(
                        kernels.assemble_subrecords(term_masks, leaf_rows)
                    )
                elif arena is not None:
                    subrecords.extend(
                        arena.subrecords_for(term_masks, or_mask, count)
                    )
                else:
                    subrecords.extend(
                        frozenset(t for t, mask in term_masks if (mask >> row) & 1)
                        for row in iter_mask_bits(or_mask)
                    )
            shared_chunks.append(
                SharedChunk._from_normalized(domain, subrecords, contributions)
            )
            placed.update(domain)
        return shared_chunks, frozenset(placed)


def _select_domains_from_masks(
    masks: dict,
    num_rows: int,
    supports: dict,
    restricted_terms: frozenset,
    k: int,
    m: int,
    wave: Optional[tuple] = None,
    order: Optional[Sequence] = None,
) -> tuple[list[frozenset], Optional[BitsetChunkChecker], bool]:
    """Greedy shared-chunk domain selection over prebuilt joint masks.

    Identical decisions to the reference selector: candidates are taken in
    decreasing joint-support order, a candidate joins the current domain
    when the chunk stays k^m-anonymous (plus plainly k-anonymous once the
    domain touches ``restricted_terms``), and skipped candidates seed the
    next domain.

    ``order`` optionally hands in the candidate order the driver already
    sorted (all with support >= k); ``wave`` optionally hands in the pair's
    wave verdicts as ``(bits, bad)`` -- term -> wave bit index, and the
    per-term "bad partner" bitmasks from the pass-wide
    :class:`~repro.core.kernels.WaveBatch` sweep (``None`` when the pair
    has no sub-``k`` term pair at all).  With a wave, the pairwise
    AND + popcount loop collapses to one small-int test per candidate; the
    decisions are the same comparisons, precomputed.

    Returns ``(domains, last_checker, single_round)``; ``single_round`` is
    ``True`` when the very first round accepted every eligible candidate
    (one domain, nothing skipped), the precondition of the hold-back fast
    path.
    """
    if order is not None:
        # The driver's precomputed decreasing-support order; the hold-back
        # loop re-selects over fewer terms, so filter while preserving the
        # relative order (identical to re-sorting on the same key).
        if len(order) == len(supports):
            remaining = list(order)
        else:
            remaining = [t for t in order if t in supports]
    else:
        # A term with joint support < k can never join any domain (its
        # singleton combination is already sub-k); dropping such terms here
        # skips their per-round re-evaluation without changing a single
        # accept/skip decision.
        remaining = sorted(
            (t for t in supports if supports[t] >= k),
            key=lambda t: (-supports[t], t),
        )
    num_candidates = len(remaining)

    # The m <= 2 case (the paper's default) inlines the k^m check to a
    # local loop over the accepted masks: every remaining term already has
    # singleton support >= k, so only the pairwise AND + popcounts are
    # left.  m >= 3 keeps the checker's pruned DFS.  Decisions are
    # identical in both shapes.
    fast_pairs = m <= 2
    use_wave = wave is not None and m == 2
    if use_wave:
        wave_bits, wave_bad = wave
    domains: list[frozenset] = []
    checker: Optional[BitsetChunkChecker] = None
    while remaining:
        if not fast_pairs:
            if checker is None:
                checker = BitsetChunkChecker(
                    masks, k, m, share_masks=True, num_rows=num_rows
                )
            else:
                # Only the accepted batch changes between rounds; reusing
                # the checker keeps the packed mask matrix (numpy backend)
                # built once instead of re-serialized per domain.
                checker.reset()
        # Distinct-projection row classes feed the Property-1 k-anonymity
        # check; they are materialized only when a candidate actually
        # touches `restricted_terms` (most pairs never do).
        classes: Optional[_ProjectionClasses] = None
        accepted: list = []
        accepted_masks: list = []
        accepted_bits = 0
        skipped: list = []
        touches_restricted = False
        for term in remaining:
            mask = masks[term]
            if use_wave:
                ok = wave_bad is None or not (wave_bad[wave_bits[term]] & accepted_bits)
            elif fast_pairs:
                ok = True
                if m == 2:
                    for prior in accepted_masks:
                        intersection = mask & prior
                        if intersection and intersection.bit_count() < k:
                            ok = False
                            break
            else:
                ok = checker.would_remain_anonymous(term)
            if ok and (touches_restricted or term in restricted_terms):
                if classes is None:
                    classes = _ProjectionClasses(num_rows, accepted_masks)
                ok = classes.k_anonymous_with(mask, k)
            if not ok:
                skipped.append(term)
                continue
            accepted.append(term)
            accepted_masks.append(mask)
            if use_wave:
                accepted_bits |= 1 << wave_bits[term]
            elif not fast_pairs:
                checker.add(term)
            if term in restricted_terms:
                touches_restricted = True
            if classes is not None:
                classes.split_on(mask)
        if not accepted:
            break
        domains.append(frozenset(accepted))
        remaining = skipped
    single_round = len(domains) == 1 and len(domains[0]) == num_candidates
    if single_round and checker is None:
        # The hold-back fast path shrinks the accepted domain through the
        # checker; synthesize one for the inlined m <= 2 rounds.
        checker = BitsetChunkChecker(masks, k, m, share_masks=True, num_rows=num_rows)
        for term in domains[0]:
            checker.add(term)
    return domains, checker, single_round


def build_shared_chunks(
    leaves: Sequence[SimpleCluster],
    refining_terms: frozenset,
    restricted_terms: frozenset,
    k: int,
    m: int,
    use_bitsets: bool = True,
) -> tuple[list[SharedChunk], frozenset]:
    """Greedily build shared chunks over ``refining_terms``.

    Each leaf contributes the projection of its original records onto the
    part of the refining terms that lies in *its own* term chunk (so a
    record never contributes the same association to both a record chunk and
    a shared chunk).

    Args:
        leaves: the simple clusters under the prospective joint cluster.
        refining_terms: candidate terms to lift out of the term chunks.
        restricted_terms: the ``T^r`` of Property 1 (terms appearing in
            record or shared chunks of the descendant clusters); a shared
            chunk touching any of them must be k-anonymous.
        k, m: anonymity parameters.
        use_bitsets: select chunk domains over term bitmasks (AND + popcount
            per combination) instead of re-projecting every record per
            candidate.  Both selectors make identical greedy decisions; the
            reference selector is kept as the verification baseline.

    Returns:
        ``(shared_chunks, placed_terms)`` where ``placed_terms`` are the
        refining terms that actually made it into a shared chunk (the rest
        stay in the term chunks).
    """
    validate_km_parameters(k, m)
    if use_bitsets:
        builder = _JointMaskBuilder(leaves)
        domains, _checker, _single, _supports = builder.select_domains(
            frozenset(refining_terms), restricted_terms, k, m
        )
        return builder.build_chunks(domains)

    # Reference path: full re-projection of every record.
    per_leaf_sources: list[tuple[SimpleCluster, list[frozenset]]] = []
    for leaf in leaves:
        liftable = leaf.term_chunk.terms & refining_terms
        originals = leaf.original_records or []
        per_leaf_sources.append(
            (leaf, [record & liftable for record in originals])
        )

    rows = [record for _leaf, records in per_leaf_sources for record in records]
    domains = _select_domains_reference(rows, refining_terms, restricted_terms, k, m)

    shared_chunks: list[SharedChunk] = []
    placed: set = set()
    for domain in domains:
        subrecords: list[frozenset] = []
        contributions: dict = {}
        for leaf, records in per_leaf_sources:
            leaf_subrecords = [record & domain for record in records]
            non_empty = [p for p in leaf_subrecords if p]
            contributions[leaf.label] = len(non_empty)
            subrecords.extend(non_empty)
        shared_chunks.append(SharedChunk(domain, subrecords, contributions))
        placed.update(domain)
    return shared_chunks, frozenset(placed)


def _select_domains_reference(
    rows: Sequence[frozenset],
    refining_terms: frozenset,
    restricted_terms: frozenset,
    k: int,
    m: int,
) -> list[frozenset]:
    """Reference greedy domain selection: full re-projection per candidate."""
    supports: Counter = Counter()
    for projection in rows:
        supports.update(projection)

    remaining = sorted(
        (t for t in refining_terms if supports[t] > 0),
        key=lambda t: (-supports[t], t),
    )

    domains: list[frozenset] = []
    while remaining:
        accepted: list[str] = []
        skipped: list[str] = []
        for term in remaining:
            candidate = frozenset(accepted) | {term}
            projections = [record & candidate for record in rows]
            non_empty = [p for p in projections if p]
            anonymous = is_km_anonymous(non_empty, k, m)
            if anonymous and candidate & restricted_terms:
                anonymous = is_k_anonymous(non_empty, k)
            if anonymous:
                accepted.append(term)
            else:
                skipped.append(term)
        if not accepted:
            break
        domains.append(frozenset(accepted))
        remaining = skipped
    return domains


def _candidate_is_k_anonymous(
    row_projections: Sequence[set], term_mask: int, term, k: int
) -> bool:
    """k-anonymity of the row projections if ``term`` were accepted.

    Every distinct non-empty projection (current accepted terms, plus
    ``term`` for the rows whose bit is set in ``term_mask``) must occur at
    least ``k`` times.
    """
    counts: Counter = Counter()
    for row_index, projection in enumerate(row_projections):
        if (term_mask >> row_index) & 1:
            counts[frozenset(projection) | {term}] += 1
        elif projection:
            counts[frozenset(projection)] += 1
    return all(count >= k for count in counts.values())


# --------------------------------------------------------------------------- #
# Equation-1 merge criterion
# --------------------------------------------------------------------------- #
def merge_criterion(
    shared_chunks: Sequence[SharedChunk],
    refining_terms: frozenset,
    leaves: Sequence[SimpleCluster],
    joint_size: int,
) -> bool:
    """Equation 1 of the paper: accept the merge when lifting the refining
    terms into shared chunks attributes them to records at least as
    confidently as leaving them in the member term chunks.

    The left-hand side is the total support of the refining terms inside the
    new shared chunks divided by the joint-cluster size; the right-hand side
    is the number of refining-term occurrences in the member term chunks
    divided by the total size of the members that contain them.
    """
    if joint_size == 0 or not refining_terms:
        return False
    lhs_numerator = 0
    for chunk in shared_chunks:
        chunk_supports = chunk.term_supports()
        lhs_numerator += sum(chunk_supports.get(t, 0) for t in refining_terms)
    lhs = lhs_numerator / joint_size

    rhs_numerator = 0
    rhs_denominator = 0
    for leaf in leaves:
        present = leaf.term_chunk.terms & refining_terms
        if present:
            rhs_numerator += len(present)
            rhs_denominator += leaf.size
    if rhs_denominator == 0:
        return False
    rhs = rhs_numerator / rhs_denominator
    return lhs >= rhs


# --------------------------------------------------------------------------- #
# merging a pair of clusters
# --------------------------------------------------------------------------- #
def try_merge(
    left: Cluster,
    right: Cluster,
    k: int,
    m: int,
    max_join_size: Optional[int] = None,
    excluded_terms: frozenset = frozenset(),
    use_bitsets: bool = True,
    support_cache: Optional[dict] = None,
    _refining_candidates: Optional[frozenset] = None,
    _leaves: Optional[list] = None,
    _restricted_parts: Optional[tuple] = None,
    _pair_masks: Optional[tuple] = None,
    _waved: Optional[tuple] = None,
    _arena: Optional[SubrecordArena] = None,
) -> MergeOutcome:
    """Attempt to merge two clusters into a joint cluster.

    The refining terms are the terms shared by the two (virtual) term
    chunks.  The merge is applied only when at least one shared chunk can be
    built, the Equation-1 criterion holds, and every leaf cluster still
    satisfies Lemma 2 after the lifted terms leave its term chunk.
    ``max_join_size`` caps the size (in original records) of the resulting
    joint cluster: building shared chunks re-projects every leaf's records,
    so unbounded joint growth would make refinement quadratic in the dataset
    size while adding little utility (Equation 1's left-hand side shrinks as
    the joint grows).  ``excluded_terms`` are never lifted (used for
    sensitive terms, which must stay in term chunks for l-diversity).
    ``support_cache`` optionally shares per-cluster liftable supports
    across attempts (the driver passes one per refine call).
    """
    # A wave table certifies the pair already cleared the size cap and the
    # common-candidate check in the pass-wide pre-pass; re-deriving either
    # here would only repeat those exact computations.
    refining_candidates = _refining_candidates
    if _waved is None:
        if max_join_size is not None and (
            cluster_size(left) + cluster_size(right) > max_join_size
        ):
            return MergeOutcome(None, reason="joint cluster would exceed max_join_size")
        # `_refining_candidates` lets the driver hand over the intersection
        # it already computed from its per-cluster virtual-term-chunk cache.
        if refining_candidates is None:
            refining_candidates = (
                virtual_term_chunk(left) & virtual_term_chunk(right)
            ) - excluded_terms
        if not refining_candidates:
            return MergeOutcome(None, reason="no common term-chunk terms")

    joint_size = cluster_size(left) + cluster_size(right)
    leaves = _leaves if _leaves is not None else (
        _leaves_with_originals(left) + _leaves_with_originals(right)
    )

    if use_bitsets:
        restricted = (
            _restricted_parts[0] | _restricted_parts[1]
            if _restricted_parts is not None
            else left.record_chunk_terms() | right.record_chunk_terms()
        )
        wave = None
        order = None
        if _waved is not None:
            # The pass-wide wave already computed this pair's eligible
            # supports, joint masks, candidate order and pairwise verdicts;
            # consume them instead of rebuilding any of it.  Only consumed
            # pairs pay for the mask dict and bit positions -- tables the
            # walk skips past (their neighbour merged first) stay as the
            # matrix slice they were born as.
            row_words, num_rows, eligible_supports, order, bad = _waved
            pair_masks = dict(zip(order, row_words))
            bits = {term: position for position, term in enumerate(order)}
            wave = (bits, bad)
        else:
            # Eligibility first: a refining term's joint support is the sum
            # of the members' liftable supports, so terms that cannot reach
            # k -- and pairs with no eligible term at all -- are rejected
            # from two cached dicts before any joint mask is assembled.
            supports_left = _liftable_supports(left, support_cache)
            supports_right = _liftable_supports(right, support_cache)
            eligible_supports = {}
            get_left = supports_left.get
            get_right = supports_right.get
            for term in refining_candidates:
                support = get_left(term, 0) + get_right(term, 0)
                if support >= k:
                    eligible_supports[term] = support
            if not eligible_supports:
                return MergeOutcome(
                    None, reason="no k^m-anonymous shared chunk could be built"
                )
            if _pair_masks is not None:
                # Cluster-level masks from the driver: the pair's joint
                # masks are two dict probes and a shift per eligible term,
                # and the eligibility sums double as the selection supports.
                (masks_left, rows_left), (masks_right, rows_right) = _pair_masks
                pair_masks = {
                    term: masks_left.get(term, 0)
                    | (masks_right.get(term, 0) << rows_left)
                    for term in eligible_supports
                }
                num_rows = rows_left + rows_right
            else:
                pair_masks = None
                num_rows = None
        eligible = frozenset(eligible_supports)
        # Domains are selected first and the Equation-1 criterion is
        # evaluated straight from the joint-support popcounts; the shared
        # chunks are materialized only for accepted merges (rejected
        # attempts never pay for sub-record assembly).
        domains, placed, supports, failure = _select_chunks_bitset(
            leaves, eligible, restricted, k, m,
            masks=pair_masks, num_rows=num_rows,
            supports=eligible_supports if pair_masks is not None else None,
            wave=wave, order=order,
        )
        if failure:
            return MergeOutcome(None, reason=failure)
        if not _criterion_from_supports(supports, placed, leaves, joint_size):
            return MergeOutcome(None, reason="Equation-1 criterion rejected the merge")
        shared_chunks, placed = _JointMaskBuilder(leaves, arena=_arena).build_chunks(
            domains
        )
    else:
        restricted = left.record_chunk_terms() | right.record_chunk_terms()
        shared_chunks, placed, failure = _build_chunks_reference(
            leaves, refining_candidates, restricted, k, m
        )
        if failure:
            return MergeOutcome(None, reason=failure)
        if not merge_criterion(shared_chunks, placed, leaves, joint_size):
            return MergeOutcome(None, reason="Equation-1 criterion rejected the merge")

    # The lifted terms leave the member term chunks.
    for leaf in leaves:
        terms = leaf.term_chunk.terms
        if terms & placed:
            leaf.term_chunk = TermChunk(terms - placed)

    joint = JointCluster(
        children=[left, right],
        shared_chunks=shared_chunks,
        label=f"J[{left.label}+{right.label}]",
    )
    return MergeOutcome(joint, refining_terms=placed)


def _select_chunks_bitset(
    leaves: Sequence[SimpleCluster],
    refining_candidates: frozenset,
    restricted: frozenset,
    k: int,
    m: int,
    masks: Optional[dict] = None,
    num_rows: Optional[int] = None,
    supports: Optional[dict] = None,
    wave: Optional[tuple] = None,
    order: Optional[Sequence] = None,
) -> tuple[list[frozenset], frozenset, dict, str]:
    """Shared-chunk domain selection with the Lemma-2 hold-back loop (bitsets).

    Terms whose lifting would leave a leaf with an empty term chunk it
    cannot afford (Lemma 2) are held back and the selection repeats; the
    paper's fallback applies, so the loop terminates.  When the previous
    selection accepted *every* eligible candidate into a single domain, a
    re-selection over the shrunken candidate set provably accepts exactly
    the previous domain minus the held-back terms (k^m-anonymity is
    monotone under a smaller accepted set, and sub-record k-anonymity is
    preserved under projection onto fewer terms) -- so the domain is
    shrunk in place via :meth:`BitsetChunkChecker.remove` instead of
    re-running the greedy selection.

    ``masks`` / ``num_rows`` / ``supports`` may be handed in prebuilt (the
    driver derives them from its per-cluster caches); otherwise they are
    assembled from the leaves once.  The masks are never rebuilt across
    hold-back iterations: liftability cannot change mid-attempt, so a
    shrunken candidate set only restricts which keys the selection reads.

    Returns ``(domains, placed, supports, failure_reason)``; the caller
    materializes the chunks only when the merge is actually accepted.
    """
    if masks is None:
        builder = _JointMaskBuilder(leaves)
        masks = builder.joint_masks(refining_candidates)
        num_rows = builder.num_rows
        supports = {term: mask.bit_count() for term, mask in masks.items()}
    domains: list[frozenset] = []
    checker: Optional[BitsetChunkChecker] = None
    single_round = False
    have_selection = False
    round_supports = supports
    while refining_candidates:
        if have_selection and single_round and checker is not None:
            accepted = checker.accepted_terms
            domains = [accepted] if accepted else []
        else:
            if have_selection:  # hold-back re-selection over fewer terms
                round_supports = {
                    term: supports[term]
                    for term in refining_candidates
                    if term in supports
                }
            domains, checker, single_round = _select_domains_from_masks(
                masks, num_rows, round_supports, restricted, k, m,
                wave=wave, order=order,
            )
            have_selection = True
        placed = frozenset().union(*domains) if domains else frozenset()
        if not placed:
            return [], frozenset(), supports, (
                "no k^m-anonymous shared chunk could be built"
            )
        at_risk = _leaves_needing_a_term(leaves, placed, k, m)
        if not at_risk:
            return domains, placed, supports, ""
        held_back = _hold_back_terms(at_risk, placed)
        refining_candidates = refining_candidates - held_back
        if single_round and checker is not None:
            for term in held_back:
                checker.remove(term)
    return [], frozenset(), supports, (
        "every refining term is needed by a leaf's term chunk"
    )


def _criterion_from_supports(
    supports: dict,
    placed: frozenset,
    leaves: Sequence[SimpleCluster],
    joint_size: int,
) -> bool:
    """Equation 1 evaluated from the joint-support popcounts.

    A placed term's support inside its shared chunk equals its joint mask's
    popcount (the chunk's sub-records are exactly the rows whose projection
    is non-empty), so the left-hand side of :func:`merge_criterion` is the
    sum of the placed supports -- no chunk materialization needed.
    """
    if joint_size == 0 or not placed:
        return False
    lhs = sum(supports.get(term, 0) for term in placed) / joint_size

    rhs_numerator = 0
    rhs_denominator = 0
    for leaf in leaves:
        present = leaf.term_chunk.terms & placed
        if present:
            rhs_numerator += len(present)
            rhs_denominator += leaf.size
    if rhs_denominator == 0:
        return False
    return lhs >= rhs_numerator / rhs_denominator


def _build_chunks_reference(
    leaves: Sequence[SimpleCluster],
    refining_candidates: frozenset,
    restricted: frozenset,
    k: int,
    m: int,
) -> tuple[list[SharedChunk], frozenset, str]:
    """Reference shared-chunk construction with the Lemma-2 hold-back loop."""
    shared_chunks: list[SharedChunk] = []
    placed: frozenset = frozenset()
    while refining_candidates:
        shared_chunks, placed = build_shared_chunks(
            leaves, refining_candidates, restricted, k, m, use_bitsets=False
        )
        if not shared_chunks or not placed:
            return [], frozenset(), "no k^m-anonymous shared chunk could be built"
        at_risk = _leaves_needing_a_term(leaves, placed, k, m)
        if not at_risk:
            return shared_chunks, placed, ""
        held_back = _hold_back_terms(at_risk, placed)
        refining_candidates = refining_candidates - held_back
    return [], frozenset(), "every refining term is needed by a leaf's term chunk"


def _leaves_needing_a_term(
    leaves: Sequence[SimpleCluster], placed: frozenset, k: int, m: int
) -> list[SimpleCluster]:
    """Leaves that would violate Lemma 2 if ``placed`` left their term chunks.

    A leaf is at risk when lifting empties its term chunk and its record
    chunks alone do not reach the Lemma-2 sub-record bound (paper, Lemma 2:
    a non-empty term chunk or enough sub-records).
    """
    from repro.core.vertical import subrecord_bound

    at_risk: list[SimpleCluster] = []
    for leaf in leaves:
        remaining = leaf.term_chunk.terms - placed
        if remaining:
            continue
        if not leaf.record_chunks:
            if leaf.size > 0:
                at_risk.append(leaf)
            continue
        needed = subrecord_bound(leaf.size, k, m, len(leaf.record_chunks))
        if leaf.total_subrecords() < needed:
            at_risk.append(leaf)
    return at_risk


def _hold_back_terms(at_risk: Sequence[SimpleCluster], placed: frozenset) -> frozenset:
    """For every at-risk leaf, pick one of its term-chunk terms to keep local.

    The held-back terms are removed from the refining candidates so the
    leaf's term chunk stays non-empty after the merge.  Choosing the
    lexicographically smallest term keeps the procedure deterministic.
    """
    held: set = set()
    for leaf in at_risk:
        liftable = sorted(leaf.term_chunk.terms & placed)
        if liftable:
            held.add(liftable[0])
    # Guard against a pathological empty selection (cannot happen when the
    # leaf was flagged because of `placed`, but keeps the caller's loop safe).
    return frozenset(held) if held else frozenset(placed and {sorted(placed)[0]})


# --------------------------------------------------------------------------- #
# the REFINE driver
# --------------------------------------------------------------------------- #
def _ordering_key(cluster: Cluster, tcs: Counter) -> tuple:
    """Ordering key for REFINE: the (virtual) term chunk rendered as a tuple of
    terms sorted by descending term-chunk support, compared lexicographically."""
    return _ordering_key_for_terms(virtual_term_chunk(cluster), tcs)


def _ordering_key_for_terms(terms: frozenset, tcs: Counter) -> tuple:
    ordered = sorted(terms, key=lambda t: (-tcs[t], t))
    # Clusters with empty term chunks sort last: they have nothing to refine.
    return (len(ordered) == 0, tuple(ordered))


def _ordering_key_ranked(terms: frozenset, rank: dict) -> tuple:
    """Same key as :func:`_ordering_key_for_terms`, via a global rank table.

    ``rank`` orders every term by ``(-tcs[term], term)`` once per pass, so
    each cluster's terms sort on a single C-level int lookup instead of a
    tuple-building lambda; the produced key still holds the string terms,
    so cross-cluster comparisons are unchanged.
    """
    ordered = sorted(terms, key=rank.__getitem__)
    return (len(ordered) == 0, tuple(ordered))


def _repair_key_ranked(key: tuple, touched: frozenset, rank: dict) -> tuple:
    """Rebuild a cached ordering key after some of its terms moved rank.

    Terms whose support did not change keep their pairwise ``(-tcs,
    term)`` comparator values, so the cached tuple minus the touched
    terms is still sorted under the new ranks; each touched term
    re-enters at its new rank through one binary search instead of the
    whole cluster re-sorting.  Produces the exact tuple
    :func:`_ordering_key_ranked` would.
    """
    kept = [term for term in key[1] if term not in touched]
    get = rank.__getitem__
    for term in sorted(touched, key=get):
        insort(kept, term, key=get)
    return (not kept, tuple(kept))


def _prefilter(
    left: Cluster,
    right: Cluster,
    vtc_left: frozenset,
    vtc_right: frozenset,
    max_join_size: Optional[int],
    excluded_terms: frozenset,
) -> tuple[Optional[str], frozenset]:
    """Cheap rejection checks mirroring ``try_merge``'s first two gates.

    Returns ``(reason, refining_candidates)`` -- the single source of
    truth for both the sequential walk and the speculative dispatch, so
    the two skip-sets can never desynchronize.
    """
    candidates = (vtc_left & vtc_right) - excluded_terms
    if not candidates:
        return "no common term-chunk terms", candidates
    if max_join_size is not None and left.size + right.size > max_join_size:
        return "joint cluster would exceed max_join_size", candidates
    return None, candidates


def _pair_worker(payload):
    """Process-pool task: evaluate one speculative merge attempt.

    The pair travels as pickled cluster trees; only a compact outcome comes
    back (``None`` for a rejection, otherwise the placed terms plus the
    shared-chunk contents), and the parent re-applies the merge to its own
    objects.  The worker's mutations only touch its private copies.
    """
    left, right, k, m, max_join_size, excluded_terms, use_bitsets, candidates = payload
    outcome = try_merge(
        left,
        right,
        k,
        m,
        max_join_size=max_join_size,
        excluded_terms=excluded_terms,
        use_bitsets=use_bitsets,
        _refining_candidates=candidates,
    )
    if outcome.joint is None:
        return None
    return (
        outcome.refining_terms,
        [
            (chunk.domain, chunk.subrecords, chunk.contributions)
            for chunk in outcome.joint.shared_chunks
        ],
    )


def _apply_merge(left: Cluster, right: Cluster, placed: frozenset, chunk_payload) -> JointCluster:
    """Apply a worker-evaluated merge to the parent's own cluster objects.

    Mirrors the tail of :func:`try_merge`: lift the placed terms out of
    every leaf term chunk and wrap the pair in a joint cluster carrying the
    shared chunks the worker built.
    """
    for leaf in left.leaves() + right.leaves():
        terms = leaf.term_chunk.terms
        if terms & placed:
            leaf.term_chunk = TermChunk(terms - placed)
    shared = [
        SharedChunk(domain, subrecords, contributions)
        for domain, subrecords, contributions in chunk_payload
    ]
    return JointCluster(
        children=[left, right],
        shared_chunks=shared,
        label=f"J[{left.label}+{right.label}]",
    )


def _speculative_outcomes(
    ordered: Sequence[Cluster],
    vtcs: dict,
    memo: MergeMemo,
    k: int,
    m: int,
    max_join_size: Optional[int],
    excluded_terms: frozenset,
    use_bitsets: bool,
    pool,
    stats: RefineStats,
) -> Optional[dict]:
    """Evaluate every non-skippable adjacent pair of a pass over the pool.

    Attempts are read-only and adjacent pairs share no leaves, so outcomes
    computed against the pre-pass state stay valid wherever the sequential
    replay consumes them.  Returns ``{pair_index: worker_result}`` or
    ``None`` when the pool is unusable (callers fall back to serial).
    """
    indices: list[int] = []
    payloads: list[tuple] = []
    for index in range(len(ordered) - 1):
        left, right = ordered[index], ordered[index + 1]
        if memo.is_rejected(left, right, vtcs):
            continue
        reason, candidates = _prefilter(
            left, right, vtcs[id(left)], vtcs[id(right)], max_join_size, excluded_terms
        )
        if reason:
            continue
        indices.append(index)
        payloads.append(
            (left, right, k, m, max_join_size, excluded_terms, use_bitsets, candidates)
        )
    if not payloads:
        return {}
    stats.merges_attempted += len(payloads)
    try:
        # chunksize MUST stay 1: overlapping pairs share a cluster, and
        # pickling several payloads as one chunk would dedupe that shared
        # object in the worker -- a successful speculative merge for pair
        # (i, i+1) would then mutate the copy pair (i+1, i+2) is about to
        # read.  One payload per task gives every attempt isolated copies.
        results = list(pool.map(_pair_worker, payloads, chunksize=1))
    except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
        return None
    return dict(zip(indices, results))


class _LazyJointMasks:
    """Joint liftable masks of a merged pair, combined on first probe.

    ``register_joint`` used to combine both members' mask dicts eagerly --
    O(|terms|) shifts per applied merge even though later attempts probe
    only the few terms shared with the next partner's term chunk.  This
    view defers the combine to ``get`` and memoizes per term; chaining
    views over earlier views walks the merge tree, but each level is two
    dict probes and the memo flattens repeated paths.  Placed terms
    resolve to 0 (they left every member term chunk), mirroring their
    absence from the eager dict; callers only probe refining candidates,
    which never include placed terms.
    """

    __slots__ = ("_left", "_right", "_shift", "_placed", "_memo")

    def __init__(self, left, right, shift: int, placed: frozenset):
        self._left = left
        self._right = right
        self._shift = shift
        self._placed = placed
        self._memo: dict = {}

    def get(self, term, default=0):
        mask = self._memo.get(term)
        if mask is None:
            if term in self._placed:
                mask = 0
            else:
                mask = self._left.get(term, 0) | (
                    self._right.get(term, 0) << self._shift
                )
            self._memo[term] = mask
        return mask if mask else default


class _DriverState:
    """Per-refine-call caches over the surviving top-level clusters.

    Everything here is immutable for a surviving cluster (only successful
    merges mutate state, and they consume both members), keyed by object
    identity -- the result tree keeps every input cluster alive, so ids are
    stable for the duration of the call.  When a merge is applied, the
    joint's entries derive from its members in O(|terms|) instead of
    re-walking its leaves.
    """

    __slots__ = ("vtcs", "keys", "supports", "leaves", "restricted", "masks", "arena")

    def __init__(self, arena: Optional[SubrecordArena] = None):
        self.vtcs: dict = {}        # id -> virtual term chunk
        self.keys: dict = {}        # id -> ordering key
        self.supports: dict = {}    # id -> liftable supports (term -> count)
        self.leaves: dict = {}      # id -> validated leaf list
        self.restricted: dict = {}  # id -> record/shared-chunk terms
        self.masks: dict = {}       # id -> (liftable masks over own rows, num_rows)
        self.arena = arena if arena is not None else SubrecordArena()

    def seed(self, cluster: Cluster) -> None:
        """Fill the walk-derived entries for a not-yet-seen cluster."""
        cid = id(cluster)
        if cid not in self.vtcs:
            self.vtcs[cid] = virtual_term_chunk(cluster)
        if cid not in self.leaves:
            self.leaves[cid] = _leaves_with_originals(cluster)
        if cid not in self.restricted:
            self.restricted[cid] = cluster.record_chunk_terms()
        if cid not in self.masks:
            builder = _JointMaskBuilder(self.leaves[cid])
            self.masks[cid] = (
                builder.joint_masks(self.vtcs[cid]),
                builder.num_rows,
            )

    def register_joint(
        self, joint: JointCluster, left: Cluster, right: Cluster, placed: frozenset
    ) -> None:
        """Derive the joint's entries from its members (no leaf walks).

        The joint's leaves are the members' concatenated; its virtual term
        chunk is the members' union minus the lifted terms; its restricted
        set gains exactly the new shared-chunk domains (the placed terms);
        its liftable supports are the members' sums minus the placed terms
        (leaf masks are fixed, and the placed terms left every term chunk).
        """
        lid, rid = id(left), id(right)
        jid = id(joint)
        self.leaves[jid] = self.leaves[lid] + self.leaves[rid]
        self.vtcs[jid] = (self.vtcs[lid] | self.vtcs[rid]) - placed
        self.restricted[jid] = self.restricted[lid] | self.restricted[rid] | placed
        masks_left, rows_left = self.masks[lid]
        masks_right, rows_right = self.masks[rid]
        self.masks[jid] = (
            _LazyJointMasks(masks_left, masks_right, rows_left, placed),
            rows_left + rows_right,
        )
        # _liftable_supports fills a member's entry on the fly if the merge
        # came from a speculative worker (the parent never ran try_merge);
        # computed post-mutation it already excludes the placed terms, so
        # the removal below is simply a no-op in that case.
        joint_supports = dict(_liftable_supports(left, self.supports))
        get = joint_supports.get
        for term, support in _liftable_supports(right, self.supports).items():
            joint_supports[term] = get(term, 0) + support
        for term in placed:
            joint_supports.pop(term, None)
        self.supports[jid] = joint_supports


#: Marks a pair the pass-wide wave pre-pass never saw (as opposed to a
#: ``None`` table entry, which records a pre-pass rejection).
_WAVE_MISS = object()


def _waved_pair_tables(
    ordered: Sequence[Cluster],
    state: _DriverState,
    memo: MergeMemo,
    k: int,
    max_join_size: Optional[int],
    excluded_terms: frozenset,
) -> Optional[dict]:
    """Precompute every non-skippable pair's wave verdicts for one pass.

    Mirrors the walk's own gates (memo, prefilter, eligibility) against the
    pre-pass state -- valid wherever the walk consumes a table because
    merges only mutate the merged pair's leaves, the same argument that
    makes :func:`_speculative_outcomes` sound.  All surviving pairs' joint
    term masks go into one :class:`~repro.core.kernels.WaveBatch`; a single
    AND + popcount sweep yields each pair's "bad partner" bitmasks.

    Returns ``{pair_index: (row_words, num_rows, eligible_supports,
    order, bad) | None}``, or ``None`` (no dict at all) when the wave's
    total rows stay below :func:`~repro.core.kernels.packed_min_rows`
    (callers fall back to the per-pair path; decisions are identical
    either way).  ``row_words`` are the pair's joint term masks as plain
    ints, one per term of ``order`` -- sliced out of the wave matrix, so
    no per-pair bigint assembly ever runs in Python.  A ``None`` *entry*
    records a pair the pre-pass already rejected for having no eligible
    refining term -- the walk records the rejection without re-deriving
    it.  Every entry (including ``None``) certifies the pair cleared the
    memo and prefilter gates at pre-pass state, so the walk skips those
    gates for table pairs.  Pairs whose joint cluster exceeds 64 records
    are left to the walk: their masks span several uint64 words, where
    packing costs more than the per-pair bigint checks save.
    """
    min_rows = kernels.packed_min_rows()
    # Cheap bound before any per-pair work: eligible terms rarely
    # outnumber the pair's records at realistic k, so a wave over these
    # clusters is very unlikely to reach the crossover when twice their
    # total rows does not (pure routing -- decisions are unaffected).
    if 2 * sum(cluster_size(cluster) for cluster in ordered) < min_rows:
        return None
    np = kernels.np
    vtcs = state.vtcs
    cached_supports = state.supports
    cluster_masks = state.masks
    lefts: list[int] = []
    rights: list[int] = []
    shifts: list[int] = []
    sizes: list[int] = []
    entries: list[tuple] = []
    tables: dict = {}
    for index in range(len(ordered) - 1):
        left, right = ordered[index], ordered[index + 1]
        if cluster_size(left) + cluster_size(right) > 64:
            continue
        if memo.is_rejected(left, right, vtcs):
            continue
        reason, candidates = _prefilter(
            left, right, vtcs[id(left)], vtcs[id(right)], max_join_size, excluded_terms
        )
        if reason:
            continue
        supports_left = _liftable_supports(left, cached_supports)
        supports_right = _liftable_supports(right, cached_supports)
        eligible_supports: dict = {}
        get_left = supports_left.get
        get_right = supports_right.get
        for term in candidates:
            support = get_left(term, 0) + get_right(term, 0)
            if support >= k:
                eligible_supports[term] = support
        if not eligible_supports:
            # The walk would reject this pair from the same two cached
            # dicts before any pairwise check; record the verdict so it
            # does not have to.
            tables[index] = None
            continue
        masks_left, rows_left = cluster_masks[id(left)]
        masks_right, rows_right = cluster_masks[id(right)]
        order = sorted(
            eligible_supports, key=lambda t: (-eligible_supports[t], t)
        )
        get_ml = masks_left.get
        get_mr = masks_right.get
        for term in order:
            lefts.append(get_ml(term, 0))
            rights.append(get_mr(term, 0))
        shifts.extend([rows_left] * len(order))
        sizes.append(len(order))
        entries.append(
            (index, len(lefts) - len(order), rows_left + rows_right,
             eligible_supports, order)
        )
    total = len(lefts)
    if total < min_rows:
        # Below the crossover the sweep is not worth building, but the
        # sentinel rejections stand on the cached supports alone.
        return tables if tables else None
    # Every pair fits one machine word (<= 64 records), so the whole
    # wave's joint masks assemble in three vectorized ops -- the
    # ``left | right << rows_left`` combine never touches Python bigints.
    matrix = np.fromiter(lefts, dtype=np.uint64, count=total) | (
        np.fromiter(rights, dtype=np.uint64, count=total)
        << np.fromiter(shifts, dtype=np.uint64, count=total)
    )
    row_words = matrix.tolist()
    bad_by_group = kernels.bad_pair_masks_from_matrix(
        matrix.reshape(total, 1), sizes, k
    )
    for group, (index, start, num_rows, eligible_supports, order) in enumerate(
        entries
    ):
        tables[index] = (
            row_words[start : start + len(order)],
            num_rows,
            eligible_supports,
            order,
            bad_by_group.get(group),
        )
    return tables


def _merge_pass(
    ordered: Sequence[Cluster],
    state: _DriverState,
    memo: MergeMemo,
    outcomes: Optional[dict],
    k: int,
    m: int,
    max_join_size: Optional[int],
    excluded_terms: frozenset,
    use_bitsets: bool,
    stats: RefineStats,
    wave_tables: Optional[dict] = None,
    tcs: Optional[Counter] = None,
) -> tuple[list[Cluster], bool, set]:
    """One greedy adjacent-pair walk, consuming speculative outcomes if any.

    ``wave_tables`` optionally maps pair indices to the pass-wide wave's
    precomputed tables (:func:`_waved_pair_tables`); ``tcs`` is the global
    term-chunk support Counter, updated in place for every applied merge
    so the driver never recounts it from scratch between passes.

    Returns ``(merged, changed, changed_terms)``; ``changed_terms`` are the
    terms whose global term-chunk support moved this pass (the shared terms
    of every applied pair), which is exactly the invalidation set for the
    cross-pass ordering-key cache.
    """
    vtcs = state.vtcs
    merged: list[Cluster] = []
    changed = False
    changed_terms: set = set()
    index = 0
    last = len(ordered) - 1
    while index < len(ordered):
        if index < last:
            left, right = ordered[index], ordered[index + 1]
            stats.pairs_considered += 1
            joint: Optional[JointCluster] = None
            placed: frozenset = frozenset()
            # The walk never reorders mid-pass, so `ordered[index]` is the
            # exact pair the pre-pass saw: a wave-table entry (even a
            # pre-rejected None one) certifies the memo and prefilter
            # gates already passed and the eligibility verdict stands.
            table = _WAVE_MISS if wave_tables is None else wave_tables.get(
                index, _WAVE_MISS
            )
            if table is not _WAVE_MISS:
                stats.merges_attempted += 1
                stats.pairs_waved += 1
                if table is None:
                    # Pre-pass verdict: no refining term can reach k.
                    memo.record_rejection(left, right, vtcs)
                else:
                    outcome = try_merge(
                        left,
                        right,
                        k,
                        m,
                        max_join_size=max_join_size,
                        excluded_terms=excluded_terms,
                        use_bitsets=use_bitsets,
                        support_cache=state.supports,
                        _leaves=state.leaves[id(left)] + state.leaves[id(right)],
                        _restricted_parts=(
                            state.restricted[id(left)],
                            state.restricted[id(right)],
                        ),
                        _waved=table,
                        _arena=state.arena,
                    )
                    if outcome.joint is not None:
                        joint = outcome.joint
                        placed = outcome.refining_terms
                    else:
                        memo.record_rejection(left, right, vtcs)
            elif memo.is_rejected(left, right, vtcs):
                stats.skipped_by_memo += 1
            else:
                reason, candidates = _prefilter(
                    left, right, vtcs[id(left)], vtcs[id(right)],
                    max_join_size, excluded_terms,
                )
                if reason is not None:
                    stats.prefiltered += 1
                    memo.record_rejection(left, right, vtcs)
                elif outcomes is not None and index in outcomes:
                    result = outcomes[index]
                    if result is None:
                        memo.record_rejection(left, right, vtcs)
                    else:
                        placed, chunk_payload = result
                        joint = _apply_merge(left, right, placed, chunk_payload)
                else:
                    stats.merges_attempted += 1
                    stats.wave_fallbacks += 1
                    outcome = try_merge(
                        left,
                        right,
                        k,
                        m,
                        max_join_size=max_join_size,
                        excluded_terms=excluded_terms,
                        use_bitsets=use_bitsets,
                        support_cache=state.supports,
                        _refining_candidates=candidates,
                        _leaves=state.leaves[id(left)] + state.leaves[id(right)],
                        _restricted_parts=(
                            state.restricted[id(left)],
                            state.restricted[id(right)],
                        ),
                        _pair_masks=(state.masks[id(left)], state.masks[id(right)]),
                        _arena=state.arena,
                    )
                    if outcome.joint is not None:
                        joint = outcome.joint
                        placed = outcome.refining_terms
                    else:
                        memo.record_rejection(left, right, vtcs)
            if joint is not None:
                # Global supports only move for terms both members shared
                # (lifted terms drop out, duplicated counts collapse).
                shared = vtcs[id(left)] & vtcs[id(right)]
                changed_terms |= shared
                if tcs is not None:
                    # Incremental term-chunk supports: a shared term's count
                    # drops by one (two member contributions collapse into
                    # the joint's), and by two when it was lifted out
                    # entirely (placed terms leave every term chunk).
                    # Zero-count entries are pruned so the per-pass rank
                    # sort only sees live terms.
                    for term in shared:
                        tcs[term] -= 2 if term in placed else 1
                        if tcs[term] <= 0:
                            del tcs[term]
                state.register_joint(joint, left, right, placed)
                merged.append(joint)
                stats.merges_applied += 1
                changed = True
                index += 2
                continue
        merged.append(ordered[index])
        index += 1
    return merged, changed, changed_terms


def refine(
    clusters: Sequence[Cluster],
    k: int,
    m: int,
    max_passes: int = 50,
    max_join_size: Optional[int] = 240,
    excluded_terms: frozenset = frozenset(),
    use_bitsets: bool = True,
    memoize: bool = True,
    jobs: int = 1,
    executor=None,
    stats: Optional[RefineStats] = None,
    arena: Optional[SubrecordArena] = None,
) -> list[Cluster]:
    """Algorithm REFINE: iteratively merge adjacent cluster pairs.

    Args:
        clusters: k^m-anonymous clusters (typically the VERPART output).
        k, m: anonymity parameters.
        max_passes: safety cap on the number of merge passes (the algorithm
            terminates on its own because each pass either merges clusters,
            strictly reducing their number, or stops).
        max_join_size: cap on the number of original records per joint
            cluster (``None`` disables the cap); see :func:`try_merge`.
        excluded_terms: terms that must never be lifted into shared chunks
            (sensitive terms stay in term chunks for l-diversity).
        use_bitsets: run shared-chunk selection over term bitmasks (default;
            identical output, far fewer record scans).  ``False`` selects
            the reference implementation, kept for equivalence testing.
        memoize: run the incremental driver (rejected-pair memo, shared
            per-leaf mask cache, optional parallel attempts).  ``False``
            selects the reference driver, which re-attempts every adjacent
            pair from scratch each pass -- kept as the equivalence oracle.
        jobs: fan merge attempts out over this many worker processes (the
            effective value is capped at ``os.cpu_count()``; ``1`` stays
            in-process and never spawns a pool).
        executor: optionally, an already-running ``ProcessPoolExecutor`` to
            reuse (takes precedence over ``jobs``; not shut down here).
        stats: optional :class:`RefineStats` filled with the run's counters.
        arena: optionally, a shared :class:`~repro.core.vocab.SubrecordArena`
            to intern shared-chunk sub-records into (the engine hands over
            the vocabulary's arena so interned instances survive across
            windows); a private one is created when omitted.

    Returns:
        The refined list of clusters (joint clusters replace merged pairs).
    """
    validate_km_parameters(k, m)
    excluded_terms = frozenset(str(t) for t in excluded_terms)
    if stats is None:
        stats = RefineStats()
    if not memoize:
        return _refine_reference(
            clusters, k, m, max_passes, max_join_size, excluded_terms, use_bitsets
        )

    current: list[Cluster] = list(clusters)
    memo = MergeMemo()
    # Per-cluster caches surviving across passes.  A surviving top-level
    # cluster is never mutated (only successful merges touch leaf term
    # chunks, and they consume both members), so its virtual term chunk,
    # leaves, restricted terms and liftable supports are stable; its
    # *ordering key* additionally depends on the global term-chunk
    # supports, which only move for the terms shared by merged pairs --
    # keys are recomputed exactly for clusters touching those.
    state = _DriverState(arena=arena)
    vtcs = state.vtcs
    key_cache = state.keys
    changed_terms: Optional[set] = None  # None = first pass, compute all
    tcs: Optional[Counter] = None        # maintained incrementally across passes
    pool = executor
    created_pool = None
    if pool is None and jobs > 1:
        workers = effective_jobs(jobs)
        if workers > 1:
            try:
                # Hand workers the caller's resolved kernel backend and
                # packed crossover (fresh interpreters only see
                # $REPRO_KERNELS / $REPRO_PACKED_MIN_ROWS otherwise).
                created_pool = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=kernels.set_default,
                    initargs=(kernels.resolve(None), kernels.packed_min_rows()),
                )
                pool = created_pool
            except (OSError, RuntimeError):  # pragma: no cover - no subprocess support
                pool = None
    pinned = None
    try:
        # Pin the resolved backend and crossover for the whole call: the
        # hot path consults them once per pair, and re-reading
        # $REPRO_PACKED_MIN_ROWS thousands of times is measurable.
        pinned = kernels.use(kernels.resolve(None), kernels.packed_min_rows())
        pinned.__enter__()
        for _pass in range(max_passes):
            if len(current) < 2:
                break
            stats.passes += 1
            for cluster in current:
                if id(cluster) not in vtcs:
                    state.seed(cluster)
            if tcs is None:
                tcs = Counter()
                for cluster in current:
                    tcs.update(vtcs[id(cluster)])
            rank = {
                term: position
                for position, term in enumerate(
                    sorted(tcs, key=lambda t: (-tcs[t], t))
                )
            }
            for cluster in current:
                cid = id(cluster)
                if cid not in key_cache or changed_terms is None:
                    key_cache[cid] = _ordering_key_ranked(vtcs[cid], rank)
                else:
                    touched = vtcs[cid] & changed_terms
                    if touched:
                        key_cache[cid] = _repair_key_ranked(
                            key_cache[cid], touched, rank
                        )
            ordered = sorted(current, key=lambda c: key_cache[id(c)])

            outcomes = None
            if pool is not None and len(ordered) > 2:
                outcomes = _speculative_outcomes(
                    ordered, vtcs, memo, k, m, max_join_size, excluded_terms,
                    use_bitsets, pool, stats,
                )
                if outcomes is None:
                    pool = None  # broken pool: serial for the rest of the call
            wave_tables = None
            if (
                outcomes is None
                and use_bitsets
                and m == 2
                and kernels.numpy_available()
                and kernels.resolve(None) == "numpy"
            ):
                wave_tables = _waved_pair_tables(
                    ordered, state, memo, k, max_join_size, excluded_terms
                )
            current, changed, changed_terms = _merge_pass(
                ordered, state, memo, outcomes, k, m, max_join_size,
                excluded_terms, use_bitsets, stats,
                wave_tables=wave_tables, tcs=tcs,
            )
            if not changed:
                break
    finally:
        if pinned is not None:
            pinned.__exit__(None, None, None)
        if created_pool is not None:
            created_pool.shutdown()
    return current


def _refine_reference(
    clusters: Sequence[Cluster],
    k: int,
    m: int,
    max_passes: int,
    max_join_size: Optional[int],
    excluded_terms: frozenset,
    use_bitsets: bool,
) -> list[Cluster]:
    """The reference REFINE driver: every pass re-attempts every adjacent pair.

    No memoization, no mask cache, no pool -- the pre-optimization
    formulation, preserved verbatim as the oracle the incremental driver is
    tested against.
    """
    current: list[Cluster] = list(clusters)
    for _pass in range(max_passes):
        if len(current) < 2:
            break
        # term-chunk support of each term across the current clusters
        tcs: Counter = Counter()
        for cluster in current:
            tcs.update(virtual_term_chunk(cluster))
        ordered = sorted(current, key=lambda c: _ordering_key(c, tcs))

        merged: list[Cluster] = []
        changed = False
        index = 0
        while index < len(ordered):
            if index + 1 < len(ordered):
                outcome = try_merge(
                    ordered[index],
                    ordered[index + 1],
                    k,
                    m,
                    max_join_size=max_join_size,
                    excluded_terms=excluded_terms,
                    use_bitsets=use_bitsets,
                )
                if outcome.joint is not None:
                    merged.append(outcome.joint)
                    changed = True
                    index += 2
                    continue
            merged.append(ordered[index])
            index += 1
        current = merged
        if not changed:
            break
    return current

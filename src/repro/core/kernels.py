"""Optional vectorized kernels behind the interned execution core.

The encoded pipeline's remaining hot loops are Python-loop-bound over small
integers: HORPART re-counts term supports record by record, combination
checks walk accepted-term bitmasks one ``&``/``bit_count`` at a time, and
REFINE's shared-chunk assembly re-walks row bits per term.  This module
provides the numpy counterparts -- each one a thin, allocation-conscious
kernel over a contiguous buffer -- behind a pure-Python fallback, selected
at run time:

* :class:`RecordIdBuffer` -- records flattened into one contiguous int32
  term-id buffer (CSR layout).  Term supports of any row subset become a
  single gather + ``bincount`` instead of a per-record ``Counter.update``
  loop (HORPART's node counting), and per-term posting arrays fall out of
  one stable argsort.
* :class:`PackedSelection` / :func:`packed_km_anonymous` -- term row-masks
  packed once into a ``uint64`` word matrix, so the support of every
  m-way combination extending a candidate is one vectorized
  ``&`` + ``bitwise_count`` over the accepted batch instead of a
  per-candidate bigint DFS (:class:`~repro.core.anonymity.BitsetChunkChecker`
  and the whole-chunk k^m check).
* :func:`assemble_subrecords` -- shared-chunk sub-records reassembled from
  the packed row matrix via one ``unpackbits`` instead of per-row bigint
  shifts (REFINE's ``build_chunks``).

**Backend selection.**  :func:`resolve` picks ``"numpy"`` or ``"python"``
from, in priority order: an explicit argument
(:class:`~repro.core.engine.AnonymizationParams.kernels` /
``ExperimentConfig.kernels``), the process-wide override installed by
:func:`use` (the engine wraps each run in it), the ``REPRO_KERNELS``
environment variable, and finally ``auto`` (numpy when importable).  Both
backends make bit-for-bit identical decisions -- the numpy kernels change
*how* supports and popcounts are computed, never *which* comparisons run --
which the equivalence suite (``tests/test_kernels.py``) enforces on
randomized inputs.

**Size thresholds.**  Vectorization pays above a batch size; below it, the
ufunc dispatch overhead loses to CPython's small-int bitops (a 30-row
cluster mask is a single machine word).  The packed-mask kernels therefore
engage only for row counts of at least :func:`packed_min_rows` even when
the numpy backend is selected; the counting kernel has no threshold (the
gather + ``bincount`` wins at every node size measured).  The default
(:data:`PACKED_MIN_ROWS`) can be overridden per run
(``AnonymizationParams.packed_min_rows``), per process
(``$REPRO_PACKED_MIN_ROWS``) or by monkeypatching the module constant in
tests.

**Wave batching.**  The paper's default clusters (tens of rows) never
reach the per-cluster crossover individually; :class:`WaveBatch` reaches
it *collectively* by packing the candidate term masks of every cluster in
a VERPART wave (or every merge-attempt pair of a REFINE pass) into one
contiguous padded uint64 matrix with a group-offset index, running a
single AND + ``bitwise_count`` sweep over all intra-group term pairs, and
scattering the per-group verdicts back as small-int "bad partner"
bitmasks.  The wave engages when the *total* rows of the wave pass
:func:`packed_min_rows`, so the threshold keeps one meaning at both
granularities.
"""

from __future__ import annotations

import contextvars
import os
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ParameterError

try:  # pragma: no cover - exercised implicitly by both CI variants
    import numpy as np

    if not hasattr(np, "bitwise_count"):  # numpy < 2.0: no vectorized popcount
        np = None  # type: ignore[assignment]
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Environment variable forcing the kernel backend (``python`` / ``numpy`` /
#: ``auto``); overridden by an explicit config choice, see :func:`resolve`.
KERNELS_ENV = "REPRO_KERNELS"

#: Accepted kernel-backend names.
KERNEL_CHOICES = ("auto", "python", "numpy")

#: Default minimum row count for the packed-mask kernels (combination
#: checking and sub-record assembly).  Below this, one row mask fits a few
#: machine words and CPython's bigint ``&``/``bit_count`` beats the ufunc
#: dispatch overhead; the crossover measured in
#: ``benchmarks/bench_kernels.py`` sits around one thousand rows.  Resolve
#: the effective value through :func:`packed_min_rows`.
PACKED_MIN_ROWS = 1024

#: Environment variable overriding :data:`PACKED_MIN_ROWS`; overridden in
#: turn by an explicit config choice, see :func:`packed_min_rows`.
PACKED_MIN_ROWS_ENV = "REPRO_PACKED_MIN_ROWS"

#: The :func:`use`/:func:`set_default` override.  A context variable, not a
#: plain module global: concurrent ``anonymize`` runs in different threads
#: each see (and restore) their own forced backend.
_forced_backend: contextvars.ContextVar = contextvars.ContextVar(
    "repro_kernels_forced", default=None
)

#: :func:`use`/:func:`set_default` override of the packed-kernel crossover
#: (same scoping rules as the backend override).
_forced_min_rows: contextvars.ContextVar = contextvars.ContextVar(
    "repro_packed_min_rows_forced", default=None
)


def numpy_available() -> bool:
    """True when the numpy kernels can run (numpy >= 2.0 importable)."""
    return np is not None


def validate_choice(choice: str) -> str:
    """Normalize a kernel-backend name, raising on anything unknown.

    The single source of the membership rule: :func:`resolve`,
    :func:`use`/:func:`set_default` and
    :class:`~repro.core.engine.AnonymizationParams` all validate through
    here, so the choices and the error message cannot drift apart.
    """
    choice = str(choice).lower()
    if choice not in KERNEL_CHOICES:
        raise ParameterError(
            f"kernels must be one of {KERNEL_CHOICES}, got {choice!r}"
        )
    return choice


def validate_min_rows(value) -> int:
    """Normalize a packed-kernel row threshold, raising on anything invalid.

    Shared by :func:`packed_min_rows` (env override) and
    :class:`~repro.core.engine.AnonymizationParams` (config field) so the
    accepted values and the error message cannot drift apart.
    """
    try:
        coerced = int(value)
        if isinstance(value, bool) or coerced != float(value):
            raise ValueError
        value = coerced
    except (TypeError, ValueError):
        raise ParameterError(
            f"packed_min_rows must be a positive integer, got {value!r}"
        ) from None
    if value < 1:
        raise ParameterError(f"packed_min_rows must be >= 1, got {value}")
    return value


def packed_min_rows(choice: Optional[int] = None) -> int:
    """Resolve the effective packed-kernel row threshold.

    Priority: explicit ``choice`` argument
    (:class:`~repro.core.engine.AnonymizationParams.packed_min_rows`), then
    the :func:`use`/:func:`set_default` override, then
    ``$REPRO_PACKED_MIN_ROWS``, then the :data:`PACKED_MIN_ROWS` module
    constant (which tests may monkeypatch directly).
    """
    if choice is not None:
        return validate_min_rows(choice)
    forced = _forced_min_rows.get()
    if forced is not None:
        return forced
    env = os.environ.get(PACKED_MIN_ROWS_ENV)
    if env:
        return validate_min_rows(env)
    return PACKED_MIN_ROWS


def resolve(choice: Optional[str] = None) -> str:
    """Resolve the active kernel backend to ``"python"`` or ``"numpy"``.

    Priority: explicit ``choice`` argument, then the :func:`use` /
    :func:`set_default` override, then ``$REPRO_KERNELS``, then ``auto``.
    ``auto`` selects numpy when it is importable.  Requesting ``numpy``
    without numpy installed (or with numpy < 2.0, which lacks
    ``bitwise_count``) raises :class:`~repro.exceptions.ParameterError`
    instead of silently running the fallback.
    """
    # `or` short-circuits: a forced backend never touches the environment
    # (resolve sits on hot paths where repeated env reads are measurable).
    candidate = (
        choice or _forced_backend.get() or os.environ.get(KERNELS_ENV) or "auto"
    )
    candidate = validate_choice(candidate)
    if candidate == "auto":
        return "numpy" if np is not None else "python"
    if candidate == "numpy" and np is None:
        raise ParameterError(
            "numpy kernels requested but numpy (>= 2.0) is not importable; "
            "use kernels='python' or unset REPRO_KERNELS"
        )
    return candidate


@contextmanager
def use(choice: Optional[str], min_rows: Optional[int] = None):
    """Force the kernel backend (and crossover) for a ``with`` block.

    The engine wraps each ``anonymize`` call in
    ``use(params.kernels, params.packed_min_rows)`` so every helper that
    resolves lazily (checker construction, chunk assembly, wave batching)
    sees one consistent backend and threshold for the whole run.  ``None``
    keeps the surrounding resolution (environment / auto / default) in
    effect for that knob.  The overrides live in context variables, so
    concurrent runs in other threads are unaffected.
    """
    if choice is not None:
        choice = validate_choice(choice)
    if min_rows is not None:
        min_rows = validate_min_rows(min_rows)
    token = _forced_backend.set(choice)
    rows_token = _forced_min_rows.set(min_rows)
    try:
        yield
    finally:
        _forced_min_rows.reset(rows_token)
        _forced_backend.reset(token)


def set_default(choice: Optional[str], min_rows: Optional[int] = None) -> None:
    """Install the backend/crossover overrides without a scope (no restore).

    The process-pool **initializer**: worker processes start with a fresh
    interpreter where only the environment would apply, so the engine
    (and :func:`repro.core.refine.refine`) pass
    ``initializer=kernels.set_default, initargs=(resolved, resolved_rows)``
    when spawning pools -- every worker then resolves exactly the backend
    and threshold the parent run forced.
    """
    if choice is not None:
        choice = validate_choice(choice)
    if min_rows is not None:
        min_rows = validate_min_rows(min_rows)
    _forced_backend.set(choice)
    _forced_min_rows.set(min_rows)


# --------------------------------------------------------------------------- #
# kernel 1: contiguous-buffer term counting (HORPART)
# --------------------------------------------------------------------------- #
class RecordIdBuffer:
    """Records flattened into one contiguous int32 term-id buffer (CSR).

    ``ids`` holds every record's term ids back to back; ``indptr[i]`` is
    the offset of record ``i``'s run.  Term supports of any row subset are
    one ragged gather plus one ``bincount`` -- the vectorized form of
    HORPART's per-node ``Counter.update`` loop -- and per-term posting
    arrays (sorted record indices) fall out of a single stable argsort,
    built lazily on first membership query.

    With ``compact=True`` the buffer remaps the ids it actually contains
    onto the dense range ``0..U-1`` (``term_ids`` maps a compact id back
    to the original); every count array is then sized by the buffer's
    *distinct* terms rather than by the largest original id.  HORPART
    uses this because under shard-lifetime vocabulary reuse a late stream
    window can hold arbitrarily large ids while containing only a few
    distinct terms -- without compaction its per-node arrays would scale
    with the shard's cumulative vocabulary instead of the window's.

    Requires the numpy backend; callers guard on :func:`numpy_available`.
    """

    __slots__ = (
        "ids",
        "indptr",
        "lengths",
        "num_terms",
        "num_records",
        "term_ids",
        "_posting_rows",
        "_posting_starts",
    )

    def __init__(
        self,
        records: Sequence[frozenset],
        num_terms: Optional[int] = None,
        compact: bool = False,
    ):
        count = len(records)
        self.num_records = count
        self.lengths = np.fromiter(
            (len(r) for r in records), dtype=np.int64, count=count
        )
        total = int(self.lengths.sum())
        self.indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=self.indptr[1:])
        self.ids = np.fromiter(
            (tid for record in records for tid in record), dtype=np.int32, count=total
        )
        self.term_ids: Optional[np.ndarray] = None
        if compact and total:
            unique, inverse = np.unique(self.ids, return_inverse=True)
            self.ids = inverse.astype(np.int32, copy=False)
            self.term_ids = unique
            num_terms = len(unique)
        elif num_terms is None:
            num_terms = int(self.ids.max()) + 1 if total else 0
        self.num_terms = num_terms
        self._posting_rows: Optional[np.ndarray] = None
        self._posting_starts: Optional[np.ndarray] = None

    def counts(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Term supports (length ``num_terms``) of the records at ``rows``.

        ``rows=None`` counts the whole buffer.  The gather materializes the
        flat positions of every selected record's id run via the standard
        ``repeat`` + ``arange`` trick, so no Python-level per-record loop
        runs.
        """
        if rows is None:
            return np.bincount(self.ids, minlength=self.num_terms)
        starts = self.indptr[rows]
        lens = self.lengths[rows]
        total = int(lens.sum())
        if total == 0:
            return np.zeros(self.num_terms, dtype=np.int64)
        cum = np.cumsum(lens)
        offsets = np.repeat(starts - (cum - lens), lens)
        positions = offsets + np.arange(total, dtype=np.int64)
        return np.bincount(self.ids[positions], minlength=self.num_terms)

    def posting(self, tid: int) -> np.ndarray:
        """Sorted record indices containing term ``tid`` (the posting array)."""
        if self._posting_rows is None:
            row_of_flat = np.repeat(
                np.arange(self.num_records, dtype=np.int64), self.lengths
            )
            order = np.argsort(self.ids, kind="stable")
            self._posting_rows = row_of_flat[order]
            self._posting_starts = np.searchsorted(
                self.ids[order], np.arange(self.num_terms + 1, dtype=np.int64)
            )
        return self._posting_rows[
            self._posting_starts[tid] : self._posting_starts[tid + 1]
        ]


def supports_python(records: Sequence[frozenset], rows: Iterable[int]) -> dict:
    """Pure-Python reference of :meth:`RecordIdBuffer.counts` (dict form).

    Kept here (next to the kernel it mirrors) so the parity tests and the
    counting micro-benchmark compare the exact per-record update loop the
    kernel replaces.
    """
    counts: dict = {}
    get = counts.get
    for row in rows:
        for tid in records[row]:
            counts[tid] = get(tid, 0) + 1
    return counts


# --------------------------------------------------------------------------- #
# kernel 2: packed-word combination checking
# --------------------------------------------------------------------------- #
def _packed_bytes(masks: Iterable[int], count: int, nbytes: int) -> bytes:
    """Serialize bigint row masks back to back, ``nbytes`` little-endian each."""
    buffer = bytearray(count * nbytes)
    for index, mask in enumerate(masks):
        start = index * nbytes
        buffer[start : start + nbytes] = mask.to_bytes(nbytes, "little")
    return bytes(buffer)


def pack_mask_rows(masks: Iterable[int], count: int, num_rows: int) -> "np.ndarray":
    """Pack bigint row masks into a ``(count, words)`` uint64 matrix.

    Bit ``r`` of a mask lands in word ``r // 64``, bit ``r % 64``
    (explicitly little-endian), so ``bitwise_count`` over a row's words is
    exactly the bigint's ``bit_count``.
    """
    nbytes = max(1, (num_rows + 63) // 64) * 8
    matrix = np.frombuffer(_packed_bytes(masks, count, nbytes), dtype="<u8")
    return matrix.reshape(count, nbytes // 8)


def _popcounts(matrix: "np.ndarray") -> "np.ndarray":
    """Per-row popcount of a uint64 word matrix."""
    return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)


class PackedSelection:
    """Accepted-set combination checking over a packed uint64 word matrix.

    The numpy engine behind
    :class:`~repro.core.anonymity.BitsetChunkChecker`: every term's row
    mask is packed **once** at construction, the accepted set lives in a
    preallocated matrix, and a candidate's m-way combination supports are
    evaluated level by level -- one vectorized ``&`` + ``bitwise_count``
    over the whole accepted batch per DFS level, recursing only into
    occurring intersections.  Decisions are identical to the bigint DFS:
    the same ``(support > 0 and support < k)`` comparisons run, just in
    batch.
    """

    __slots__ = ("_matrix", "_index", "_accepted", "_count", "_k", "num_rows")

    def __init__(self, masks: dict, num_rows: int, k: int):
        self._matrix = pack_mask_rows(masks.values(), len(masks), num_rows)
        self._index = {term: row for row, term in enumerate(masks)}
        self._accepted = np.zeros_like(self._matrix)
        self._count = 0
        self._k = k
        self.num_rows = num_rows

    def row(self, term) -> Optional["np.ndarray"]:
        """The packed row of ``term``, or ``None`` when it has no mask."""
        position = self._index.get(term)
        if position is None:
            return None
        return self._matrix[position]

    def add(self, term) -> None:
        """Append ``term``'s packed row to the accepted batch."""
        row = self.row(term)
        if self._count == len(self._accepted):  # unknown-term adds may overflow
            grown = np.zeros(
                (2 * len(self._accepted) + 1, self._matrix.shape[1]),
                dtype=self._matrix.dtype,
            )
            grown[: self._count] = self._accepted[: self._count]
            self._accepted = grown
        if row is None:
            self._accepted[self._count] = 0
        else:
            self._accepted[self._count] = row
        self._count += 1

    def remove(self, position: int) -> None:
        """Drop the accepted row at ``position`` (insertion order)."""
        self._accepted[position : self._count - 1] = self._accepted[
            position + 1 : self._count
        ]
        self._count -= 1

    def reset(self) -> None:
        """Empty the accepted batch."""
        self._count = 0

    def combinations_ok(self, base_row: "np.ndarray", depth: int) -> bool:
        """Every occurring combination extending ``base_row`` keeps support >= k.

        Mirrors ``BitsetChunkChecker._combinations_ok`` over the accepted
        batch: one vectorized level per DFS depth.
        """
        return self._descend(base_row, 0, depth)

    def _descend(self, base: "np.ndarray", start: int, depth: int) -> bool:
        count = self._count
        if start >= count:
            return True
        intersections = self._accepted[start:count] & base
        supports = _popcounts(intersections)
        if bool(((supports > 0) & (supports < self._k)).any()):
            return False
        if depth > 1:
            for offset in np.nonzero(supports > 0)[0]:
                position = int(offset)
                if not self._descend(
                    intersections[position], start + position + 1, depth - 1
                ):
                    return False
        return True


def packed_km_anonymous(
    masks: Sequence[int], num_rows: int, k: int, m: int
) -> bool:
    """Whole-chunk k^m check over packed masks (batch form of the bigint DFS).

    ``masks`` are the chunk's per-term row masks (every one non-zero, as
    built from occurring records).  Singletons are checked in one batched
    popcount; each deeper level ANDs the current base against the whole
    remaining-term batch at once, recursing only into occurring
    intersections -- the same pruning, the same comparisons, no Counter.
    """
    matrix = pack_mask_rows(masks, len(masks), num_rows)
    if len(masks) and bool((_popcounts(matrix) < k).any()):
        return False
    if m == 1 or len(masks) < 2:
        return True
    for start in range(len(masks) - 1):
        if not _km_descend(matrix, matrix[start], start + 1, m - 1, k):
            return False
    return True


def _km_descend(
    matrix: "np.ndarray", base: "np.ndarray", start: int, depth: int, k: int
) -> bool:
    intersections = matrix[start:] & base
    supports = _popcounts(intersections)
    if bool(((supports > 0) & (supports < k)).any()):
        return False
    if depth > 1:
        for offset in np.nonzero(supports > 0)[0]:
            position = int(offset)
            if not _km_descend(
                matrix, intersections[position], start + position + 1, depth - 1, k
            ):
                return False
    return True


# --------------------------------------------------------------------------- #
# kernel 3: packed sub-record assembly (REFINE shared chunks)
# --------------------------------------------------------------------------- #
def assemble_subrecords(
    term_masks: Sequence[tuple], num_rows: int
) -> list[frozenset]:
    """Sub-records of the rows covered by ``term_masks``, in row order.

    ``term_masks`` is a sequence of ``(term, bigint row mask)`` pairs; the
    result holds one ``frozenset`` of terms per covered row (a row is
    covered when at least one mask has its bit set), ordered by increasing
    row -- exactly what REFINE's reference ``build_chunks`` produces by
    shifting every mask per row.  The masks are unpacked into one boolean
    matrix and each covered row's terms come from a single C-level
    ``nonzero``.
    """
    nbytes = max(1, (num_rows + 7) // 8)
    packed = np.frombuffer(
        _packed_bytes((mask for _term, mask in term_masks), len(term_masks), nbytes),
        dtype=np.uint8,
    ).reshape(len(term_masks), nbytes)
    bools = np.unpackbits(
        packed, axis=1, bitorder="little", count=num_rows
    ).astype(bool, copy=False)
    covered = bools.any(axis=0)
    columns = bools[:, covered].T
    terms = [term for term, _mask in term_masks]
    return [
        frozenset(terms[position] for position in np.nonzero(row)[0])
        for row in columns
    ]


# --------------------------------------------------------------------------- #
# kernel 4: cross-cluster wave batching (VERPART waves, REFINE passes)
# --------------------------------------------------------------------------- #
#: Upper bound on the number of uint64 words ANDed per sweep slice; bounds
#: the temporaries of a ragged wave (one 2k-row cluster widens every row of
#: the pair sweep) to a few tens of megabytes.
WAVE_SLICE_WORDS = 1 << 22


@dataclass
class WaveStats:
    """Wave-batching work counters (surfaced on the engine report).

    Attributes:
        batches: wave sweeps executed (one packed matrix each).
        groups: groups (clusters / merge pairs) whose pairwise verdicts
            came out of a wave matrix.
        fallbacks: groups evaluated on the per-cluster path instead
            (python backend, ``m != 2``, or a wave below the crossover).
    """

    batches: int = 0
    groups: int = 0
    fallbacks: int = 0


class WaveBatch:
    """One vectorized check matrix for a whole wave of small groups.

    Callers append each group's candidate term row-masks with
    :meth:`add_group` (a group is one cluster's VERPART candidates, or one
    REFINE merge-attempt pair's eligible terms).  :meth:`bad_pair_masks`
    then packs *all* masks into one contiguous padded uint64 matrix,
    enumerates every intra-group term pair through a group-offset index,
    runs a single AND + ``bitwise_count`` sweep, and scatters the verdicts
    back: for each group, a per-term small-int bitmask over the group's
    term positions whose bit ``j`` is set when the pair's joint support
    violates k^m-anonymity (``0 < popcount < k``).

    The greedy selections then replay per group with one ``bad & accepted``
    int test per candidate -- the same comparisons as the per-cluster
    bigint DFS, evaluated in one batch, so decisions are bit-for-bit
    identical.  Only the ``m == 2`` level is batched (the paper's default);
    callers keep the per-cluster path for deeper ``m``.

    Requires the numpy backend; callers guard on :func:`numpy_available`.
    """

    __slots__ = ("_k", "_masks", "_sizes", "_rows", "total_rows")

    def __init__(self, k: int):
        self._k = k
        self._masks: list[int] = []   # every group's masks, back to back
        self._sizes: list[int] = []   # terms per group
        self._rows: list[int] = []    # rows per group
        self.total_rows = 0

    def __len__(self) -> int:
        return len(self._sizes)

    def add_group(self, masks: Sequence[int], num_rows: int) -> int:
        """Append one group's term row-masks; returns the group index."""
        self._masks.extend(masks)
        self._sizes.append(len(masks))
        self._rows.append(num_rows)
        self.total_rows += num_rows
        return len(self._sizes) - 1

    def _matrix(self) -> "np.ndarray":
        """All masks packed into one padded ``(terms, words)`` uint64 matrix."""
        words = max(1, (max(self._rows, default=1) + 63) // 64)
        count = len(self._masks)
        if words == 1:
            # Every mask fits one machine word: skip the to_bytes loop.
            return np.fromiter(self._masks, dtype=np.uint64, count=count).reshape(
                count, 1
            )
        return pack_mask_rows(self._masks, count, words * 64)

    def bad_pair_masks(self) -> dict[int, list[int]]:
        """Per-group "bad partner" bitmasks from one AND + popcount sweep.

        Returns ``{group_index: bad}`` where ``bad[i]`` has bit ``j`` set
        when the supports of terms ``i`` and ``j`` of that group intersect
        on fewer than ``k`` (but more than zero) rows.  Groups without any
        violating pair are absent -- the common case, which lets callers
        accept a whole group without touching its masks again.
        """
        return bad_pair_masks_from_matrix(self._matrix(), self._sizes, self._k)

    def group_km_verdicts(self) -> list[bool]:
        """Whole-group k^2-anonymity verdicts (batch ``is_km_anonymous``).

        A group passes when every singleton support reaches ``k`` and no
        term pair intersects on ``(0, k)`` rows -- exactly the ``m == 2``
        bigint DFS verdict, evaluated for all groups in one sweep.
        """
        verdicts = [True] * len(self._sizes)
        if not self._masks:
            return verdicts
        matrix = self._matrix()
        singletons = _popcounts(matrix) < self._k
        position = 0
        for group, size in enumerate(self._sizes):
            if size and bool(singletons[position : position + size].any()):
                verdicts[group] = False
            position += size
        for group in self.bad_pair_masks():
            verdicts[group] = False
        return verdicts


def bad_pair_masks_from_matrix(
    matrix: "np.ndarray", sizes: Sequence[int], k: int
) -> dict[int, list[int]]:
    """The :meth:`WaveBatch.bad_pair_masks` sweep over a caller-built matrix.

    ``matrix`` is a ``(rows, words)`` uint64 mask matrix holding every
    group's term masks back to back; ``sizes`` gives each group's row
    count.  Exposed so callers that can assemble the matrix vectorized
    (e.g. REFINE's pair wave, whose rows are ``left | right << shift`` of
    arrays it already holds) skip the bigint staging list entirely.
    """
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(sizes, dtype=np.int64), out=offsets[1:])
    # Intra-group (i < j) pair index arrays: groups of equal term count
    # share one triangular template, placed at each group's offset.
    by_size: dict[int, list[int]] = {}
    for group, size in enumerate(sizes):
        if size >= 2:
            by_size.setdefault(size, []).append(int(offsets[group]))
    left_parts: list[np.ndarray] = []
    right_parts: list[np.ndarray] = []
    for size, starts in by_size.items():
        tri_i, tri_j = np.triu_indices(size, k=1)
        base = np.asarray(starts, dtype=np.int64)[:, None]
        left_parts.append((base + tri_i[None, :]).ravel())
        right_parts.append((base + tri_j[None, :]).ravel())
    bad: dict[int, list[int]] = {}
    if not left_parts:
        return bad
    left = np.concatenate(left_parts)
    right = np.concatenate(right_parts)
    words = matrix.shape[1]
    step = max(1, WAVE_SLICE_WORDS // words)
    for start in range(0, len(left), step):
        li = left[start : start + step]
        rj = right[start : start + step]
        supports = _popcounts(matrix[li] & matrix[rj])
        violations = np.nonzero((supports > 0) & (supports < k))[0]
        if not len(violations):
            continue
        flat_i = li[violations]
        flat_j = rj[violations]
        # One vectorized group lookup for the whole slice, then plain
        # list/int ops per violating pair (the bigint bitmask merge
        # itself cannot vectorize past 64 candidates).
        groups = np.searchsorted(offsets, flat_i, side="right") - 1
        local_i = (flat_i - offsets[groups]).tolist()
        local_j = (flat_j - offsets[groups]).tolist()
        for group, i, j in zip(groups.tolist(), local_i, local_j):
            masks = bad.get(group)
            if masks is None:
                masks = bad[group] = [0] * sizes[group]
            masks[i] |= 1 << j
            masks[j] |= 1 << i
    return bad


def assemble_subrecords_python(
    term_masks: Sequence[tuple], num_rows: int
) -> list[frozenset]:
    """Pure-Python reference of :func:`assemble_subrecords` (bigint shifts).

    Kept for the parity tests and the assembly micro-benchmark; REFINE's
    inline fallback in ``build_chunks`` is this same loop fused with the
    contribution counting.
    """
    or_mask = 0
    for _term, mask in term_masks:
        or_mask |= mask
    subrecords: list[frozenset] = []
    while or_mask:
        low = or_mask & -or_mask
        row = low.bit_length() - 1
        or_mask ^= low
        subrecords.append(
            frozenset(term for term, mask in term_masks if (mask >> row) & 1)
        )
    return subrecords

"""Optional vectorized kernels behind the interned execution core.

The encoded pipeline's remaining hot loops are Python-loop-bound over small
integers: HORPART re-counts term supports record by record, combination
checks walk accepted-term bitmasks one ``&``/``bit_count`` at a time, and
REFINE's shared-chunk assembly re-walks row bits per term.  This module
provides the numpy counterparts -- each one a thin, allocation-conscious
kernel over a contiguous buffer -- behind a pure-Python fallback, selected
at run time:

* :class:`RecordIdBuffer` -- records flattened into one contiguous int32
  term-id buffer (CSR layout).  Term supports of any row subset become a
  single gather + ``bincount`` instead of a per-record ``Counter.update``
  loop (HORPART's node counting), and per-term posting arrays fall out of
  one stable argsort.
* :class:`PackedSelection` / :func:`packed_km_anonymous` -- term row-masks
  packed once into a ``uint64`` word matrix, so the support of every
  m-way combination extending a candidate is one vectorized
  ``&`` + ``bitwise_count`` over the accepted batch instead of a
  per-candidate bigint DFS (:class:`~repro.core.anonymity.BitsetChunkChecker`
  and the whole-chunk k^m check).
* :func:`assemble_subrecords` -- shared-chunk sub-records reassembled from
  the packed row matrix via one ``unpackbits`` instead of per-row bigint
  shifts (REFINE's ``build_chunks``).

**Backend selection.**  :func:`resolve` picks ``"numpy"`` or ``"python"``
from, in priority order: an explicit argument
(:class:`~repro.core.engine.AnonymizationParams.kernels` /
``ExperimentConfig.kernels``), the process-wide override installed by
:func:`use` (the engine wraps each run in it), the ``REPRO_KERNELS``
environment variable, and finally ``auto`` (numpy when importable).  Both
backends make bit-for-bit identical decisions -- the numpy kernels change
*how* supports and popcounts are computed, never *which* comparisons run --
which the equivalence suite (``tests/test_kernels.py``) enforces on
randomized inputs.

**Size thresholds.**  Vectorization pays above a batch size; below it, the
ufunc dispatch overhead loses to CPython's small-int bitops (a 30-row
cluster mask is a single machine word).  The packed-mask kernels therefore
engage only for row counts of at least :data:`PACKED_MIN_ROWS` even when
the numpy backend is selected; the counting kernel has no threshold (the
gather + ``bincount`` wins at every node size measured).  The thresholds
are plain module constants so tests (and unusual workloads) can lower
them.
"""

from __future__ import annotations

import contextvars
import os
from collections.abc import Iterable, Sequence
from contextlib import contextmanager
from typing import Optional

from repro.exceptions import ParameterError

try:  # pragma: no cover - exercised implicitly by both CI variants
    import numpy as np

    if not hasattr(np, "bitwise_count"):  # numpy < 2.0: no vectorized popcount
        np = None  # type: ignore[assignment]
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

#: Environment variable forcing the kernel backend (``python`` / ``numpy`` /
#: ``auto``); overridden by an explicit config choice, see :func:`resolve`.
KERNELS_ENV = "REPRO_KERNELS"

#: Accepted kernel-backend names.
KERNEL_CHOICES = ("auto", "python", "numpy")

#: Minimum row count for the packed-mask kernels (combination checking and
#: sub-record assembly).  Below this, one row mask fits a few machine words
#: and CPython's bigint ``&``/``bit_count`` beats the ufunc dispatch
#: overhead; the crossover measured in ``benchmarks/bench_kernels.py`` sits
#: around one thousand rows.
PACKED_MIN_ROWS = 1024

#: The :func:`use`/:func:`set_default` override.  A context variable, not a
#: plain module global: concurrent ``anonymize`` runs in different threads
#: each see (and restore) their own forced backend.
_forced_backend: contextvars.ContextVar = contextvars.ContextVar(
    "repro_kernels_forced", default=None
)


def numpy_available() -> bool:
    """True when the numpy kernels can run (numpy >= 2.0 importable)."""
    return np is not None


def validate_choice(choice: str) -> str:
    """Normalize a kernel-backend name, raising on anything unknown.

    The single source of the membership rule: :func:`resolve`,
    :func:`use`/:func:`set_default` and
    :class:`~repro.core.engine.AnonymizationParams` all validate through
    here, so the choices and the error message cannot drift apart.
    """
    choice = str(choice).lower()
    if choice not in KERNEL_CHOICES:
        raise ParameterError(
            f"kernels must be one of {KERNEL_CHOICES}, got {choice!r}"
        )
    return choice


def resolve(choice: Optional[str] = None) -> str:
    """Resolve the active kernel backend to ``"python"`` or ``"numpy"``.

    Priority: explicit ``choice`` argument, then the :func:`use` /
    :func:`set_default` override, then ``$REPRO_KERNELS``, then ``auto``.
    ``auto`` selects numpy when it is importable.  Requesting ``numpy``
    without numpy installed (or with numpy < 2.0, which lacks
    ``bitwise_count``) raises :class:`~repro.exceptions.ParameterError`
    instead of silently running the fallback.
    """
    for candidate in (
        choice,
        _forced_backend.get(),
        os.environ.get(KERNELS_ENV),
        "auto",
    ):
        if not candidate:
            continue
        candidate = validate_choice(candidate)
        if candidate == "auto":
            return "numpy" if np is not None else "python"
        if candidate == "numpy" and np is None:
            raise ParameterError(
                "numpy kernels requested but numpy (>= 2.0) is not importable; "
                "use kernels='python' or unset REPRO_KERNELS"
            )
        return candidate
    return "python"  # pragma: no cover - the "auto" sentinel always resolves


@contextmanager
def use(choice: Optional[str]):
    """Force the kernel backend for the duration of a ``with`` block.

    The engine wraps each ``anonymize`` call in ``use(params.kernels)`` so
    every helper that resolves lazily (checker construction, chunk
    assembly) sees one consistent backend for the whole run.  ``None``
    keeps the surrounding resolution (environment / auto) in effect.  The
    override lives in a context variable, so concurrent runs in other
    threads are unaffected.
    """
    if choice is not None:
        choice = validate_choice(choice)
    token = _forced_backend.set(choice)
    try:
        yield
    finally:
        _forced_backend.reset(token)


def set_default(choice: Optional[str]) -> None:
    """Install the backend override without a scope (no restore).

    The process-pool **initializer**: worker processes start with a fresh
    interpreter where only ``$REPRO_KERNELS`` would apply, so the engine
    (and :func:`repro.core.refine.refine`) pass
    ``initializer=kernels.set_default, initargs=(resolved,)`` when
    spawning pools -- every worker then resolves exactly the backend the
    parent run forced.
    """
    if choice is not None:
        choice = validate_choice(choice)
    _forced_backend.set(choice)


# --------------------------------------------------------------------------- #
# kernel 1: contiguous-buffer term counting (HORPART)
# --------------------------------------------------------------------------- #
class RecordIdBuffer:
    """Records flattened into one contiguous int32 term-id buffer (CSR).

    ``ids`` holds every record's term ids back to back; ``indptr[i]`` is
    the offset of record ``i``'s run.  Term supports of any row subset are
    one ragged gather plus one ``bincount`` -- the vectorized form of
    HORPART's per-node ``Counter.update`` loop -- and per-term posting
    arrays (sorted record indices) fall out of a single stable argsort,
    built lazily on first membership query.

    With ``compact=True`` the buffer remaps the ids it actually contains
    onto the dense range ``0..U-1`` (``term_ids`` maps a compact id back
    to the original); every count array is then sized by the buffer's
    *distinct* terms rather than by the largest original id.  HORPART
    uses this because under shard-lifetime vocabulary reuse a late stream
    window can hold arbitrarily large ids while containing only a few
    distinct terms -- without compaction its per-node arrays would scale
    with the shard's cumulative vocabulary instead of the window's.

    Requires the numpy backend; callers guard on :func:`numpy_available`.
    """

    __slots__ = (
        "ids",
        "indptr",
        "lengths",
        "num_terms",
        "num_records",
        "term_ids",
        "_posting_rows",
        "_posting_starts",
    )

    def __init__(
        self,
        records: Sequence[frozenset],
        num_terms: Optional[int] = None,
        compact: bool = False,
    ):
        count = len(records)
        self.num_records = count
        self.lengths = np.fromiter(
            (len(r) for r in records), dtype=np.int64, count=count
        )
        total = int(self.lengths.sum())
        self.indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=self.indptr[1:])
        self.ids = np.fromiter(
            (tid for record in records for tid in record), dtype=np.int32, count=total
        )
        self.term_ids: Optional[np.ndarray] = None
        if compact and total:
            unique, inverse = np.unique(self.ids, return_inverse=True)
            self.ids = inverse.astype(np.int32, copy=False)
            self.term_ids = unique
            num_terms = len(unique)
        elif num_terms is None:
            num_terms = int(self.ids.max()) + 1 if total else 0
        self.num_terms = num_terms
        self._posting_rows: Optional[np.ndarray] = None
        self._posting_starts: Optional[np.ndarray] = None

    def counts(self, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Term supports (length ``num_terms``) of the records at ``rows``.

        ``rows=None`` counts the whole buffer.  The gather materializes the
        flat positions of every selected record's id run via the standard
        ``repeat`` + ``arange`` trick, so no Python-level per-record loop
        runs.
        """
        if rows is None:
            return np.bincount(self.ids, minlength=self.num_terms)
        starts = self.indptr[rows]
        lens = self.lengths[rows]
        total = int(lens.sum())
        if total == 0:
            return np.zeros(self.num_terms, dtype=np.int64)
        cum = np.cumsum(lens)
        offsets = np.repeat(starts - (cum - lens), lens)
        positions = offsets + np.arange(total, dtype=np.int64)
        return np.bincount(self.ids[positions], minlength=self.num_terms)

    def posting(self, tid: int) -> np.ndarray:
        """Sorted record indices containing term ``tid`` (the posting array)."""
        if self._posting_rows is None:
            row_of_flat = np.repeat(
                np.arange(self.num_records, dtype=np.int64), self.lengths
            )
            order = np.argsort(self.ids, kind="stable")
            self._posting_rows = row_of_flat[order]
            self._posting_starts = np.searchsorted(
                self.ids[order], np.arange(self.num_terms + 1, dtype=np.int64)
            )
        return self._posting_rows[
            self._posting_starts[tid] : self._posting_starts[tid + 1]
        ]


def supports_python(records: Sequence[frozenset], rows: Iterable[int]) -> dict:
    """Pure-Python reference of :meth:`RecordIdBuffer.counts` (dict form).

    Kept here (next to the kernel it mirrors) so the parity tests and the
    counting micro-benchmark compare the exact per-record update loop the
    kernel replaces.
    """
    counts: dict = {}
    get = counts.get
    for row in rows:
        for tid in records[row]:
            counts[tid] = get(tid, 0) + 1
    return counts


# --------------------------------------------------------------------------- #
# kernel 2: packed-word combination checking
# --------------------------------------------------------------------------- #
def _packed_bytes(masks: Iterable[int], count: int, nbytes: int) -> bytes:
    """Serialize bigint row masks back to back, ``nbytes`` little-endian each."""
    buffer = bytearray(count * nbytes)
    for index, mask in enumerate(masks):
        start = index * nbytes
        buffer[start : start + nbytes] = mask.to_bytes(nbytes, "little")
    return bytes(buffer)


def pack_mask_rows(masks: Iterable[int], count: int, num_rows: int) -> "np.ndarray":
    """Pack bigint row masks into a ``(count, words)`` uint64 matrix.

    Bit ``r`` of a mask lands in word ``r // 64``, bit ``r % 64``
    (explicitly little-endian), so ``bitwise_count`` over a row's words is
    exactly the bigint's ``bit_count``.
    """
    nbytes = max(1, (num_rows + 63) // 64) * 8
    matrix = np.frombuffer(_packed_bytes(masks, count, nbytes), dtype="<u8")
    return matrix.reshape(count, nbytes // 8)


def _popcounts(matrix: "np.ndarray") -> "np.ndarray":
    """Per-row popcount of a uint64 word matrix."""
    return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)


class PackedSelection:
    """Accepted-set combination checking over a packed uint64 word matrix.

    The numpy engine behind
    :class:`~repro.core.anonymity.BitsetChunkChecker`: every term's row
    mask is packed **once** at construction, the accepted set lives in a
    preallocated matrix, and a candidate's m-way combination supports are
    evaluated level by level -- one vectorized ``&`` + ``bitwise_count``
    over the whole accepted batch per DFS level, recursing only into
    occurring intersections.  Decisions are identical to the bigint DFS:
    the same ``(support > 0 and support < k)`` comparisons run, just in
    batch.
    """

    __slots__ = ("_matrix", "_index", "_accepted", "_count", "_k", "num_rows")

    def __init__(self, masks: dict, num_rows: int, k: int):
        self._matrix = pack_mask_rows(masks.values(), len(masks), num_rows)
        self._index = {term: row for row, term in enumerate(masks)}
        self._accepted = np.zeros_like(self._matrix)
        self._count = 0
        self._k = k
        self.num_rows = num_rows

    def row(self, term) -> Optional["np.ndarray"]:
        """The packed row of ``term``, or ``None`` when it has no mask."""
        position = self._index.get(term)
        if position is None:
            return None
        return self._matrix[position]

    def add(self, term) -> None:
        """Append ``term``'s packed row to the accepted batch."""
        row = self.row(term)
        if self._count == len(self._accepted):  # unknown-term adds may overflow
            grown = np.zeros(
                (2 * len(self._accepted) + 1, self._matrix.shape[1]),
                dtype=self._matrix.dtype,
            )
            grown[: self._count] = self._accepted[: self._count]
            self._accepted = grown
        if row is None:
            self._accepted[self._count] = 0
        else:
            self._accepted[self._count] = row
        self._count += 1

    def remove(self, position: int) -> None:
        """Drop the accepted row at ``position`` (insertion order)."""
        self._accepted[position : self._count - 1] = self._accepted[
            position + 1 : self._count
        ]
        self._count -= 1

    def reset(self) -> None:
        """Empty the accepted batch."""
        self._count = 0

    def combinations_ok(self, base_row: "np.ndarray", depth: int) -> bool:
        """Every occurring combination extending ``base_row`` keeps support >= k.

        Mirrors ``BitsetChunkChecker._combinations_ok`` over the accepted
        batch: one vectorized level per DFS depth.
        """
        return self._descend(base_row, 0, depth)

    def _descend(self, base: "np.ndarray", start: int, depth: int) -> bool:
        count = self._count
        if start >= count:
            return True
        intersections = self._accepted[start:count] & base
        supports = _popcounts(intersections)
        if bool(((supports > 0) & (supports < self._k)).any()):
            return False
        if depth > 1:
            for offset in np.nonzero(supports > 0)[0]:
                position = int(offset)
                if not self._descend(
                    intersections[position], start + position + 1, depth - 1
                ):
                    return False
        return True


def packed_km_anonymous(
    masks: Sequence[int], num_rows: int, k: int, m: int
) -> bool:
    """Whole-chunk k^m check over packed masks (batch form of the bigint DFS).

    ``masks`` are the chunk's per-term row masks (every one non-zero, as
    built from occurring records).  Singletons are checked in one batched
    popcount; each deeper level ANDs the current base against the whole
    remaining-term batch at once, recursing only into occurring
    intersections -- the same pruning, the same comparisons, no Counter.
    """
    matrix = pack_mask_rows(masks, len(masks), num_rows)
    if len(masks) and bool((_popcounts(matrix) < k).any()):
        return False
    if m == 1 or len(masks) < 2:
        return True
    for start in range(len(masks) - 1):
        if not _km_descend(matrix, matrix[start], start + 1, m - 1, k):
            return False
    return True


def _km_descend(
    matrix: "np.ndarray", base: "np.ndarray", start: int, depth: int, k: int
) -> bool:
    intersections = matrix[start:] & base
    supports = _popcounts(intersections)
    if bool(((supports > 0) & (supports < k)).any()):
        return False
    if depth > 1:
        for offset in np.nonzero(supports > 0)[0]:
            position = int(offset)
            if not _km_descend(
                matrix, intersections[position], start + position + 1, depth - 1, k
            ):
                return False
    return True


# --------------------------------------------------------------------------- #
# kernel 3: packed sub-record assembly (REFINE shared chunks)
# --------------------------------------------------------------------------- #
def assemble_subrecords(
    term_masks: Sequence[tuple], num_rows: int
) -> list[frozenset]:
    """Sub-records of the rows covered by ``term_masks``, in row order.

    ``term_masks`` is a sequence of ``(term, bigint row mask)`` pairs; the
    result holds one ``frozenset`` of terms per covered row (a row is
    covered when at least one mask has its bit set), ordered by increasing
    row -- exactly what REFINE's reference ``build_chunks`` produces by
    shifting every mask per row.  The masks are unpacked into one boolean
    matrix and each covered row's terms come from a single C-level
    ``nonzero``.
    """
    nbytes = max(1, (num_rows + 7) // 8)
    packed = np.frombuffer(
        _packed_bytes((mask for _term, mask in term_masks), len(term_masks), nbytes),
        dtype=np.uint8,
    ).reshape(len(term_masks), nbytes)
    bools = np.unpackbits(
        packed, axis=1, bitorder="little", count=num_rows
    ).astype(bool, copy=False)
    covered = bools.any(axis=0)
    columns = bools[:, covered].T
    terms = [term for term, _mask in term_masks]
    return [
        frozenset(terms[position] for position in np.nonzero(row)[0])
        for row in columns
    ]


def assemble_subrecords_python(
    term_masks: Sequence[tuple], num_rows: int
) -> list[frozenset]:
    """Pure-Python reference of :func:`assemble_subrecords` (bigint shifts).

    Kept for the parity tests and the assembly micro-benchmark; REFINE's
    inline fallback in ``build_chunks`` is this same loop fused with the
    contribution counting.
    """
    or_mask = 0
    for _term, mask in term_masks:
        or_mask |= mask
    subrecords: list[frozenset] = []
    while or_mask:
        low = or_mask & -or_mask
        row = low.bit_length() - 1
        or_mask ^= low
        subrecords.append(
            frozenset(term for term, mask in term_masks if (mask >> row) & 1)
        )
    return subrecords

"""Transactional (set-valued) dataset substrate.

The paper operates on *sparse multidimensional data*: a collection ``D`` of
records, each record being a set of terms drawn from a huge domain ``T``
(web-search queries, purchased products, clicked URLs...).  This module
provides the in-memory representation used throughout the library:

* :class:`TransactionDataset` -- an ordered collection of records
  (``frozenset`` of terms) with cached supports, projections, splits and
  summary statistics.
* helper functions for term supports and record similarity.

The class is deliberately simple and immutable-ish: all transformation
methods return new datasets, the underlying record list is never mutated in
place.  This keeps the anonymization pipeline easy to reason about and test.
"""

from __future__ import annotations

import random
from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DatasetError

Term = str
Record = frozenset


def normalize_record(record: Iterable, allow_empty: bool = False) -> Record:
    """Convert an iterable of terms into a canonical record (``frozenset``).

    Terms are converted to strings so that datasets read from files and
    datasets built from Python literals compare equal.

    Args:
        record: iterable of hashable terms.
        allow_empty: if ``False`` (default) an empty record raises
            :class:`~repro.exceptions.DatasetError`.

    Returns:
        The record as a ``frozenset`` of string terms.
    """
    try:
        terms = frozenset(str(t) for t in record)
    except TypeError as exc:  # record is not iterable
        raise DatasetError(f"record {record!r} is not an iterable of terms") from exc
    if not terms and not allow_empty:
        raise DatasetError("empty records are not allowed in a transaction dataset")
    return terms


def ensure_record(record, allow_empty: bool = False) -> Record:
    """:func:`normalize_record`, skipped when the record is already normal.

    A normalized record is a non-empty ``frozenset`` of ``str`` terms (what
    the dataset readers yield); verifying that costs no allocations, so hot
    streaming paths avoid rebuilding every record while non-normalized
    inputs (lists, sets of ints, ...) still normalize identically.
    """
    if isinstance(record, frozenset) and record and all(type(t) is str for t in record):
        return record
    return normalize_record(record, allow_empty=allow_empty)


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a transactional dataset (paper, Figure 6)."""

    num_records: int
    domain_size: int
    max_record_size: int
    avg_record_size: float

    def as_row(self) -> str:
        """Render the statistics as a single human-readable table row."""
        return (
            f"|D|={self.num_records}  |T|={self.domain_size}  "
            f"max rec.={self.max_record_size}  avg rec.={self.avg_record_size:.2f}"
        )


class TransactionDataset:
    """A collection of set-valued records over a term domain.

    The dataset is ordered (records keep their insertion order and are
    addressable by index), supports duplicate records (bag semantics at the
    dataset level) and exposes exact term/itemset supports.

    Args:
        records: iterable of records; each record is any iterable of terms.
        allow_empty: whether empty records are tolerated (used internally by
            chunk projections; public datasets should keep the default).
    """

    def __init__(self, records: Iterable[Iterable], allow_empty: bool = False):
        self._records: list[Record] = [
            normalize_record(r, allow_empty=allow_empty) for r in records
        ]
        self._allow_empty = allow_empty
        self._support_cache: Optional[Counter] = None
        self._domain_cache: Optional[frozenset] = None

    # ------------------------------------------------------------------ #
    # basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TransactionDataset(self._records[index], allow_empty=self._allow_empty)
        return self._records[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, TransactionDataset):
            return NotImplemented
        return self._records == other._records

    def __repr__(self) -> str:
        return f"TransactionDataset(n={len(self)}, |T|={len(self.domain)})"

    @property
    def records(self) -> Sequence[Record]:
        """The records as an immutable sequence (do not mutate)."""
        return tuple(self._records)

    # ------------------------------------------------------------------ #
    # domain and supports
    # ------------------------------------------------------------------ #
    @property
    def domain(self) -> frozenset:
        """The set of distinct terms appearing in the dataset."""
        if self._domain_cache is None:
            domain = set()
            for record in self._records:
                domain.update(record)
            self._domain_cache = frozenset(domain)
        return self._domain_cache

    def term_supports(self) -> Counter:
        """Return a Counter mapping each term to its support (record count)."""
        if self._support_cache is None:
            counts: Counter = Counter()
            for record in self._records:
                counts.update(record)
            self._support_cache = counts
        return Counter(self._support_cache)

    def support(self, itemset: Iterable) -> int:
        """Exact support of an itemset: number of records containing all terms."""
        items = frozenset(str(t) for t in itemset)
        if not items:
            return len(self._records)
        if len(items) == 1:
            (term,) = items
            return self.term_supports().get(term, 0)
        return sum(1 for record in self._records if items <= record)

    def terms_by_support(self, descending: bool = True) -> list[Term]:
        """Domain terms ordered by support (ties broken lexicographically)."""
        supports = self.term_supports()
        return sorted(supports, key=lambda t: (-supports[t], t) if descending else (supports[t], t))

    def most_frequent_term(self, exclude: Iterable = ()) -> Optional[Term]:
        """The most frequent term not in ``exclude`` or ``None`` if all excluded."""
        excluded = frozenset(str(t) for t in exclude)
        supports = self.term_supports()
        best_term, best_support = None, -1
        for term, count in supports.items():
            if term in excluded:
                continue
            if count > best_support or (count == best_support and (best_term is None or term < best_term)):
                best_term, best_support = term, count
        return best_term

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> DatasetStats:
        """Summary statistics in the format of the paper's Figure 6."""
        if not self._records:
            return DatasetStats(0, 0, 0, 0.0)
        sizes = [len(r) for r in self._records]
        return DatasetStats(
            num_records=len(self._records),
            domain_size=len(self.domain),
            max_record_size=max(sizes),
            avg_record_size=sum(sizes) / len(sizes),
        )

    # ------------------------------------------------------------------ #
    # transformations
    # ------------------------------------------------------------------ #
    def project(self, terms: Iterable, allow_empty: bool = True) -> "TransactionDataset":
        """Project every record onto ``terms`` (used to build chunks).

        Empty projections are kept by default because chunk semantics need
        to know how many records project to the empty set.
        """
        keep = frozenset(str(t) for t in terms)
        return TransactionDataset(
            (record & keep for record in self._records), allow_empty=allow_empty
        )

    def filter_records(self, predicate) -> "TransactionDataset":
        """Dataset with only the records for which ``predicate(record)`` holds."""
        return TransactionDataset(
            (r for r in self._records if predicate(r)), allow_empty=self._allow_empty
        )

    def split_on_term(self, term: Term) -> tuple["TransactionDataset", "TransactionDataset"]:
        """Split into (records containing ``term``, records not containing it).

        This is the primitive used by HORPART.
        """
        term = str(term)
        with_term, without_term = [], []
        for record in self._records:
            (with_term if term in record else without_term).append(record)
        return (
            TransactionDataset(with_term, allow_empty=self._allow_empty),
            TransactionDataset(without_term, allow_empty=self._allow_empty),
        )

    def sample(self, n: int, seed: Optional[int] = None) -> "TransactionDataset":
        """Uniform random sample (without replacement) of ``n`` records."""
        if n >= len(self._records):
            return TransactionDataset(self._records, allow_empty=self._allow_empty)
        rng = random.Random(seed)
        return TransactionDataset(
            rng.sample(self._records, n), allow_empty=self._allow_empty
        )

    def shuffled(self, seed: Optional[int] = None) -> "TransactionDataset":
        """A copy of the dataset with record order shuffled."""
        rng = random.Random(seed)
        records = list(self._records)
        rng.shuffle(records)
        return TransactionDataset(records, allow_empty=self._allow_empty)

    def concat(self, other: "TransactionDataset") -> "TransactionDataset":
        """Concatenate two datasets (bag union of records)."""
        return TransactionDataset(
            list(self._records) + list(other._records),
            allow_empty=self._allow_empty or other._allow_empty,
        )

    def without_terms(self, terms: Iterable) -> "TransactionDataset":
        """Remove ``terms`` from every record, dropping records left empty."""
        drop = frozenset(str(t) for t in terms)
        remaining = (record - drop for record in self._records)
        return TransactionDataset((r for r in remaining if r), allow_empty=False)

    def non_empty(self) -> "TransactionDataset":
        """Dataset containing only the non-empty records."""
        return TransactionDataset((r for r in self._records if r), allow_empty=False)

    def to_lists(self) -> list[list[Term]]:
        """Records as sorted lists of terms (stable, JSON-friendly)."""
        return [sorted(record) for record in self._records]

    @classmethod
    def from_lists(cls, rows: Iterable[Iterable], allow_empty: bool = False) -> "TransactionDataset":
        """Build a dataset from an iterable of term lists (inverse of :meth:`to_lists`)."""
        return cls(rows, allow_empty=allow_empty)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard coefficient of two records; 1.0 when both are empty."""
    set_a, set_b = frozenset(a), frozenset(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)

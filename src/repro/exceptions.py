"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class.  Each subclass documents the situation it signals
and carries enough context (in its message and, where useful, attributes) to
diagnose the problem without reading library internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DatasetError(ReproError):
    """Raised when a transactional dataset is malformed or cannot be built.

    Typical causes: empty records where they are not allowed, records that
    are not iterables of hashable terms, or a parse failure while reading a
    transaction file.
    """


class DatasetFormatError(DatasetError):
    """Raised when a serialized dataset (file or JSON blob) cannot be parsed."""


class ParameterError(ReproError):
    """Raised when anonymization parameters are invalid.

    Examples: ``k < 1``, ``m < 1``, a ``max_cluster_size`` smaller than
    ``k``, or a negative privacy budget for DiffPart.
    """


class AnonymityViolationError(ReproError):
    """Raised when a published dataset fails its anonymity guarantee.

    Carries the offending itemset and its support so that tests and callers
    can report precisely which combination breaks k^m-anonymity.
    """

    def __init__(self, message: str, itemset=None, support=None):
        super().__init__(message)
        self.itemset = tuple(sorted(itemset)) if itemset is not None else None
        self.support = support


class RefinementError(ReproError):
    """Raised when the refining step produces an inconsistent joint cluster."""


class ReconstructionError(ReproError):
    """Raised when a disassociated dataset cannot be reconstructed.

    This indicates corrupted published data (e.g. a record chunk with more
    sub-records than the declared cluster size).
    """


class HierarchyError(ReproError):
    """Raised for malformed generalization hierarchies (cycles, orphans,
    terms missing from the hierarchy domain)."""


class MiningError(ReproError):
    """Raised when frequent-itemset mining receives invalid input
    (e.g. a non-positive ``top_k`` or a negative minimum support)."""


class EngineClosedError(ReproError):
    """Raised when a closed :class:`~repro.core.engine.Disassociator` is used.

    Signals a lifecycle bug in the caller: either ``close()`` was called
    twice, or ``anonymize()`` was invoked after the engine (and with it the
    shared worker pool) had already been shut down.  Both used to fail
    silently -- a double close leaked nothing but hid the bug, and reuse
    after close quietly respawned a fresh pool behind the caller's back.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class ServiceClosedError(ServiceError):
    """Raised when a request is issued to (or the lifecycle of) a closed
    :class:`~repro.service.AnonymizationService` is violated: ``run()`` /
    ``submit()`` after ``close()``, or a double ``close()``."""


class ServiceSaturatedError(ServiceError):
    """Raised by non-blocking :meth:`~repro.service.AnonymizationService.submit`
    when the bounded job queue is full (the service is saturated)."""

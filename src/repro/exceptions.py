"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class.  Each subclass documents the situation it signals
and carries enough context (in its message and, where useful, attributes) to
diagnose the problem without reading library internals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DatasetError(ReproError):
    """Raised when a transactional dataset is malformed or cannot be built.

    Typical causes: empty records where they are not allowed, records that
    are not iterables of hashable terms, or a parse failure while reading a
    transaction file.
    """


class DatasetFormatError(DatasetError):
    """Raised when a serialized dataset (file or JSON blob) cannot be parsed."""


class ParameterError(ReproError):
    """Raised when anonymization parameters are invalid.

    Examples: ``k < 1``, ``m < 1``, a ``max_cluster_size`` smaller than
    ``k``, or a negative privacy budget for DiffPart.
    """


class AnonymityViolationError(ReproError):
    """Raised when a published dataset fails its anonymity guarantee.

    Carries the offending itemset and its support so that tests and callers
    can report precisely which combination breaks k^m-anonymity.
    """

    def __init__(self, message: str, itemset=None, support=None):
        super().__init__(message)
        self.itemset = tuple(sorted(itemset)) if itemset is not None else None
        self.support = support


class RefinementError(ReproError):
    """Raised when the refining step produces an inconsistent joint cluster."""


class ReconstructionError(ReproError):
    """Raised when a disassociated dataset cannot be reconstructed.

    This indicates corrupted published data (e.g. a record chunk with more
    sub-records than the declared cluster size).
    """


class HierarchyError(ReproError):
    """Raised for malformed generalization hierarchies (cycles, orphans,
    terms missing from the hierarchy domain)."""


class MiningError(ReproError):
    """Raised when frequent-itemset mining receives invalid input
    (e.g. a non-positive ``top_k`` or a negative minimum support)."""


class CheckpointError(ReproError):
    """Raised when a streaming run checkpoint cannot be used.

    Signals a missing, corrupt or incompatible run manifest: resuming
    without a manifest in the spill directory, a manifest written by an
    incompatible library version, or a manifest whose recorded parameters
    do not match the resuming pipeline's (silently resuming with different
    ``k``/``m``/sharding would splice incompatible partial results into one
    publication).
    """


class StoreError(CheckpointError):
    """Raised when a persistent shard store cannot be used.

    The incremental substrate (:mod:`repro.stream.store`) refuses to touch
    a store that would corrupt the publication: an unreadable or
    wrong-version database, a store created under different
    output-affecting parameters, a delta that deletes a record the store
    does not hold, or a delta that would change the shard plan fingerprint
    (re-anonymizing only dirty shards under a different routing would
    silently diverge from a cold run).  Subclasses
    :class:`CheckpointError`: a store is the long-lived generalization of
    the one-shot run checkpoint, and callers guarding resume paths with
    ``except CheckpointError`` should treat both alike.
    """


class DeadlineExceededError(ReproError):
    """Raised when a request exceeds its execution deadline.

    Checked between pipeline phases (and at job dequeue in the service
    layer), so a deadline aborts a run at the next phase boundary instead
    of mid-phase.  ``where`` names the checkpoint that observed the expiry
    (e.g. ``"engine.refine"``); ``budget`` is the deadline in seconds.
    """

    def __init__(self, message: str, *, where: str = "", budget: float = 0.0):
        super().__init__(message)
        self.where = where
        self.budget = budget


class FaultInjected(ReproError):
    """Raised by an armed :class:`repro.faults.FaultPlan` at an injection point.

    Only the deterministic fault-injection harness (:mod:`repro.faults`)
    raises this; production code never does.  ``point`` names the injection
    point that fired and ``hit`` the 1-based arrival count that triggered
    it.  ``transient`` marks the fault as retryable -- the service layer's
    retry policy treats transient injected faults exactly like a crashed
    worker pool, which is what the resilience test suite relies on.
    """

    def __init__(self, point: str, hit: int, *, transient: bool = True):
        super().__init__(f"injected fault at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit
        self.transient = transient


class EngineClosedError(ReproError):
    """Raised when a closed :class:`~repro.core.engine.Disassociator` is used.

    Signals a lifecycle bug in the caller: either ``close()`` was called
    twice, or ``anonymize()`` was invoked after the engine (and with it the
    shared worker pool) had already been shut down.  Both used to fail
    silently -- a double close leaked nothing but hid the bug, and reuse
    after close quietly respawned a fresh pool behind the caller's back.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.service` layer."""


class ServiceClosedError(ServiceError):
    """Raised when a request is issued to (or the lifecycle of) a closed
    :class:`~repro.service.AnonymizationService` is violated: ``run()`` /
    ``submit()`` after ``close()``, or a double ``close()``."""


class ServiceSaturatedError(ServiceError):
    """Raised by non-blocking :meth:`~repro.service.AnonymizationService.submit`
    when the bounded job queue is full (the service is saturated)."""


class RetriesExhaustedError(ServiceError):
    """Raised when a request keeps failing transiently through every retry.

    The service retried the request per its
    :class:`~repro.service.RetryPolicy` (crashed worker pools and injected
    transient faults are retryable; parameter and dataset errors are not)
    and every attempt failed.  The last transient failure is chained as
    ``__cause__``; ``attempts`` records how many executions were tried.
    """

    def __init__(self, message: str, *, attempts: int = 1):
        super().__init__(message)
        self.attempts = attempts
